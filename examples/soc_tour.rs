//! A guided tour of the simulated Cohort SoC.
//!
//! Runs one small SHA benchmark on the cycle-level SoC in all three
//! communication modes (paper §5.1) and walks through what the hardware
//! did: coherence traffic at the directory, the engine's RCM/TLB activity,
//! the core's stall breakdown — the counters behind Figures 8 and 10.
//!
//! Run with: `cargo run --release --example soc_tour`

use cohort::scenarios::{run_cohort, run_dma, run_mmio, RunResult, Scenario, Workload};

fn show(label: &str, r: &RunResult) {
    println!("--- {label} ---");
    println!(
        "  latency {} cycles | {} instructions | IPC {:.3} | output verified: {}",
        r.cycles,
        r.instret,
        r.ipc(),
        r.verified
    );
    for (comp, counters) in &r.counters {
        let interesting: Vec<String> = counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if !interesting.is_empty() {
            println!("  {comp}: {}", interesting.join(" "));
        }
    }
}

fn main() {
    let scenario = Scenario::new(Workload::Sha, 512, 64);
    println!(
        "SHA-256 benchmark, {} elements, batch {}, on the simulated 4-tile SoC\n",
        scenario.queue_size, scenario.batch
    );

    let cohort = run_cohort(&scenario);
    show("Cohort (SPSC queues + engine)", &cohort);

    let mmio = run_mmio(&scenario);
    show("MMIO baseline (word-at-a-time)", &mmio);

    let dma = run_dma(&scenario);
    show("Coherent DMA baseline (256-byte blocks)", &dma);

    println!("\nSummary:");
    println!(
        "  Cohort speedup over MMIO: {:.2}x   over DMA: {:.2}x",
        mmio.cycles as f64 / cohort.cycles as f64,
        dma.cycles as f64 / cohort.cycles as f64
    );
    println!(
        "  IPC speedup over MMIO: {:.2}x   over DMA: {:.2}x",
        cohort.ipc() / mmio.ipc(),
        cohort.ipc() / dma.ipc()
    );
}
