//! Inter-process-style communication through a Cohort accelerator
//! (paper §4.5): one producer process pushes into the accelerator's input
//! queue, a *different* consumer process pops its output queue. Neither
//! side knows (or cares) that the stage between them is hardware.
//!
//! Natively, processes are modelled as independent threads owning their
//! queue endpoints — the same ownership discipline `fork` + shared memory
//! gives the C version in the paper's Figure 3.
//!
//! Run with: `cargo run --example ipc_pipeline`

use cohort::native::{cohort_register, pop_blocking, push_blocking};
use cohort_accel::aes128::{Aes128, Aes128Accel};
use cohort_queue::spsc_channel;
use std::thread;

fn main() {
    let key = *b"an ipc demo key!";
    let blocks = 1000usize;

    // Shared queues: producer -> accelerator -> consumer.
    let (tx, acc_in) = spsc_channel::<u64>(128);
    let (acc_out, rx) = spsc_channel::<u64>(128);

    // The "driver" registers the accelerator between the two queues.
    let handle = cohort_register(
        Box::new(Aes128Accel::new()),
        acc_in,
        acc_out,
        Some(key.to_vec()),
    );

    // Producer process: streams plaintext blocks.
    let producer = thread::spawn(move || {
        let mut tx = tx;
        for b in 0..blocks as u64 {
            push_blocking(&mut tx, b.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            push_blocking(&mut tx, b ^ 0xdead_beef_cafe_f00d);
        }
    });

    // Consumer process: receives ciphertext and checks it independently.
    let consumer = thread::spawn(move || {
        let mut rx = rx;
        let aes = Aes128::new(&key);
        let mut ok = 0usize;
        for b in 0..blocks as u64 {
            let w0 = pop_blocking(&mut rx);
            let w1 = pop_blocking(&mut rx);
            let mut pt = [0u8; 16];
            pt[..8].copy_from_slice(&b.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            pt[8..].copy_from_slice(&(b ^ 0xdead_beef_cafe_f00d).to_le_bytes());
            let expect = aes.encrypt_block(&pt);
            let mut got = [0u8; 16];
            got[..8].copy_from_slice(&w0.to_le_bytes());
            got[8..].copy_from_slice(&w1.to_le_bytes());
            if got == expect {
                ok += 1;
            }
        }
        ok
    });

    producer.join().expect("producer");
    let ok = consumer.join().expect("consumer");
    let stats = handle.unregister();
    println!("producer process -> AES accelerator -> consumer process");
    println!("{ok}/{blocks} ciphertext blocks verified by the consumer");
    println!(
        "accelerator moved {} words in / {} words out",
        stats.words_in, stats.words_out
    );
    assert_eq!(ok, blocks);
}
