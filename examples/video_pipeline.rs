//! Video encoding through the Cohort queue abstraction (paper §5.2 H264).
//!
//! The H.264 accelerator accepts "the number of frames at the start of its
//! input" (variable-length input), then a stream of 16x16 luma
//! macroblocks. This example pushes a synthetic video through the
//! accelerator thread, decodes the CAVLC bitstream with the matching
//! software decoder, and reports compression and reconstruction quality.
//!
//! Run with: `cargo run --example video_pipeline`

use cohort::native::{cohort_register, pop_blocking, push_blocking};
use cohort_accel::h264::{decode_stream, H264Accel, MB_BYTES, MB_DIM};
use cohort_queue::spsc_channel;

/// A moving-gradient synthetic video frame (one macroblock per frame).
fn frame(t: usize) -> [u8; MB_BYTES] {
    core::array::from_fn(|i| {
        let (r, c) = (i / MB_DIM, i % MB_DIM);
        let v = 96.0
            + 50.0 * ((r as f64 / 4.0 + t as f64 / 3.0).sin())
            + 40.0 * ((c as f64 / 5.0 - t as f64 / 7.0).cos());
        v.clamp(0.0, 255.0) as u8
    })
}

fn psnr(a: &[u8], b: &[u8]) -> f64 {
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x) - f64::from(*y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

fn main() {
    let frames: Vec<[u8; MB_BYTES]> = (0..24).map(frame).collect();

    // Queues + registration; the CSR byte selects the quality parameter.
    let (mut tx, acc_in) = spsc_channel::<u64>(1024);
    let (acc_out, mut rx) = spsc_channel::<u64>(1024);
    let qp = 12u8;
    let handle = cohort_register(Box::new(H264Accel::new()), acc_in, acc_out, Some(vec![qp]));

    // Header word: frame count. Then the raw macroblocks.
    push_blocking(&mut tx, frames.len() as u64);
    let mut raw_bytes = 0usize;
    for f in &frames {
        raw_bytes += f.len();
        for chunk in f.chunks_exact(8) {
            push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
    }

    // Collect the variable-rate bitstream until all frames decode.
    let mut bitstream: Vec<u8> = Vec::new();
    let mut decoded = Vec::new();
    while decoded.len() < frames.len() {
        let w = pop_blocking(&mut rx);
        bitstream.extend_from_slice(&w.to_le_bytes());
        if let Ok(frames_so_far) = decode_padded(&bitstream) {
            decoded = frames_so_far;
        }
    }
    let stats = handle.unregister();

    println!(
        "encoded {} frames ({} raw bytes) into {} bitstream bytes ({:.1}x compression)",
        frames.len(),
        raw_bytes,
        bitstream.len(),
        raw_bytes as f64 / bitstream.len() as f64
    );
    let avg_psnr: f64 = frames
        .iter()
        .zip(&decoded)
        .map(|(a, b)| psnr(a, b))
        .sum::<f64>()
        / frames.len() as f64;
    println!("average reconstruction PSNR at qp={qp}: {avg_psnr:.1} dB");
    assert!(avg_psnr > 30.0, "quality too low");
    println!(
        "accelerator thread stats: {} words in, {} words out",
        stats.words_in, stats.words_out
    );
}

/// Decodes the accelerator's word-padded [len u32][bits][pad] stream.
fn decode_padded(bytes: &[u8]) -> Result<Vec<[u8; MB_BYTES]>, ()> {
    // Re-pack into the unpadded container decode_stream expects.
    let mut unpadded = Vec::new();
    let mut rest = bytes;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let body_padded = (4 + len).div_ceil(8) * 8 - 4;
        if rest.len() < 4 + body_padded {
            break; // incomplete frame, wait for more words
        }
        unpadded.extend_from_slice(&rest[..4 + len]);
        rest = &rest[4 + body_padded..];
    }
    decode_stream(&unpadded).map_err(|_| ())
}
