//! Quickstart: Software-Oriented Acceleration in five minutes.
//!
//! The Cohort idea (ASPLOS 2023): software talks to accelerators through
//! the shared-memory SPSC queues it already uses between threads. This
//! example takes an ordinary producer/consumer program and swaps the
//! consumer thread for a SHA-256 accelerator — the producer code does not
//! change at all.
//!
//! Run with: `cargo run --example quickstart`

use cohort::native::{cohort_register, pop_blocking, push_blocking};
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_queue::spsc_channel;

fn main() {
    // Step 1: two perfectly ordinary SPSC queues (paper Table 1:
    // fifo_init).
    let (mut to_acc, acc_in) = spsc_channel::<u64>(256);
    let (acc_out, mut from_acc) = spsc_channel::<u64>(256);

    // Step 2: cohort_register — where a software consumer thread would
    // have been spawned, connect an accelerator instead.
    let handle = cohort_register(Box::new(Sha256Accel::new()), acc_in, acc_out, None);
    println!("registered SHA-256 accelerator between two SPSC queues");

    // Step 3: the producer just pushes; the accelerator's results are
    // popped like any other thread's output. One SHA block = 8 pushes of
    // 64 bits, one digest = 4 pops (paper §5.3).
    let message = *b"one message block of exactly sixty-four bytes for SHA-256 !!!!!!";
    for chunk in message.chunks_exact(8) {
        push_blocking(&mut to_acc, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut digest = Vec::new();
    for _ in 0..4 {
        digest.extend_from_slice(&pop_blocking(&mut from_acc).to_le_bytes());
    }

    println!("digest: {}", hex(&digest));
    assert_eq!(digest, sha256_raw_block(&message).to_vec());
    println!("verified against the software SHA-256 implementation");

    // Step 4: cohort_unregister.
    let stats = handle.unregister();
    println!(
        "unregistered: {} words in, {} words out",
        stats.words_in, stats.words_out
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
