//! Transparent accelerator chaining (paper Fig. 5): encrypt-then-hash.
//!
//! Two chains of the same computation:
//!
//! 1. **Native runtime** — AES and SHA accelerator threads connected by
//!    plain SPSC queues on the host machine;
//! 2. **Simulated SoC** — two Cohort engines on the cycle-level SoC, the
//!    middle queue consumed engine-to-engine with *no software at all* in
//!    between (the AES engine's producer endpoint publishes the write
//!    index; the SHA engine's reader coherency manager sees the
//!    invalidation and fetches).
//!
//! Run with: `cargo run --release --example crypto_pipeline`

use cohort::native::{cohort_register, pop_blocking, push_blocking};
use cohort::scenarios::{run_cohort_chain, Scenario, Workload, AES_KEY};
use cohort_accel::aes128::{Aes128, Aes128Accel};
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_queue::spsc_channel;

fn reference_digests(plaintext: &[u8]) -> Vec<u8> {
    let aes = Aes128::new(&AES_KEY);
    let mut ct = Vec::new();
    for block in plaintext.chunks_exact(16) {
        ct.extend_from_slice(&aes.encrypt_block(block.try_into().unwrap()));
    }
    let mut digests = Vec::new();
    for block in ct.chunks_exact(64) {
        digests.extend_from_slice(&sha256_raw_block(block.try_into().unwrap()));
    }
    digests
}

fn native_chain() {
    println!("== native runtime chain: push -> [AES] -> [SHA] -> pop ==");
    // Fig. 5 verbatim: three fifos, two registrations.
    let (mut tx, encrypt_fifo) = spsc_channel::<u64>(512);
    let (aes_out, hash_fifo) = spsc_channel::<u64>(512);
    let (sha_out, mut result_fifo) = spsc_channel::<u64>(512);
    let enc = cohort_register(
        Box::new(Aes128Accel::new()),
        encrypt_fifo,
        aes_out,
        Some(AES_KEY.to_vec()),
    );
    let hash = cohort_register(Box::new(Sha256Accel::new()), hash_fifo, sha_out, None);

    let plaintext: Vec<u8> = (0..512u32).map(|i| (i * 7 % 251) as u8).collect();
    for chunk in plaintext.chunks_exact(8) {
        push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut digests = Vec::new();
    for _ in 0..plaintext.len() / 64 * 4 {
        digests.extend_from_slice(&pop_blocking(&mut result_fifo).to_le_bytes());
    }
    assert_eq!(digests, reference_digests(&plaintext));
    println!(
        "   {} plaintext bytes -> {} digest bytes, verified",
        plaintext.len(),
        digests.len()
    );
    enc.unregister();
    hash.unregister();
}

fn simulated_chain() {
    println!("== simulated SoC chain: core -> AES engine -> SHA engine -> core ==");
    let scenario = Scenario::new(Workload::Sha, 256, 32);
    let result = run_cohort_chain(&scenario);
    assert!(result.verified, "simulated chain output mismatch");
    println!(
        "   {} elements through two Cohort engines in {} cycles (IPC {:.2}), verified",
        scenario.queue_size,
        result.cycles,
        result.ipc()
    );
    for (comp, counters) in &result.counters {
        if comp.starts_with("engine#") {
            let get = |n: &str| {
                counters
                    .iter()
                    .find(|(k, _)| k == n)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            println!(
                "   {comp}: consumed={} produced={} rcm_invalidations={} tlb_hits={} tlb_misses={}",
                get("consumed"),
                get("produced"),
                get("rcm_invalidations"),
                get("tlb_hits"),
                get("tlb_misses"),
            );
        }
    }
}

fn main() {
    native_chain();
    simulated_chain();
    println!("both chains agree with the host-side AES+SHA reference.");
}
