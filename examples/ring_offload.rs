//! Asynchronous offload with the io_uring-style Cohort ring (paper §7's
//! future-work integration, realised natively).
//!
//! A latency-sensitive "application loop" keeps doing its own work while
//! hashing jobs complete in the background; completions are reaped
//! opportunistically, exactly like a non-blocking io_uring event loop.
//!
//! Run with: `cargo run --example ring_offload`

use cohort::ring::{CohortRing, Sqe};
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};

fn main() {
    let mut ring = CohortRing::new(Box::new(Sha256Accel::new()), None, 32);
    let jobs = 64usize;
    let mut payloads = Vec::new();
    for j in 0..jobs {
        // Each job: 4 blocks of deterministic content.
        let payload: Vec<u8> = (0..256).map(|i| ((i * 31 + j * 7) % 256) as u8).collect();
        payloads.push(payload);
    }

    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut app_work = 0u64;
    let mut verified = 0usize;
    while completed < jobs {
        // Submit as long as the SQ accepts.
        while submitted < jobs {
            let sqe = Sqe {
                user_data: submitted as u64,
                payload: payloads[submitted].clone(),
            };
            match ring.submit(sqe) {
                Ok(()) => submitted += 1,
                Err(_) => break, // SQ full: go do application work
            }
        }
        // The application keeps making progress...
        app_work += 1;
        // ...and reaps completions opportunistically.
        while let Some(cqe) = ring.try_complete() {
            let job = cqe.user_data as usize;
            let mut expect = Vec::new();
            for block in payloads[job].chunks_exact(64) {
                expect.extend_from_slice(&sha256_raw_block(block.try_into().unwrap()));
            }
            assert_eq!(cqe.result, expect, "job {job}");
            verified += 1;
            completed += 1;
        }
    }
    let processed = ring.shutdown();
    println!("submitted {jobs} hashing jobs asynchronously");
    println!("worker processed {processed}, all {verified} digests verified");
    println!("application loop iterations while waiting: {app_work}");
}
