//! Fault-injection framework tests: schedule determinism, spec parsing,
//! and the injector driving shared fault state on a live SoC. This is the
//! suite the CI `chaos` job runs.

use cohort_sim::component::{Component, TileCoord};
use cohort_sim::config::SocConfig;
use cohort_sim::faultinject::{FaultInjector, FaultKind, FaultPlan, RandomFaults, FOREVER};
use cohort_sim::soc::Soc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn schedule_is_deterministic_and_sorted() {
    let make = || {
        FaultPlan::default()
            .at(900, FaultKind::CorruptDescriptor)
            .at(100, FaultKind::AccelStall { cycles: 10 })
            .with_random(RandomFaults {
                seed: 7,
                count: 16,
                from: 0,
                to: 100_000,
            })
    };
    let a = make().schedule();
    let b = make().schedule();
    assert_eq!(a, b, "equal plans must resolve to identical schedules");
    assert_eq!(a.len(), 18, "two explicit + sixteen random events");
    assert!(
        a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle),
        "sorted by cycle"
    );
    // A different seed yields a different schedule.
    let c = FaultPlan::default()
        .with_random(RandomFaults {
            seed: 8,
            count: 16,
            from: 0,
            to: 100_000,
        })
        .schedule();
    assert_ne!(a, c);
}

#[test]
fn random_events_stay_inside_the_window() {
    let plan = FaultPlan::default().with_random(RandomFaults {
        seed: 0xDECAF,
        count: 64,
        from: 5_000,
        to: 6_000,
    });
    for ev in plan.schedule() {
        assert!(
            (5_000..6_000).contains(&ev.at_cycle),
            "event at {}",
            ev.at_cycle
        );
    }
}

#[test]
fn parse_accepts_the_full_grammar() {
    let plan = FaultPlan::parse(
        "stall@1000:200; spike@2000:300:4; storm@3000:2; corrupt@4000; \
         stall@5000:forever; random:seed=9,count=3,from=10,to=20",
    )
    .expect("valid spec");
    assert_eq!(plan.events.len(), 5);
    assert_eq!(plan.events[0].kind, FaultKind::AccelStall { cycles: 200 });
    assert_eq!(
        plan.events[1].kind,
        FaultKind::LatencySpike {
            cycles: 300,
            factor: 4
        }
    );
    assert_eq!(plan.events[2].kind, FaultKind::PageFaultStorm { pages: 2 });
    assert_eq!(plan.events[3].kind, FaultKind::CorruptDescriptor);
    assert_eq!(
        plan.events[4].kind,
        FaultKind::AccelStall { cycles: FOREVER }
    );
    assert_eq!(
        plan.random,
        Some(RandomFaults {
            seed: 9,
            count: 3,
            from: 10,
            to: 20
        })
    );
}

#[test]
fn parse_rejects_malformed_entries() {
    for bad in [
        "stall@x:1",
        "spike@10:20",
        "storm@10",
        "corrupt@10:1",
        "wedge@10",
        "random:seed",
        "random:from=9,to=9",
    ] {
        assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
    }
    assert!(FaultPlan::parse("")
        .expect("empty spec is a no-op plan")
        .is_empty());
}

#[test]
fn injector_applies_events_and_drives_shared_state() {
    let plan = FaultPlan::default()
        .at(10, FaultKind::AccelStall { cycles: 100 })
        .at(
            20,
            FaultKind::LatencySpike {
                cycles: 50,
                factor: 4,
            },
        )
        .at(30, FaultKind::PageFaultStorm { pages: 2 })
        .at(40, FaultKind::CorruptDescriptor);
    let cfg = SocConfig::default().with_faults(plan.clone());
    let mut soc = Soc::new(cfg);
    let mut inj = FaultInjector::new(&plan, soc.fault_state().clone());
    let evictions = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&evictions);
    inj.set_storm_hook(Box::new(move |mem, pages| {
        // Prove the hook gets functional memory: leave a marker.
        mem.write_u64(0x9000, 0xFEED);
        seen.fetch_add(pages, Ordering::Relaxed);
        pages
    }));
    let id = soc.add_component(TileCoord::new(2, 0), Box::new(inj));

    let outcome = soc.run(500);
    assert!(
        outcome.quiescent,
        "injector drains its schedule and goes idle"
    );

    let state = soc.fault_state();
    assert!(state.accel_stalled(100), "stall covers [10, 110)");
    assert!(!state.accel_stalled(120), "stall expired");
    assert_eq!(state.latency_factor(60), 4, "spike covers [20, 70)");
    assert_eq!(state.latency_factor(80), 1, "spike expired");
    assert_eq!(
        evictions.load(Ordering::Relaxed),
        2,
        "storm asked for 2 pages"
    );
    assert_eq!(soc.mem.read_u64(0x9000), 0xFEED);

    let inj = soc
        .component::<FaultInjector>(id)
        .expect("injector present");
    assert_eq!(inj.pending(), 0, "all four events applied");
    let counters: std::collections::HashMap<_, _> = inj.counters().into_iter().collect();
    assert_eq!(counters["stalls"], 1);
    assert_eq!(counters["spikes"], 1);
    assert_eq!(counters["storms"], 1);
    assert_eq!(counters["corruptions"], 1);
    assert_eq!(counters["evicted_pages"], 2);
}

#[test]
fn two_runs_of_the_same_plan_produce_identical_stats() {
    let run = || {
        let plan = FaultPlan::default().with_random(RandomFaults {
            seed: 42,
            count: 6,
            from: 0,
            to: 400,
        });
        let cfg = SocConfig::default().with_faults(plan.clone());
        let mut soc = Soc::new(cfg);
        let inj = FaultInjector::new(&plan, soc.fault_state().clone());
        soc.add_component(TileCoord::new(2, 0), Box::new(inj));
        soc.run(1_000);
        soc.stats_json()
    };
    assert_eq!(run(), run(), "same seed, same snapshot");
}
