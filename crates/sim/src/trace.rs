//! Cycle-stamped structured event tracing.
//!
//! A [`Trace`] is a cloneable handle onto a shared, bounded ring buffer of
//! events. Components get a handle at attach time and emit:
//!
//! * *complete* events (`ph: "X"`) — a named span `[ts, ts+dur)`, used for
//!   NoC message flights and engine state-machine residencies;
//! * *instant* events (`ph: "i"`) — a point occurrence, used for coherence
//!   transitions (invalidations, downgrades).
//!
//! Timestamps are **cycles**, exported as microseconds in the Chrome
//! `trace_event` JSON format, so Perfetto / `chrome://tracing` renders one
//! cycle per microsecond. Each component is a "thread" (`tid` = component
//! id) named via metadata events; the whole SoC is `pid` 1.
//!
//! Tracing is disabled by default: the only cost on that path is one
//! relaxed atomic load behind [`Trace::is_enabled`], which every emit
//! helper checks before touching the ring. When the ring fills, the oldest
//! events are dropped — the tail of a run is usually the interesting part.

use crate::stats::json_string;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity (events) when tracing is enabled.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (Perfetto slice label).
    pub name: String,
    /// Category string (Perfetto filtering).
    pub cat: &'static str,
    /// Phase: `'X'` complete, `'i'` instant.
    pub ph: char,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (complete events only).
    pub dur: u64,
    /// Component id rendered as a Perfetto thread.
    pub tid: u64,
    /// Extra `args` key/value pairs.
    pub args: Vec<(&'static str, String)>,
}

struct TraceInner {
    enabled: AtomicBool,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    /// `tid` → thread name, emitted as `thread_name` metadata.
    threads: Mutex<Vec<(u64, String)>>,
    dropped: std::sync::atomic::AtomicU64,
}

/// Cloneable tracing handle; see the module docs.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .field("events", &self.inner.ring.lock().unwrap().len())
            .finish()
    }
}

impl Trace {
    /// Creates a disabled trace with the given ring capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(TraceInner {
                enabled: AtomicBool::new(false),
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
                threads: Mutex::new(Vec::new()),
                dropped: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Turns event recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// True when events are being recorded. The disabled fast path is this
    /// single load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Names the Perfetto thread for `tid` (component id).
    pub fn name_thread(&self, tid: u64, name: &str) {
        let mut threads = self.inner.threads.lock().unwrap();
        if let Some(slot) = threads.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = name.to_string();
        } else {
            threads.push((tid, name.to_string()));
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Emits a complete (`"X"`) span `[start, start+dur)` on thread `tid`.
    #[inline]
    pub fn complete(
        &self,
        tid: u64,
        cat: &'static str,
        name: impl Into<String>,
        start: u64,
        dur: u64,
        args: Vec<(&'static str, String)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts: start,
            dur,
            tid,
            args,
        });
    }

    /// Emits an instant (`"i"`) event at `ts` on thread `tid`.
    #[inline]
    pub fn instant(
        &self,
        tid: u64,
        cat: &'static str,
        name: impl Into<String>,
        ts: u64,
        args: Vec<(&'static str, String)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'i',
            ts,
            dur: 0,
            tid,
            args,
        });
    }

    /// Number of recorded events currently in the ring.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().unwrap().len()
    }

    /// True when the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Serialises the ring as Chrome `trace_event` JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto. Cycle timestamps
    /// are emitted as microseconds (`"ts"`/`"dur"` fields).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
        let mut first = true;
        for (tid, name) in self.inner.threads.lock().unwrap().iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(name)
            ));
        }
        for ev in self.inner.ring.lock().unwrap().iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": {}, \"cat\": \"{}\", \"ph\": \"{}\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}",
                json_string(&ev.name),
                ev.cat,
                ev.ph,
                ev.tid,
                ev.ts
            ));
            if ev.ph == 'X' {
                out.push_str(&format!(", \"dur\": {}", ev.dur));
            }
            if ev.ph == 'i' {
                // Thread-scoped instant marks render as arrows in Perfetto.
                out.push_str(", \"s\": \"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(", \"args\": {");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{k}\": {}", json_string(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new(16);
        t.complete(1, "noc", "msg", 10, 5, vec![]);
        t.instant(1, "coh", "inv", 12, vec![]);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_and_serialises() {
        let t = Trace::new(16);
        t.set_enabled(true);
        t.name_thread(3, "engine#3");
        t.complete(
            3,
            "engine",
            "Backoff",
            100,
            50,
            vec![("until", "150".into())],
        );
        t.instant(0, "coherence", "Inv", 120, vec![("line", "0x40".into())]);
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"engine#3\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 50"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"until\": \"150\""));
    }

    #[test]
    fn ring_drops_oldest() {
        let t = Trace::new(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.instant(0, "x", format!("e{i}"), i, vec![]);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let json = t.to_chrome_json();
        assert!(!json.contains("\"e0\""), "oldest evicted");
        assert!(json.contains("\"e9\""), "newest kept");
    }

    #[test]
    fn clones_share_the_ring() {
        let t = Trace::new(8);
        t.set_enabled(true);
        let t2 = t.clone();
        t2.instant(0, "x", "shared", 1, vec![]);
        assert_eq!(t.len(), 1);
    }
}
