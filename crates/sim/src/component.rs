//! Component plumbing: identifiers, tile placement, the [`Component`] trait
//! and the per-step context handed to components.

use std::collections::VecDeque;

use crate::msg::{Envelope, Msg};
use crate::stage::StagedMem;
use crate::stats::{Counter, Histogram, Stats};
use crate::trace::Trace;

/// Index of a component within its [`crate::soc::Soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub usize);

impl std::fmt::Display for CompId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

/// Position of a component's tile in the 2-D mesh, used for hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TileCoord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other` in hops.
    pub fn hops_to(&self, other: TileCoord) -> u64 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u64
    }
}

/// An outgoing message staged during a component's step.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Destination component.
    pub dst: CompId,
    /// Routed payload (the source is filled in by [`Ctx::send`]).
    pub env: Envelope,
    /// Extra sender-side delay before NoC injection (device processing
    /// time, e.g. an MMIO register file's access latency).
    pub extra_delay: u64,
}

/// Mapping from MMIO physical-address ranges to the owning device.
#[derive(Debug, Default, Clone)]
pub struct MmioMap {
    ranges: Vec<(std::ops::Range<u64>, CompId)>,
}

impl MmioMap {
    /// Registers `range` as belonging to `comp`.
    ///
    /// # Panics
    /// Panics if the range overlaps an existing mapping.
    pub fn map(&mut self, range: std::ops::Range<u64>, comp: CompId) {
        for (r, _) in &self.ranges {
            assert!(
                range.end <= r.start || range.start >= r.end,
                "MMIO range {range:?} overlaps {r:?}"
            );
        }
        self.ranges.push((range, comp));
    }

    /// Looks up the device owning physical address `pa`.
    pub fn target(&self, pa: u64) -> Option<CompId> {
        self.ranges
            .iter()
            .find(|(r, _)| r.contains(&pa))
            .map(|(_, c)| *c)
    }
}

/// Per-step context: simulated time, the component's inbox, an outbox, and
/// functional memory.
pub struct Ctx<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// The stepping component's own id.
    pub self_id: CompId,
    /// The component's write-staged view of functional memory: reads see
    /// committed memory plus the component's own writes from this cycle;
    /// writes become visible to *other* components only at the cycle
    /// barrier (see [`crate::stage`]).
    pub mem: StagedMem<'a>,
    pub(crate) inbox: &'a mut VecDeque<Envelope>,
    pub(crate) outbox: &'a mut Vec<Outgoing>,
    pub(crate) mmio_map: &'a MmioMap,
}

impl<'a> Ctx<'a> {
    /// Takes the next delivered message, if any.
    pub fn recv(&mut self) -> Option<Envelope> {
        self.inbox.pop_front()
    }

    /// Sends `msg` to `dst`; it will be injected into the NoC when the step
    /// completes and delivered after the routing latency.
    pub fn send(&mut self, dst: CompId, msg: Msg) {
        let env = Envelope {
            src: self.self_id,
            msg,
        };
        self.outbox.push(Outgoing {
            dst,
            env,
            extra_delay: 0,
        });
    }

    /// Sends `msg` to `dst` after an extra `delay` cycles of sender-side
    /// processing (used for MMIO device latency).
    pub fn send_delayed(&mut self, dst: CompId, msg: Msg, delay: u64) {
        let env = Envelope {
            src: self.self_id,
            msg,
        };
        self.outbox.push(Outgoing {
            dst,
            env,
            extra_delay: delay,
        });
    }

    /// Looks up the device owning MMIO physical address `pa`.
    pub fn mmio_target(&self, pa: u64) -> Option<CompId> {
        self.mmio_map.target(pa)
    }
}

/// The observability context handed to a component when it joins a SoC
/// ([`Component::attach`]): the shared [`Stats`] registry, the shared
/// [`Trace`] handle, and the component's scope (`name#id`).
///
/// Helper methods create registry entries under the component's scope, so
/// two engines never collide on counter names.
#[derive(Debug, Clone)]
pub struct Observability {
    /// The SoC-wide stats registry.
    pub stats: Stats,
    /// The SoC-wide event trace.
    pub trace: Trace,
    /// Scope prefix (`name#id`) for registry names.
    pub scope: String,
    /// Trace thread id (the component's [`CompId`] index).
    pub tid: u64,
}

impl Observability {
    /// Gets or creates the scoped counter `scope.name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.stats.counter(&format!("{}.{name}", self.scope))
    }

    /// Registers an existing counter handle as `scope.name`.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.stats
            .adopt_counter(&format!("{}.{name}", self.scope), counter);
    }

    /// Gets or creates the scoped histogram `scope.name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.stats.histogram(&format!("{}.{name}", self.scope))
    }

    /// Registers an existing histogram handle as `scope.name`.
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        self.stats
            .adopt_histogram(&format!("{}.{name}", self.scope), histogram);
    }
}

/// A simulated hardware component: a core, the directory, the Cohort engine,
/// a MAPLE unit, ...
///
/// Components are stepped once per cycle after NoC deliveries for that cycle
/// have been placed in their inbox. A component should drain its inbox every
/// step even when otherwise idle.
///
/// Components are `Send` so the SoC may step them from worker threads
/// ([`crate::config::SocConfig::threads`]); they are never shared between
/// threads (`Sync` is not required) — each slot is stepped by exactly one
/// thread per cycle.
pub trait Component: Send {
    /// Short human-readable name, used in stats dumps.
    fn name(&self) -> &str;

    /// Stats/trace scope for this component once it holds slot `id`.
    ///
    /// The default (`name#<slot>`) is unique by construction. Components
    /// with a stable identity of their own — e.g. a Cohort engine knows
    /// its engine index — override this so the scope survives slot-order
    /// changes and two instances can never alias (`engine#0`, `engine#1`).
    fn scope(&self, id: CompId) -> String {
        format!("{}#{}", self.name(), id.0)
    }

    /// Called once when the component is added to a SoC
    /// ([`crate::soc::Soc::add_component`]). Implementations register
    /// their counters/histograms in `obs.stats` and keep a clone of
    /// `obs.trace` for event emission. The default does nothing, so
    /// simple probe components need not care.
    fn attach(&mut self, obs: &Observability) {
        let _ = obs;
    }

    /// Advances the component by one cycle.
    fn step(&mut self, ctx: &mut Ctx<'_>);

    /// True when the component has no pending internal work. The SoC stops
    /// when every component is idle and no messages are in flight.
    fn is_idle(&self) -> bool;

    /// Conservative lookahead hint: the number of upcoming cycles
    /// (starting at `now`) for which stepping this component would be a
    /// provable no-op, **assuming its inbox stays empty and committed
    /// memory is unchanged** for that whole window. The SoC combines
    /// these hints with the NoC in-flight set and the fault plan to skip
    /// barriers ([`crate::config::Lookahead`]).
    ///
    /// The contract: if `quiescent_for(now)` returns `N`, then stepping
    /// the component at cycles `now..now + N - 1` (empty inbox, frozen
    /// memory) must not change any observable state — no sends, no memory
    /// writes, no state-machine transitions — *except* pure per-cycle
    /// bookkeeping (stall counters, occupancy histograms) which
    /// [`Component::fast_forward`] must then reconcile exactly.
    ///
    /// Over-stepping is always sound (the SoC may step anywhere inside
    /// the window); only an overshoot — returning `N` when the component
    /// would have acted at `now + j`, `j < N` — breaks determinism.
    /// Return `u64::MAX` when only an inbound message can wake the
    /// component. The default of 1 makes unported components correct by
    /// construction: they are stepped every cycle, exactly as before.
    fn quiescent_for(&self, now: u64) -> u64 {
        let _ = now;
        1
    }

    /// Reconciles per-cycle bookkeeping after the SoC skipped `skipped`
    /// consecutive cycles inside a window this component declared
    /// quiescent via [`Component::quiescent_for`]. Implementations must
    /// apply *exactly* what `skipped` individual steps would have
    /// recorded (e.g. `stall_cycles += skipped`,
    /// `occupancy.record_n(frozen_depth, skipped)`) and nothing else.
    /// The default does nothing, matching the default hint of 1 (a
    /// component that is stepped every cycle is never fast-forwarded).
    fn fast_forward(&mut self, skipped: u64) {
        let _ = skipped;
    }

    /// Performance counters exposed by this component.
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Downcast support for harness inspection.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_hops() {
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(2, 3);
        assert_eq!(a.hops_to(b), 5);
        assert_eq!(b.hops_to(a), 5);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn mmio_map_lookup() {
        let mut m = MmioMap::default();
        m.map(0x1000..0x2000, CompId(3));
        m.map(0x2000..0x3000, CompId(4));
        assert_eq!(m.target(0x1000), Some(CompId(3)));
        assert_eq!(m.target(0x1fff), Some(CompId(3)));
        assert_eq!(m.target(0x2000), Some(CompId(4)));
        assert_eq!(m.target(0x3000), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn mmio_map_rejects_overlap() {
        let mut m = MmioMap::default();
        m.map(0x1000..0x2000, CompId(0));
        m.map(0x1800..0x2800, CompId(1));
    }
}
