//! The shared L2 cache and MESI directory controller.
//!
//! This component is the coherence home for all of physical memory. It owns
//! an inclusive L2 tag array plus a sharer/owner table for lines that are
//! cached above it, and serializes transactions per line:
//!
//! * `GetS` — grant shared; if another agent owns the line exclusively it is
//!   downgraded first.
//! * `GetM` — grant exclusive; all other holders are invalidated first and
//!   their acknowledgements collected. **These invalidations are the signal
//!   the Cohort engine's reader coherency manager listens for** (paper
//!   §4.2.3).
//! * L2 misses pay a DRAM fill; inclusive evictions recall the line from
//!   every holder before the victim is dropped, which is what produces the
//!   capacity effect at the largest queue sizes in Figs. 8/9.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::cache::{LineState, TagArray};
use crate::component::{CompId, Component, Ctx};
use crate::config::SocConfig;
use crate::msg::{Envelope, Msg};

/// Directory-side sharing state for a line cached above the L2.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Read-only copies at these agents.
    Shared(Vec<CompId>),
    /// Exclusive/modified copy at this agent.
    Owned(CompId),
}

impl DirState {
    fn holders(&self) -> Vec<CompId> {
        match self {
            DirState::Shared(v) => v.clone(),
            DirState::Owned(o) => vec![*o],
        }
    }
}

/// Kind of an agent request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    GetS,
    GetM,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    kind: ReqKind,
    from: CompId,
    /// Full-line write: a DRAM fill may be skipped on a miss.
    no_fetch: bool,
}

#[derive(Debug)]
enum Phase {
    /// Waiting for a scheduled tag/fill access to complete.
    WaitAccess,
    /// Waiting for an inclusive-eviction recall of `vline` to finish.
    WaitVictim {
        #[allow(dead_code)]
        vline: u64,
        remaining: u32,
    },
    /// Waiting for invalidation acks before granting exclusive.
    WaitInvAcks { remaining: u32 },
    /// Waiting for the previous exclusive owner to downgrade.
    WaitDowngradeAck { prev_owner: CompId },
    /// This line is being recalled on behalf of a fill of `parent`.
    BlockedVictim { parent: u64 },
}

#[derive(Debug)]
struct Txn {
    queue: VecDeque<Req>,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DelayedKind {
    /// Tag hit: proceed with protocol action.
    Proceed,
    /// DRAM fill completed: install the line, then proceed.
    Fill,
}

#[derive(Debug, PartialEq, Eq)]
struct Delayed {
    at: u64,
    seq: u64,
    line: u64,
    kind: DelayedKind,
}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Performance counters exposed by the directory.
#[derive(Debug, Default, Clone)]
pub struct DirCounters {
    /// `GetS` requests served.
    pub gets: u64,
    /// `GetM` requests served.
    pub getm: u64,
    /// Invalidations sent (GetM + recalls).
    pub inv_sent: u64,
    /// Downgrades sent.
    pub downgrades: u64,
    /// L2 tag hits.
    pub l2_hits: u64,
    /// DRAM fills.
    pub fills: u64,
    /// Inclusive-eviction recalls.
    pub recalls: u64,
    /// Full-line-write installs that skipped the DRAM fill.
    pub wc_installs: u64,
}

/// The shared L2 + directory component. See module docs.
pub struct Directory {
    l2: TagArray,
    states: HashMap<u64, DirState>,
    txns: HashMap<u64, Txn>,
    delayed: BinaryHeap<Reverse<Delayed>>,
    seq: u64,
    l2_hit: u64,
    dram: u64,
    counters: DirCounters,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("active_txns", &self.txns.len())
            .field("tracked_lines", &self.states.len())
            .finish()
    }
}

impl Directory {
    /// Creates a directory with the L2 geometry and timing from `cfg`.
    pub fn new(cfg: &SocConfig) -> Self {
        Self {
            l2: TagArray::new(cfg.l2),
            states: HashMap::new(),
            txns: HashMap::new(),
            delayed: BinaryHeap::new(),
            seq: 0,
            l2_hit: cfg.timing.l2_hit,
            dram: cfg.timing.dram,
            counters: DirCounters::default(),
        }
    }

    /// Snapshot of the performance counters.
    pub fn dir_counters(&self) -> &DirCounters {
        &self.counters
    }

    fn schedule(&mut self, at: u64, line: u64, kind: DelayedKind) {
        self.seq += 1;
        self.delayed.push(Reverse(Delayed { at, seq: self.seq, line, kind }));
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, line: u64, req: Req) {
        match req.kind {
            ReqKind::GetS => self.counters.gets += 1,
            ReqKind::GetM => self.counters.getm += 1,
        }
        if let Some(txn) = self.txns.get_mut(&line) {
            txn.queue.push_back(req);
            return;
        }
        let mut queue = VecDeque::new();
        queue.push_back(req);
        self.txns.insert(line, Txn { queue, phase: Phase::WaitAccess });
        self.start_access(ctx, line, req.no_fetch);
    }

    fn start_access(&mut self, ctx: &mut Ctx<'_>, line: u64, no_fetch: bool) {
        if self.l2.touch(line).is_some() {
            self.counters.l2_hits += 1;
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Proceed);
        } else if no_fetch {
            // Full-line write: install tags without touching DRAM.
            self.counters.wc_installs += 1;
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Fill);
        } else {
            self.counters.fills += 1;
            self.schedule(ctx.cycle + self.l2_hit + self.dram, line, DelayedKind::Fill);
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let txns = &self.txns;
        let result = self
            .l2
            .insert_with_victim_filter(line, LineState::S, |l| txns.contains_key(&l));
        match result {
            Err(()) => {
                // every victim candidate is mid-transaction; retry shortly
                self.schedule(ctx.cycle + 1, line, DelayedKind::Fill);
            }
            Ok(None) => self.proceed(ctx, line),
            Ok(Some((vline, _))) => {
                let holders = self
                    .states
                    .get(&vline)
                    .map(|s| s.holders())
                    .unwrap_or_default();
                if holders.is_empty() {
                    self.states.remove(&vline);
                    self.proceed(ctx, line);
                } else {
                    self.counters.recalls += 1;
                    self.txns.insert(
                        vline,
                        Txn { queue: VecDeque::new(), phase: Phase::BlockedVictim { parent: line } },
                    );
                    for h in &holders {
                        self.counters.inv_sent += 1;
                        ctx.send(*h, Msg::Inv { line: vline });
                    }
                    self.txns.get_mut(&line).expect("txn").phase =
                        Phase::WaitVictim { vline, remaining: holders.len() as u32 };
                }
            }
        }
    }

    fn proceed(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let req = *self
            .txns
            .get(&line)
            .and_then(|t| t.queue.front())
            .expect("proceed with empty queue");
        let state = self.states.get(&line).cloned();
        match (req.kind, state) {
            (ReqKind::GetS, None) => {
                self.states.insert(line, DirState::Shared(vec![req.from]));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Shared(mut set))) => {
                if !set.contains(&req.from) {
                    set.push(req.from);
                }
                self.states.insert(line, DirState::Shared(set));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Owned(o))) if o == req.from => {
                self.states.insert(line, DirState::Shared(vec![req.from]));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Owned(o))) => {
                self.counters.downgrades += 1;
                ctx.send(o, Msg::Downgrade { line });
                self.txns.get_mut(&line).expect("txn").phase =
                    Phase::WaitDowngradeAck { prev_owner: o };
            }
            (ReqKind::GetM, None) => {
                self.states.insert(line, DirState::Owned(req.from));
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            (ReqKind::GetM, Some(DirState::Shared(set))) => {
                let targets: Vec<CompId> =
                    set.iter().copied().filter(|c| *c != req.from).collect();
                if targets.is_empty() {
                    self.states.insert(line, DirState::Owned(req.from));
                    self.grant(ctx, line, req, Msg::DataM { line });
                } else {
                    for t in &targets {
                        self.counters.inv_sent += 1;
                        ctx.send(*t, Msg::Inv { line });
                    }
                    self.txns.get_mut(&line).expect("txn").phase =
                        Phase::WaitInvAcks { remaining: targets.len() as u32 };
                }
            }
            (ReqKind::GetM, Some(DirState::Owned(o))) if o == req.from => {
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            (ReqKind::GetM, Some(DirState::Owned(o))) => {
                self.counters.inv_sent += 1;
                ctx.send(o, Msg::Inv { line });
                self.txns.get_mut(&line).expect("txn").phase =
                    Phase::WaitInvAcks { remaining: 1 };
            }
        }
    }

    fn grant(&mut self, ctx: &mut Ctx<'_>, line: u64, req: Req, msg: Msg) {
        ctx.send(req.from, msg);
        let txn = self.txns.get_mut(&line).expect("txn");
        txn.queue.pop_front();
        txn.phase = Phase::WaitAccess;
        if txn.queue.is_empty() {
            self.txns.remove(&line);
        } else {
            // Serialize back-to-back requests through the tag pipeline.
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Proceed);
        }
    }

    fn on_inv_ack(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        enum Next {
            GrantM,
            Victim { parent: u64 },
            Pending,
        }
        let next = {
            let txn = match self.txns.get_mut(&line) {
                Some(t) => t,
                None => return, // stale ack (benign)
            };
            match &mut txn.phase {
                Phase::WaitInvAcks { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        Next::GrantM
                    } else {
                        Next::Pending
                    }
                }
                Phase::BlockedVictim { parent } => Next::Victim { parent: *parent },
                _ => Next::Pending,
            }
        };
        match next {
            Next::Pending => {}
            Next::GrantM => {
                let req = *self
                    .txns
                    .get(&line)
                    .and_then(|t| t.queue.front())
                    .expect("GetM txn");
                self.states.insert(line, DirState::Owned(req.from));
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            Next::Victim { parent } => {
                let done = {
                    let ptxn = self.txns.get_mut(&parent).expect("parent txn");
                    match &mut ptxn.phase {
                        Phase::WaitVictim { remaining, .. } => {
                            *remaining -= 1;
                            *remaining == 0
                        }
                        _ => unreachable!("victim parent in wrong phase"),
                    }
                };
                if done {
                    self.states.remove(&line);
                    let vtxn = self.txns.remove(&line).expect("victim txn");
                    self.proceed(ctx, parent);
                    // Requests that queued on the victim while it was being
                    // recalled start over as fresh transactions.
                    for req in vtxn.queue {
                        self.on_request(ctx, line, req);
                    }
                }
            }
        }
    }

    fn on_downgrade_ack(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let prev_owner = match self.txns.get(&line) {
            Some(Txn { phase: Phase::WaitDowngradeAck { prev_owner }, .. }) => *prev_owner,
            _ => return, // stale ack
        };
        let req = *self
            .txns
            .get(&line)
            .and_then(|t| t.queue.front())
            .expect("GetS txn");
        let mut set = vec![prev_owner];
        if req.from != prev_owner {
            set.push(req.from);
        }
        self.states.insert(line, DirState::Shared(set));
        self.grant(ctx, line, req, Msg::DataS { line });
    }

    fn on_put(&mut self, line: u64, from: CompId) {
        if self.txns.contains_key(&line) {
            // A transaction is mid-flight on this line; the eviction will be
            // reconciled by the always-ack rule. Dropping the notification
            // leaves at worst a stale sharer, which is benign.
            return;
        }
        match self.states.get_mut(&line) {
            Some(DirState::Shared(set)) => {
                set.retain(|c| *c != from);
                if set.is_empty() {
                    self.states.remove(&line);
                }
            }
            Some(DirState::Owned(o)) if *o == from => {
                self.states.remove(&line);
            }
            _ => {}
        }
    }
}

impl Component for Directory {
    fn name(&self) -> &str {
        "directory"
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(Envelope { src, msg }) = ctx.recv() {
            match msg {
                Msg::GetS { line } => self.on_request(
                    ctx,
                    line,
                    Req { kind: ReqKind::GetS, from: src, no_fetch: false },
                ),
                Msg::GetM { line, no_fetch } => self.on_request(
                    ctx,
                    line,
                    Req { kind: ReqKind::GetM, from: src, no_fetch },
                ),
                Msg::InvAck { line } => self.on_inv_ack(ctx, line),
                Msg::DowngradeAck { line } => self.on_downgrade_ack(ctx, line),
                Msg::PutLine { line, .. } => self.on_put(line, src),
                other => panic!("directory received unexpected message {other:?}"),
            }
        }
        while let Some(Reverse(d)) = self.delayed.peek() {
            if d.at > ctx.cycle {
                break;
            }
            let Reverse(d) = self.delayed.pop().expect("peeked");
            if !self.txns.contains_key(&d.line) {
                continue; // transaction satisfied through another path
            }
            match d.kind {
                DelayedKind::Proceed => self.proceed(ctx, d.line),
                DelayedKind::Fill => self.fill(ctx, d.line),
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.txns.is_empty() && self.delayed.is_empty()
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        vec![
            ("gets".into(), c.gets),
            ("getm".into(), c.getm),
            ("inv_sent".into(), c.inv_sent),
            ("downgrades".into(), c.downgrades),
            ("l2_hits".into(), c.l2_hits),
            ("fills".into(), c.fills),
            ("recalls".into(), c.recalls),
            ("wc_installs".into(), c.wc_installs),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
