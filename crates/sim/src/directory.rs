//! The shared L2 cache and MESI directory controller.
//!
//! This component is the coherence home for all of physical memory. It owns
//! an inclusive L2 tag array plus a sharer/owner table for lines that are
//! cached above it, and serializes transactions per line:
//!
//! * `GetS` — grant shared; if another agent owns the line exclusively it is
//!   downgraded first.
//! * `GetM` — grant exclusive; all other holders are invalidated first and
//!   their acknowledgements collected. **These invalidations are the signal
//!   the Cohort engine's reader coherency manager listens for** (paper
//!   §4.2.3).
//! * L2 misses pay a DRAM fill; inclusive evictions recall the line from
//!   every holder before the victim is dropped, which is what produces the
//!   capacity effect at the largest queue sizes in Figs. 8/9.
//!
//! Fills pay a flat [`crate::config::TimingConfig::dram`] latency by
//! default. When [`crate::config::SocConfig::dram`] is set they route
//! through the bank/channel contention model ([`crate::dram`]) instead,
//! and the directory additionally caps concurrent transactions at the
//! configured MSHR count — overflow waits at the ingress, which is how
//! memory saturation propagates back to cores and engines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::cache::{LineState, TagArray};
use crate::component::{CompId, Component, Ctx, Observability};
use crate::config::SocConfig;
use crate::dram::DramModel;
use crate::msg::{Envelope, Msg};
use crate::stats::{Counter, Histogram};
use crate::trace::Trace;

/// Directory-side sharing state for a line cached above the L2.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Read-only copies at these agents.
    Shared(Vec<CompId>),
    /// Exclusive/modified copy at this agent.
    Owned(CompId),
}

impl DirState {
    fn holders(&self) -> Vec<CompId> {
        match self {
            DirState::Shared(v) => v.clone(),
            DirState::Owned(o) => vec![*o],
        }
    }
}

/// Kind of an agent request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    GetS,
    GetM,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    kind: ReqKind,
    from: CompId,
    /// Full-line write: a DRAM fill may be skipped on a miss.
    no_fetch: bool,
}

#[derive(Debug)]
enum Phase {
    /// Waiting for a scheduled tag/fill access to complete.
    WaitAccess,
    /// Waiting for an inclusive-eviction recall of `vline` to finish.
    WaitVictim {
        #[allow(dead_code)]
        vline: u64,
        remaining: u32,
    },
    /// Waiting for invalidation acks before granting exclusive.
    WaitInvAcks { remaining: u32 },
    /// Waiting for the previous exclusive owner to downgrade.
    WaitDowngradeAck { prev_owner: CompId },
    /// This line is being recalled on behalf of a fill of `parent`.
    BlockedVictim { parent: u64 },
}

#[derive(Debug)]
struct Txn {
    queue: VecDeque<Req>,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DelayedKind {
    /// Tag hit: proceed with protocol action.
    Proceed,
    /// DRAM fill completed: install the line, then proceed.
    Fill,
    /// A full DRAM channel queue rejected this fill; re-issue it (the due
    /// cycle is when the channel's oldest entry retires). Only scheduled
    /// when the contention model is enabled.
    DramIssue,
}

#[derive(Debug, PartialEq, Eq)]
struct Delayed {
    at: u64,
    seq: u64,
    line: u64,
    kind: DelayedKind,
}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Performance counters exposed by the directory. Fields are
/// registry-backed [`crate::stats::Counter`] handles shared with the
/// stats registry once the directory is attached to a SoC.
#[derive(Debug, Default, Clone)]
pub struct DirCounters {
    /// `GetS` requests served.
    pub gets: Counter,
    /// `GetM` requests served.
    pub getm: Counter,
    /// Invalidations sent (GetM + recalls).
    pub inv_sent: Counter,
    /// Downgrades sent.
    pub downgrades: Counter,
    /// L2 tag hits.
    pub l2_hits: Counter,
    /// DRAM fills.
    pub fills: Counter,
    /// Inclusive-eviction recalls.
    pub recalls: Counter,
    /// Full-line-write installs that skipped the DRAM fill.
    pub wc_installs: Counter,
    /// Requests parked at the ingress because every MSHR was busy (only
    /// non-zero when the DRAM contention model caps transactions).
    pub mshr_stalls: Counter,
}

/// The shared L2 + directory component. See module docs.
pub struct Directory {
    l2: TagArray,
    states: HashMap<u64, DirState>,
    txns: HashMap<u64, Txn>,
    delayed: BinaryHeap<Reverse<Delayed>>,
    seq: u64,
    l2_hit: u64,
    dram: u64,
    /// Opt-in contention model; `None` keeps the flat `dram` constant.
    dram_model: Option<DramModel>,
    /// Concurrent transactions before new requests wait at the ingress
    /// (`usize::MAX` when the contention model is off).
    mshr_limit: usize,
    /// Requests admitted only when an MSHR frees, in arrival order. This
    /// is the NoC-ingress backpressure point: requests here occupy their
    /// requester's finite MSHR/MTE slots, so a saturated directory stalls
    /// the cores and engines behind it instead of queueing unboundedly.
    waiting: VecDeque<(u64, Req)>,
    /// Ingress-queue occupancy observed by each stalled request.
    mshr_wait_depth: Histogram,
    counters: DirCounters,
    trace: Option<Trace>,
    tid: u64,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("active_txns", &self.txns.len())
            .field("tracked_lines", &self.states.len())
            .finish()
    }
}

impl Directory {
    /// Creates a directory with the L2 geometry and timing from `cfg`.
    pub fn new(cfg: &SocConfig) -> Self {
        Self {
            l2: TagArray::new(cfg.l2),
            states: HashMap::new(),
            txns: HashMap::new(),
            delayed: BinaryHeap::new(),
            seq: 0,
            l2_hit: cfg.timing.l2_hit,
            dram: cfg.timing.dram,
            dram_model: cfg.dram.clone().map(DramModel::new),
            mshr_limit: cfg.dram.as_ref().map_or(usize::MAX, |d| d.mshrs),
            waiting: VecDeque::new(),
            mshr_wait_depth: Histogram::new(),
            counters: DirCounters::default(),
            trace: None,
            tid: 0,
        }
    }

    /// The DRAM contention model, when enabled (test/report introspection).
    pub fn dram_model(&self) -> Option<&DramModel> {
        self.dram_model.as_ref()
    }

    /// Snapshot of the performance counters.
    pub fn dir_counters(&self) -> &DirCounters {
        &self.counters
    }

    fn schedule(&mut self, at: u64, line: u64, kind: DelayedKind) {
        self.seq += 1;
        self.delayed.push(Reverse(Delayed {
            at,
            seq: self.seq,
            line,
            kind,
        }));
    }

    /// Emits a coherence-transition instant event when tracing is on.
    fn trace_coh(&self, cycle: u64, name: &'static str, line: u64, agent: CompId) {
        if let Some(t) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            t.instant(
                self.tid,
                "coherence",
                name,
                cycle,
                vec![("line", format!("{line:#x}")), ("agent", agent.to_string())],
            );
        }
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, line: u64, req: Req) {
        match req.kind {
            ReqKind::GetS => self.counters.gets.inc(),
            ReqKind::GetM => self.counters.getm.inc(),
        }
        self.admit(ctx, line, req);
    }

    /// Starts (or queues) a counted request. Separate from [`Self::on_request`]
    /// so draining the MSHR ingress queue does not double-count.
    fn admit(&mut self, ctx: &mut Ctx<'_>, line: u64, req: Req) {
        if let Some(txn) = self.txns.get_mut(&line) {
            txn.queue.push_back(req);
            return;
        }
        if self.txns.len() >= self.mshr_limit {
            self.counters.mshr_stalls.inc();
            self.mshr_wait_depth.record(self.waiting.len() as u64 + 1);
            self.waiting.push_back((line, req));
            return;
        }
        let mut queue = VecDeque::new();
        queue.push_back(req);
        self.txns.insert(
            line,
            Txn {
                queue,
                phase: Phase::WaitAccess,
            },
        );
        self.start_access(ctx, line, req.no_fetch);
    }

    fn start_access(&mut self, ctx: &mut Ctx<'_>, line: u64, no_fetch: bool) {
        if self.l2.touch(line).is_some() {
            self.counters.l2_hits.inc();
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Proceed);
        } else if no_fetch {
            // Full-line write: install tags without touching DRAM.
            self.counters.wc_installs.inc();
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Fill);
        } else {
            self.counters.fills.inc();
            if self.dram_model.is_some() {
                // The miss is known after the tag lookup; issue to DRAM then.
                self.issue_dram(ctx.cycle + self.l2_hit, line);
            } else {
                self.schedule(ctx.cycle + self.l2_hit + self.dram, line, DelayedKind::Fill);
            }
        }
    }

    /// Issues (or re-issues) a fill for `line` to the contention model at
    /// cycle `at`. A full channel queue schedules a retry for the exact
    /// cycle a slot frees — the model reports its next retire cycle, so no
    /// polling and no lost wakeups.
    fn issue_dram(&mut self, at: u64, line: u64) {
        let dram = self.dram_model.as_mut().expect("contention model enabled");
        match dram.enqueue(at, line) {
            Ok(done) => self.schedule(done, line, DelayedKind::Fill),
            Err(retry) => self.schedule(retry, line, DelayedKind::DramIssue),
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let txns = &self.txns;
        let result = self
            .l2
            .insert_with_victim_filter(line, LineState::S, |l| txns.contains_key(&l));
        match result {
            Err(()) => {
                // every victim candidate is mid-transaction; retry shortly
                self.schedule(ctx.cycle + 1, line, DelayedKind::Fill);
            }
            Ok(None) => self.proceed(ctx, line),
            Ok(Some((vline, _))) => {
                let holders = self
                    .states
                    .get(&vline)
                    .map(|s| s.holders())
                    .unwrap_or_default();
                if holders.is_empty() {
                    self.states.remove(&vline);
                    self.proceed(ctx, line);
                } else {
                    self.counters.recalls.inc();
                    self.txns.insert(
                        vline,
                        Txn {
                            queue: VecDeque::new(),
                            phase: Phase::BlockedVictim { parent: line },
                        },
                    );
                    for h in &holders {
                        self.counters.inv_sent.inc();
                        self.trace_coh(ctx.cycle, "Recall", vline, *h);
                        ctx.send(*h, Msg::Inv { line: vline });
                    }
                    self.txns.get_mut(&line).expect("txn").phase = Phase::WaitVictim {
                        vline,
                        remaining: holders.len() as u32,
                    };
                }
            }
        }
    }

    fn proceed(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let req = *self
            .txns
            .get(&line)
            .and_then(|t| t.queue.front())
            .expect("proceed with empty queue");
        let state = self.states.get(&line).cloned();
        match (req.kind, state) {
            (ReqKind::GetS, None) => {
                self.states.insert(line, DirState::Shared(vec![req.from]));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Shared(mut set))) => {
                if !set.contains(&req.from) {
                    set.push(req.from);
                }
                self.states.insert(line, DirState::Shared(set));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Owned(o))) if o == req.from => {
                self.states.insert(line, DirState::Shared(vec![req.from]));
                self.grant(ctx, line, req, Msg::DataS { line });
            }
            (ReqKind::GetS, Some(DirState::Owned(o))) => {
                self.counters.downgrades.inc();
                self.trace_coh(ctx.cycle, "Downgrade", line, o);
                ctx.send(o, Msg::Downgrade { line });
                self.txns.get_mut(&line).expect("txn").phase =
                    Phase::WaitDowngradeAck { prev_owner: o };
            }
            (ReqKind::GetM, None) => {
                self.states.insert(line, DirState::Owned(req.from));
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            (ReqKind::GetM, Some(DirState::Shared(set))) => {
                let targets: Vec<CompId> = set.iter().copied().filter(|c| *c != req.from).collect();
                if targets.is_empty() {
                    self.states.insert(line, DirState::Owned(req.from));
                    self.grant(ctx, line, req, Msg::DataM { line });
                } else {
                    for t in &targets {
                        self.counters.inv_sent.inc();
                        self.trace_coh(ctx.cycle, "Inv", line, *t);
                        ctx.send(*t, Msg::Inv { line });
                    }
                    self.txns.get_mut(&line).expect("txn").phase = Phase::WaitInvAcks {
                        remaining: targets.len() as u32,
                    };
                }
            }
            (ReqKind::GetM, Some(DirState::Owned(o))) if o == req.from => {
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            (ReqKind::GetM, Some(DirState::Owned(o))) => {
                self.counters.inv_sent.inc();
                self.trace_coh(ctx.cycle, "Inv", line, o);
                ctx.send(o, Msg::Inv { line });
                self.txns.get_mut(&line).expect("txn").phase = Phase::WaitInvAcks { remaining: 1 };
            }
        }
    }

    fn grant(&mut self, ctx: &mut Ctx<'_>, line: u64, req: Req, msg: Msg) {
        self.trace_coh(ctx.cycle, msg.kind(), line, req.from);
        ctx.send(req.from, msg);
        let txn = self.txns.get_mut(&line).expect("txn");
        txn.queue.pop_front();
        txn.phase = Phase::WaitAccess;
        if txn.queue.is_empty() {
            self.txns.remove(&line);
        } else {
            // Serialize back-to-back requests through the tag pipeline.
            self.schedule(ctx.cycle + self.l2_hit, line, DelayedKind::Proceed);
        }
    }

    fn on_inv_ack(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        enum Next {
            GrantM,
            Victim { parent: u64 },
            Pending,
        }
        let next = {
            let txn = match self.txns.get_mut(&line) {
                Some(t) => t,
                None => return, // stale ack (benign)
            };
            match &mut txn.phase {
                Phase::WaitInvAcks { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        Next::GrantM
                    } else {
                        Next::Pending
                    }
                }
                Phase::BlockedVictim { parent } => Next::Victim { parent: *parent },
                _ => Next::Pending,
            }
        };
        match next {
            Next::Pending => {}
            Next::GrantM => {
                let req = *self
                    .txns
                    .get(&line)
                    .and_then(|t| t.queue.front())
                    .expect("GetM txn");
                self.states.insert(line, DirState::Owned(req.from));
                self.grant(ctx, line, req, Msg::DataM { line });
            }
            Next::Victim { parent } => {
                let done = {
                    let ptxn = self.txns.get_mut(&parent).expect("parent txn");
                    match &mut ptxn.phase {
                        Phase::WaitVictim { remaining, .. } => {
                            *remaining -= 1;
                            *remaining == 0
                        }
                        _ => unreachable!("victim parent in wrong phase"),
                    }
                };
                if done {
                    self.states.remove(&line);
                    let vtxn = self.txns.remove(&line).expect("victim txn");
                    self.proceed(ctx, parent);
                    // Requests that queued on the victim while it was being
                    // recalled start over as fresh transactions.
                    for req in vtxn.queue {
                        self.on_request(ctx, line, req);
                    }
                }
            }
        }
    }

    fn on_downgrade_ack(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        let prev_owner = match self.txns.get(&line) {
            Some(Txn {
                phase: Phase::WaitDowngradeAck { prev_owner },
                ..
            }) => *prev_owner,
            _ => return, // stale ack
        };
        let req = *self
            .txns
            .get(&line)
            .and_then(|t| t.queue.front())
            .expect("GetS txn");
        let mut set = vec![prev_owner];
        if req.from != prev_owner {
            set.push(req.from);
        }
        self.states.insert(line, DirState::Shared(set));
        self.grant(ctx, line, req, Msg::DataS { line });
    }

    fn on_put(&mut self, line: u64, from: CompId) {
        if self.txns.contains_key(&line) {
            // A transaction is mid-flight on this line; the eviction will be
            // reconciled by the always-ack rule. Dropping the notification
            // leaves at worst a stale sharer, which is benign.
            return;
        }
        match self.states.get_mut(&line) {
            Some(DirState::Shared(set)) => {
                set.retain(|c| *c != from);
                if set.is_empty() {
                    self.states.remove(&line);
                }
            }
            Some(DirState::Owned(o)) if *o == from => {
                self.states.remove(&line);
            }
            _ => {}
        }
    }
}

impl Component for Directory {
    fn name(&self) -> &str {
        "directory"
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(Envelope { src, msg }) = ctx.recv() {
            match msg {
                Msg::GetS { line } => self.on_request(
                    ctx,
                    line,
                    Req {
                        kind: ReqKind::GetS,
                        from: src,
                        no_fetch: false,
                    },
                ),
                Msg::GetM { line, no_fetch } => self.on_request(
                    ctx,
                    line,
                    Req {
                        kind: ReqKind::GetM,
                        from: src,
                        no_fetch,
                    },
                ),
                Msg::InvAck { line } => self.on_inv_ack(ctx, line),
                Msg::DowngradeAck { line } => self.on_downgrade_ack(ctx, line),
                Msg::PutLine { line, .. } => self.on_put(line, src),
                other => panic!("directory received unexpected message {other:?}"),
            }
        }
        while let Some(Reverse(d)) = self.delayed.peek() {
            if d.at > ctx.cycle {
                break;
            }
            let Reverse(d) = self.delayed.pop().expect("peeked");
            if !self.txns.contains_key(&d.line) {
                continue; // transaction satisfied through another path
            }
            match d.kind {
                DelayedKind::Proceed => self.proceed(ctx, d.line),
                DelayedKind::Fill => self.fill(ctx, d.line),
                DelayedKind::DramIssue => self.issue_dram(ctx.cycle, d.line),
            }
        }
        // Transactions granted this cycle freed MSHRs; admit waiting
        // requests in arrival order. Appending to a still-live transaction
        // does not consume an MSHR, so the loop is bounded by the queue.
        while !self.waiting.is_empty() && self.txns.len() < self.mshr_limit {
            let (line, req) = self.waiting.pop_front().expect("checked non-empty");
            self.admit(ctx, line, req);
        }
    }

    fn is_idle(&self) -> bool {
        self.txns.is_empty() && self.delayed.is_empty() && self.waiting.is_empty()
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        // Everything the directory does is either a reaction to an
        // inbound message (inbox-gated by the SoC) or a delayed action
        // with an explicit due cycle; in-flight transactions waiting on
        // acks carry no per-cycle work. No per-cycle counters, so the
        // default no-op `fast_forward` is exact. DRAM-model events (fill
        // completions, full-queue retries) all live in the same delayed
        // heap, so the hint covers the next bank-ready/queue-drain event
        // too; ingress-parked requests are admitted only when a grant
        // frees an MSHR, and grants are themselves heap- or ack-driven.
        match self.delayed.peek() {
            Some(Reverse(d)) => d.at.saturating_sub(now).max(1),
            None => u64::MAX,
        }
    }

    fn attach(&mut self, obs: &Observability) {
        let c = &self.counters;
        for (name, counter) in [
            ("gets", &c.gets),
            ("getm", &c.getm),
            ("inv_sent", &c.inv_sent),
            ("downgrades", &c.downgrades),
            ("l2_hits", &c.l2_hits),
            ("fills", &c.fills),
            ("recalls", &c.recalls),
            ("wc_installs", &c.wc_installs),
        ] {
            obs.adopt_counter(name, counter);
        }
        // Contention-model stats register only when the model is on, so a
        // flat-memory run's stats_json stays byte-identical to before.
        if let Some(dram) = &self.dram_model {
            obs.adopt_counter("mshr_stalls", &c.mshr_stalls);
            obs.adopt_histogram("mshr_wait_depth", &self.mshr_wait_depth);
            dram.attach(obs);
        }
        self.trace = Some(obs.trace.clone());
        self.tid = obs.tid;
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let mut v = vec![
            ("gets".into(), c.gets.get()),
            ("getm".into(), c.getm.get()),
            ("inv_sent".into(), c.inv_sent.get()),
            ("downgrades".into(), c.downgrades.get()),
            ("l2_hits".into(), c.l2_hits.get()),
            ("fills".into(), c.fills.get()),
            ("recalls".into(), c.recalls.get()),
            ("wc_installs".into(), c.wc_installs.get()),
        ];
        if let Some(dram) = &self.dram_model {
            v.push(("mshr_stalls".into(), c.mshr_stalls.get()));
            v.extend(dram.counter_snapshot());
        }
        v
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
