//! A latency-model 2-D mesh network-on-chip.
//!
//! Latency between two tiles is `noc_base + hops * noc_per_hop +
//! serialization`, where serialization charges one extra cycle per 8-byte
//! flit beyond the head flit. Messages from the same source with equal
//! delivery cycles arrive in injection order (a monotonically increasing
//! sequence number breaks ties), which is what the directory protocol
//! relies on. Across *different* sources, same-cycle ties break on the
//! source tile coordinate — a physical property — rather than on global
//! injection order, so delivery order is invariant under component
//! registration order (part of the determinism contract, see
//! `docs/architecture.md`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::component::{CompId, TileCoord};
use crate::config::TimingConfig;
use crate::faultinject::FaultState;
use crate::msg::Envelope;
use crate::stats::{Counter, Histogram, Stats};
use crate::trace::Trace;

/// Trace thread id used for NoC flight events (components use their own
/// [`CompId`] index; this is far above any realistic component count).
pub const NOC_TRACE_TID: u64 = 1 << 32;

#[derive(Debug)]
struct InFlight {
    at: u64,
    /// Source tile as a sortable key (`(y, x)`): same-cycle ties across
    /// different sources break on mesh position, not injection order.
    src: (u16, u16),
    seq: u64,
    dst: CompId,
    env: Envelope,
}

impl InFlight {
    fn key(&self) -> (u64, (u16, u16), u64) {
        (self.at, self.src, self.seq)
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The mesh interconnect: computes delivery times and holds in-flight
/// messages.
#[derive(Debug)]
pub struct Noc {
    base: u64,
    per_hop: u64,
    heap: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    delivered: Counter,
    flits: Counter,
    hop_latency: Histogram,
    hops: Histogram,
    trace: Option<Trace>,
    faults: Option<FaultState>,
    /// Messages ejected into one destination per cycle before the rest
    /// slip a cycle (`None` = unlimited, the default). Enabled by the
    /// DRAM contention model so a hot destination (the directory) also
    /// backs traffic up in the mesh instead of draining instantly.
    ejection_width: Option<u64>,
    /// Deliveries deferred by the ejection limit.
    ejection_deferred: Counter,
}

impl Noc {
    /// Creates a NoC using the latency constants from `timing`.
    pub fn new(timing: &TimingConfig) -> Self {
        Self {
            base: timing.noc_base,
            per_hop: timing.noc_per_hop,
            heap: BinaryHeap::new(),
            seq: 0,
            delivered: Counter::new(),
            flits: Counter::new(),
            hop_latency: Histogram::new(),
            hops: Histogram::new(),
            trace: None,
            faults: None,
            ejection_width: None,
            ejection_deferred: Counter::new(),
        }
    }

    /// Caps deliveries into a single destination per simulated cycle;
    /// `0` means unlimited. Called by the SoC when the DRAM contention
    /// model is enabled.
    pub fn set_ejection_width(&mut self, width: u64) {
        self.ejection_width = (width > 0).then_some(width);
    }

    /// Connects the NoC to the shared fault switches: messages injected
    /// inside a latency-spike window take `factor`× their modelled
    /// latency. Called by the SoC.
    pub fn set_fault_state(&mut self, faults: FaultState) {
        self.faults = Some(faults);
    }

    /// Registers the NoC's counters and histograms in `stats` and keeps a
    /// trace handle for per-message flight events. Called by the SoC.
    pub fn attach(&mut self, stats: &Stats, trace: &Trace) {
        stats.adopt_counter("noc.delivered", &self.delivered);
        stats.adopt_counter("noc.flits", &self.flits);
        stats.adopt_histogram("noc.hop_latency", &self.hop_latency);
        stats.adopt_histogram("noc.hops", &self.hops);
        // Registered only when the limit is armed so flat-memory runs keep
        // a byte-identical stats_json.
        if self.ejection_width.is_some() {
            stats.adopt_counter("noc.ejection_deferred", &self.ejection_deferred);
        }
        trace.name_thread(NOC_TRACE_TID, "noc");
        self.trace = Some(trace.clone());
    }

    /// Latency in cycles for a message of `payload_bytes` between two tiles.
    pub fn latency(&self, from: TileCoord, to: TileCoord, payload_bytes: u64) -> u64 {
        let serialization = payload_bytes / 8; // one cycle per body flit
        self.base + from.hops_to(to) * self.per_hop + serialization
    }

    /// Injects a message at `cycle`; it will be delivered after the routing
    /// latency (always at least one cycle later).
    pub fn inject(
        &mut self,
        cycle: u64,
        from: TileCoord,
        to: TileCoord,
        dst: CompId,
        env: Envelope,
    ) {
        self.inject_delayed(cycle, from, to, dst, env, 0);
    }

    /// Like [`Noc::inject`] with extra sender-side delay before injection.
    pub fn inject_delayed(
        &mut self,
        cycle: u64,
        from: TileCoord,
        to: TileCoord,
        dst: CompId,
        env: Envelope,
        extra: u64,
    ) {
        let spike = self.faults.as_ref().map_or(1, |f| f.latency_factor(cycle));
        let lat = (self.latency(from, to, env.msg.payload_bytes()) + extra)
            .max(1)
            .saturating_mul(spike);
        self.seq += 1;
        self.flits.add(1 + env.msg.payload_bytes() / 8);
        self.hop_latency.record(lat);
        self.hops.record(from.hops_to(to));
        if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            let mut args = vec![
                ("src", env.src.to_string()),
                ("dst", dst.to_string()),
                ("hops", from.hops_to(to).to_string()),
            ];
            if let Some(line) = env.msg.line() {
                args.push(("line", format!("{line:#x}")));
            }
            trace.complete(NOC_TRACE_TID, "noc", env.msg.kind(), cycle, lat, args);
        }
        self.heap.push(Reverse(InFlight {
            at: cycle + lat,
            src: (from.y, from.x),
            seq: self.seq,
            dst,
            env,
        }));
    }

    /// Pops every message due at or before `cycle`.
    ///
    /// With an ejection width armed, at most `width` messages per due
    /// cycle reach any one destination; the overflow is re-queued one
    /// cycle later (keeping its original `(src, seq)` tie-break key, so
    /// ordering stays deterministic and source-FIFO). The re-queued cycle
    /// is visible through [`Noc::next_delivery`], which is what keeps
    /// lookahead batching from jumping over the slipped deliveries.
    pub fn deliver_due(&mut self, cycle: u64, mut sink: impl FnMut(CompId, Envelope)) {
        // (dst, count) for the due-cycle currently being drained; the heap
        // pops in `(at, src, seq)` order, so a change of `at` resets it.
        let mut draining_at = u64::MAX;
        let mut counts: Vec<(CompId, u64)> = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > cycle {
                break;
            }
            let Reverse(m) = self.heap.pop().expect("peeked");
            if let Some(width) = self.ejection_width {
                if m.at != draining_at {
                    draining_at = m.at;
                    counts.clear();
                }
                let slot = match counts.iter_mut().find(|(d, _)| *d == m.dst) {
                    Some((_, n)) => n,
                    None => {
                        counts.push((m.dst, 0));
                        &mut counts.last_mut().expect("just pushed").1
                    }
                };
                if *slot >= width {
                    self.ejection_deferred.inc();
                    self.heap.push(Reverse(InFlight { at: m.at + 1, ..m }));
                    continue;
                }
                *slot += 1;
            }
            self.delivered.inc();
            sink(m.dst, m.env);
        }
    }

    /// Cycle of the earliest pending delivery, if any (used to fast-forward
    /// quiescent periods).
    pub fn next_delivery(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(m)| m.at)
    }

    /// True when no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Total flits injected so far (1 head flit + 1 per 8 payload bytes).
    pub fn flits(&self) -> u64 {
        self.flits.get()
    }

    /// Per-message latency distribution (cycles from injection to
    /// delivery, including sender-side delay).
    pub fn hop_latency(&self) -> &Histogram {
        &self.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;

    fn env(line: u64) -> Envelope {
        Envelope {
            src: CompId(0),
            msg: Msg::GetS { line },
        }
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(1, 1);
        assert!(noc.latency(a, b, 0) > noc.latency(a, a, 0));
        assert!(noc.latency(a, b, 64) > noc.latency(a, b, 0));
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        noc.inject(0, a, a, CompId(1), env(0x40));
        noc.inject(0, a, a, CompId(1), env(0x80));
        let mut seen = Vec::new();
        noc.deliver_due(100, |_, e| seen.push(e.msg.line().unwrap()));
        assert_eq!(seen, vec![0x40, 0x80]);
        assert!(noc.is_empty());
    }

    #[test]
    fn not_delivered_early() {
        let mut noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(3, 0);
        noc.inject(0, a, b, CompId(1), env(0));
        let mut n = 0;
        noc.deliver_due(1, |_, _| n += 1);
        assert_eq!(n, 0, "3-hop message cannot arrive after 1 cycle");
        assert!(noc.next_delivery().unwrap() > 1);
        noc.deliver_due(1000, |_, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn latency_spike_window_multiplies_and_closes() {
        let mut noc = Noc::new(&TimingConfig::default());
        let fs = FaultState::default();
        noc.set_fault_state(fs.clone());
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(1, 0);
        let base = noc.latency(a, b, 0);
        fs.set_latency_spike(100, 4);
        noc.inject(0, a, b, CompId(1), env(0x40)); // inside the window
        assert_eq!(noc.next_delivery(), Some(4 * base));
        noc.inject(100, a, b, CompId(1), env(0x80)); // window closed
        let mut due: Vec<u64> = Vec::new();
        noc.deliver_due(1_000, |_, e| due.push(e.msg.line().unwrap()));
        assert_eq!(due.len(), 2);
        assert_eq!(noc.hop_latency().count(), 2);
    }

    #[test]
    fn minimum_one_cycle() {
        let timing = TimingConfig {
            noc_base: 0,
            noc_per_hop: 0,
            ..TimingConfig::default()
        };
        let mut noc = Noc::new(&timing);
        let a = TileCoord::new(0, 0);
        noc.inject(5, a, a, CompId(0), env(0));
        let mut n = 0;
        noc.deliver_due(5, |_, _| n += 1);
        assert_eq!(n, 0, "same-cycle delivery is not allowed");
    }
}
