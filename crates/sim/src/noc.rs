//! A latency-model 2-D mesh network-on-chip.
//!
//! Latency between two tiles is `noc_base + hops * noc_per_hop +
//! serialization`, where serialization charges one extra cycle per 8-byte
//! flit beyond the head flit. Messages between the same pair with equal
//! latency are delivered in FIFO order (a monotonically increasing sequence
//! number breaks ties), which is what the directory protocol relies on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::component::{CompId, TileCoord};
use crate::config::TimingConfig;
use crate::msg::Envelope;

#[derive(Debug)]
struct InFlight {
    at: u64,
    seq: u64,
    dst: CompId,
    env: Envelope,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The mesh interconnect: computes delivery times and holds in-flight
/// messages.
#[derive(Debug)]
pub struct Noc {
    base: u64,
    per_hop: u64,
    heap: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    delivered: u64,
    flits: u64,
}

impl Noc {
    /// Creates a NoC using the latency constants from `timing`.
    pub fn new(timing: &TimingConfig) -> Self {
        Self {
            base: timing.noc_base,
            per_hop: timing.noc_per_hop,
            heap: BinaryHeap::new(),
            seq: 0,
            delivered: 0,
            flits: 0,
        }
    }

    /// Latency in cycles for a message of `payload_bytes` between two tiles.
    pub fn latency(&self, from: TileCoord, to: TileCoord, payload_bytes: u64) -> u64 {
        let serialization = payload_bytes / 8; // one cycle per body flit
        self.base + from.hops_to(to) * self.per_hop + serialization
    }

    /// Injects a message at `cycle`; it will be delivered after the routing
    /// latency (always at least one cycle later).
    pub fn inject(
        &mut self,
        cycle: u64,
        from: TileCoord,
        to: TileCoord,
        dst: CompId,
        env: Envelope,
    ) {
        self.inject_delayed(cycle, from, to, dst, env, 0);
    }

    /// Like [`Noc::inject`] with extra sender-side delay before injection.
    pub fn inject_delayed(
        &mut self,
        cycle: u64,
        from: TileCoord,
        to: TileCoord,
        dst: CompId,
        env: Envelope,
        extra: u64,
    ) {
        let lat = (self.latency(from, to, env.msg.payload_bytes()) + extra).max(1);
        self.seq += 1;
        self.flits += 1 + env.msg.payload_bytes() / 8;
        self.heap.push(Reverse(InFlight { at: cycle + lat, seq: self.seq, dst, env }));
    }

    /// Pops every message due at or before `cycle`.
    pub fn deliver_due(&mut self, cycle: u64, mut sink: impl FnMut(CompId, Envelope)) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > cycle {
                break;
            }
            let Reverse(m) = self.heap.pop().expect("peeked");
            self.delivered += 1;
            sink(m.dst, m.env);
        }
    }

    /// Cycle of the earliest pending delivery, if any (used to fast-forward
    /// quiescent periods).
    pub fn next_delivery(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(m)| m.at)
    }

    /// True when no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total flits injected so far (1 head flit + 1 per 8 payload bytes).
    pub fn flits(&self) -> u64 {
        self.flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;

    fn env(line: u64) -> Envelope {
        Envelope { src: CompId(0), msg: Msg::GetS { line } }
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(1, 1);
        assert!(noc.latency(a, b, 0) > noc.latency(a, a, 0));
        assert!(noc.latency(a, b, 64) > noc.latency(a, b, 0));
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        noc.inject(0, a, a, CompId(1), env(0x40));
        noc.inject(0, a, a, CompId(1), env(0x80));
        let mut seen = Vec::new();
        noc.deliver_due(100, |_, e| seen.push(e.msg.line().unwrap()));
        assert_eq!(seen, vec![0x40, 0x80]);
        assert!(noc.is_empty());
    }

    #[test]
    fn not_delivered_early() {
        let mut noc = Noc::new(&TimingConfig::default());
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(3, 0);
        noc.inject(0, a, b, CompId(1), env(0));
        let mut n = 0;
        noc.deliver_due(1, |_, _| n += 1);
        assert_eq!(n, 0, "3-hop message cannot arrive after 1 cycle");
        assert!(noc.next_delivery().unwrap() > 1);
        noc.deliver_due(1000, |_, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn minimum_one_cycle() {
        let mut timing = TimingConfig::default();
        timing.noc_base = 0;
        timing.noc_per_hop = 0;
        let mut noc = Noc::new(&timing);
        let a = TileCoord::new(0, 0);
        noc.inject(5, a, a, CompId(0), env(0));
        let mut n = 0;
        noc.deliver_due(5, |_, _| n += 1);
        assert_eq!(n, 0, "same-cycle delivery is not allowed");
    }
}
