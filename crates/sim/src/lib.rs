//! # cohort-sim — cycle-level SoC substrate
//!
//! This crate is the hardware substrate for the Cohort reproduction: a
//! cycle-level simulator of a small tile-based system-on-chip in the style of
//! OpenPiton + Ariane, the platform the Cohort paper prototypes on (ASPLOS
//! 2023). It provides:
//!
//! * a sparse [`mem::PhysMem`] physical memory holding *real data* — the
//!   benchmarks push real bytes through real accelerator implementations and
//!   check the results;
//! * a 2-D mesh [`noc::Noc`] with per-hop latency and flit serialization;
//! * a MESI-style directory protocol ([`directory::Directory`]) with an
//!   inclusive shared L2, invalidations, downgrades and DRAM fills;
//! * a private-cache agent ([`port::CoherentPort`]) reused by cores, the
//!   Cohort engine's memory transaction engine, and the MAPLE baseline unit;
//! * an in-order core model ([`core::InOrderCore`]) executing abstract
//!   instruction streams ([`program::Op`]) with a store buffer, blocking
//!   MMIO semantics, spin-wait loops and interrupt handlers;
//! * the [`soc::Soc`] top level that owns components, routes messages and
//!   advances time.
//!
//! The fidelity notes live in `DESIGN.md` at the workspace root: the
//! simulator models the microarchitectural mechanisms that produce the
//! paper's latency/IPC numbers (coherence round trips, invalidation-driven
//! signalling, MMIO stalls, DMA programming overhead, cache capacity), with
//! latency constants collected in [`config::TimingConfig`].
//!
//! ## Example
//!
//! ```
//! use cohort_sim::config::SocConfig;
//! use cohort_sim::soc::Soc;
//! use cohort_sim::core::InOrderCore;
//! use cohort_sim::directory::Directory;
//! use cohort_sim::component::TileCoord;
//! use cohort_sim::program::{Op, Program};
//!
//! let cfg = SocConfig::default();
//! let mut soc = Soc::new(cfg.clone());
//! let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
//! let mut program = Program::new();
//! program.push(Op::Store { va: 0x1000, value: 42 });
//! program.push(Op::Fence);
//! let core = InOrderCore::new(dir, &cfg, program);
//! let core_id = soc.add_component(TileCoord::new(1, 0), Box::new(core));
//! let outcome = soc.run(1_000_000);
//! assert!(outcome.quiescent);
//! assert_eq!(soc.mem.read_u64(0x1000), 42);
//! # let _ = core_id;
//! ```

pub mod cache;
pub mod component;
pub mod config;
pub mod core;
pub mod directory;
pub mod dram;
pub mod faultinject;
pub mod mem;
pub mod msg;
pub mod noc;
pub(crate) mod parallel;
pub mod port;
pub mod program;
pub mod soc;
pub mod stage;
pub mod stats;
pub mod trace;
pub mod translate;

/// Bytes per cache line across the simulated SoC.
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned address containing `pa`.
#[inline]
pub fn line_of(pa: u64) -> u64 {
    pa & !(LINE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x1234), 0x1200);
    }
}
