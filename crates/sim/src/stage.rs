//! Per-cycle write staging: the mechanism behind the determinism contract.
//!
//! Components step against a [`StagedMem`]: reads see committed memory
//! overlaid with the component's *own* writes from the current cycle
//! (read-your-own-writes), while writes land in a per-component
//! [`WriteLog`]. The SoC commits every log to [`PhysMem`] at the cycle
//! barrier, in slot order.
//!
//! Two properties follow:
//!
//! * **Order independence.** A component never observes another
//!   component's same-cycle write — cross-component visibility is defined
//!   by the cycle barrier, not by where a component happens to sit in the
//!   step loop. Permuting registration order (or stepping components on
//!   different threads) cannot change what anyone reads.
//! * **Parallel safety.** During the step phase every component owns its
//!   log exclusively and reads `PhysMem` immutably, so slots can be
//!   stepped concurrently without synchronising on memory.
//!
//! Same-cycle writes by *different* components to the same byte commit in
//! slot order (last slot wins). The coherence protocol makes that case a
//! protocol violation — a byte is only writable by the agent holding the
//! line in M state — so honest components never hit it.

use crate::mem::{MemAccess, PhysMem};

/// One staged write: `data[start..start + len]` goes to physical address
/// `pa` at commit time.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pa: u64,
    start: u32,
    len: u32,
}

/// An ordered per-component write log with a shared byte arena. Cleared at
/// every commit; buffers are reused so steady-state staging allocates
/// nothing.
#[derive(Debug, Default)]
pub struct WriteLog {
    entries: Vec<Entry>,
    data: Vec<u8>,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of staged writes this cycle — the per-component activity
    /// sample feeding the SoC's cost-aware stripe model.
    pub fn staged_ops(&self) -> usize {
        self.entries.len()
    }

    /// Stages `data` for physical address `pa`.
    pub fn push(&mut self, pa: u64, data: &[u8]) {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(data);
        self.entries.push(Entry {
            pa,
            start,
            len: data.len() as u32,
        });
    }

    /// Applies staged bytes that overlap `buf` (which images memory at
    /// `pa..pa + buf.len()`), in staging order — the component's
    /// read-your-own-writes view.
    pub fn overlay(&self, pa: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        for e in &self.entries {
            let e_end = e.pa + u64::from(e.len);
            if e.pa >= pa + len || e_end <= pa {
                continue;
            }
            let from = e.pa.max(pa);
            let to = e_end.min(pa + len);
            let src = e.start as u64 + (from - e.pa);
            buf[(from - pa) as usize..(to - pa) as usize]
                .copy_from_slice(&self.data[src as usize..(src + (to - from)) as usize]);
        }
    }

    /// Applies every staged write to `mem` in staging order, then clears
    /// the log (retaining its buffers).
    pub fn commit(&mut self, mem: &mut PhysMem) {
        for e in &self.entries {
            mem.write_bytes(
                e.pa,
                &self.data[e.start as usize..(e.start + e.len) as usize],
            );
        }
        self.entries.clear();
        self.data.clear();
    }
}

/// A component's view of memory during one step: committed [`PhysMem`]
/// overlaid with the component's own staged writes.
pub struct StagedMem<'a> {
    base: &'a PhysMem,
    log: &'a mut WriteLog,
}

impl std::fmt::Debug for StagedMem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedMem")
            .field("staged_writes", &self.log.entries.len())
            .finish()
    }
}

impl<'a> StagedMem<'a> {
    /// Creates a staged view of `base` logging into `log`.
    pub fn new(base: &'a PhysMem, log: &'a mut WriteLog) -> Self {
        Self { base, log }
    }

    /// Reads one byte (own staged writes visible).
    pub fn read_u8(&self, pa: u64) -> u8 {
        let mut buf = [0u8; 1];
        self.read_bytes(pa, &mut buf);
        buf[0]
    }

    /// Stages a one-byte write.
    pub fn write_u8(&mut self, pa: u64, value: u8) {
        self.log.push(pa, &[value]);
    }

    /// Reads a little-endian `u64` (own staged writes visible).
    pub fn read_u64(&self, pa: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(pa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Stages a little-endian `u64` write.
    pub fn write_u64(&mut self, pa: u64, value: u64) {
        self.log.push(pa, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` (own staged writes visible).
    pub fn read_u32(&self, pa: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(pa, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Stages a little-endian `u32` write.
    pub fn write_u32(&mut self, pa: u64, value: u32) {
        self.log.push(pa, &value.to_le_bytes());
    }

    /// Fills `buf` from committed memory, then overlays own staged writes.
    pub fn read_bytes(&self, pa: u64, buf: &mut [u8]) {
        self.base.read_bytes(pa, buf);
        self.log.overlay(pa, buf);
    }

    /// Stages a byte-slice write.
    pub fn write_bytes(&mut self, pa: u64, data: &[u8]) {
        self.log.push(pa, data);
    }

    /// Reads `len` bytes into a fresh vector (own staged writes visible).
    pub fn read_vec(&self, pa: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read_bytes(pa, &mut v);
        v
    }
}

impl MemAccess for StagedMem<'_> {
    fn read_u8(&self, pa: u64) -> u8 {
        StagedMem::read_u8(self, pa)
    }

    fn write_u8(&mut self, pa: u64, value: u8) {
        StagedMem::write_u8(self, pa, value);
    }

    fn read_bytes(&self, pa: u64, buf: &mut [u8]) {
        StagedMem::read_bytes(self, pa, buf);
    }

    fn write_bytes(&mut self, pa: u64, data: &[u8]) {
        StagedMem::write_bytes(self, pa, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_to_base() {
        let mut base = PhysMem::new();
        base.write_u64(0x100, 42);
        let mut log = WriteLog::new();
        let staged = StagedMem::new(&base, &mut log);
        assert_eq!(staged.read_u64(0x100), 42);
        assert_eq!(staged.read_u8(0x100), 42);
    }

    #[test]
    fn writes_stage_without_touching_base() {
        let mut base = PhysMem::new();
        let mut log = WriteLog::new();
        let mut staged = StagedMem::new(&base, &mut log);
        staged.write_u64(0x200, 7);
        assert_eq!(staged.read_u64(0x200), 7, "read-your-own-writes");
        assert_eq!(base.read_u64(0x200), 0, "base untouched until commit");
        log.commit(&mut base);
        assert_eq!(base.read_u64(0x200), 7, "committed at the barrier");
        assert!(log.is_empty());
    }

    #[test]
    fn overlay_handles_partial_overlap_in_order() {
        let base = PhysMem::new();
        let mut log = WriteLog::new();
        let mut staged = StagedMem::new(&base, &mut log);
        staged.write_bytes(0x1000, &[1, 2, 3, 4]);
        staged.write_bytes(0x1002, &[9, 9]);
        let mut buf = [0u8; 6];
        staged.read_bytes(0x0fff, &mut buf);
        assert_eq!(buf, [0, 1, 2, 9, 9, 0], "later stage wins on overlap");
    }

    #[test]
    fn commit_applies_in_staging_order() {
        let mut base = PhysMem::new();
        let mut log = WriteLog::new();
        let mut staged = StagedMem::new(&base, &mut log);
        staged.write_u64(0x40, 1);
        staged.write_u64(0x40, 2);
        log.commit(&mut base);
        assert_eq!(base.read_u64(0x40), 2);
    }

    #[test]
    fn cross_page_staging_roundtrip() {
        let mut base = PhysMem::new();
        let mut log = WriteLog::new();
        let mut staged = StagedMem::new(&base, &mut log);
        let pa = 4096 - 3;
        staged.write_u64(pa, u64::MAX);
        assert_eq!(staged.read_u64(pa), u64::MAX);
        log.commit(&mut base);
        assert_eq!(base.read_u64(pa), u64::MAX);
    }
}
