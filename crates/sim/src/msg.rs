//! Messages exchanged over the NoC.
//!
//! Coherence traffic follows a three-hop MESI directory protocol: agents
//! request lines from the [`crate::directory::Directory`] with `GetS`/`GetM`,
//! the directory invalidates or downgrades other holders, and grants arrive
//! as `DataS`/`DataM`. MMIO requests are routed by physical address to the
//! owning device. Interrupts are point-to-point `Irq` messages.

use crate::component::CompId;

/// A message payload. The sender is carried in the [`Envelope`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Agent asks the directory for shared (read) permission on a line.
    GetS { line: u64 },
    /// Agent asks the directory for exclusive (write) permission on a line.
    /// `no_fetch` promises a full-line overwrite, letting the directory
    /// skip the DRAM fill on a miss (write-combining stores).
    GetM { line: u64, no_fetch: bool },
    /// Agent notifies the directory that it silently dropped or wrote back
    /// a line (eviction). `dirty` is informational; data lives in `PhysMem`.
    PutLine { line: u64, dirty: bool },
    /// Directory tells an agent to invalidate its copy. Must be acknowledged
    /// even if the agent no longer holds the line.
    Inv { line: u64 },
    /// Acknowledgement of [`Msg::Inv`].
    InvAck { line: u64 },
    /// Directory tells the exclusive owner to downgrade to shared. Must be
    /// acknowledged even if the agent no longer holds the line.
    Downgrade { line: u64 },
    /// Acknowledgement of [`Msg::Downgrade`].
    DowngradeAck { line: u64 },
    /// Directory grants shared permission (carries a data payload's worth of
    /// flits on the NoC; the bytes themselves live in `PhysMem`).
    DataS { line: u64 },
    /// Directory grants exclusive permission.
    DataM { line: u64 },
    /// Uncached read of a device register.
    MmioRead { pa: u64, tag: u64 },
    /// Uncached write of a device register.
    MmioWrite { pa: u64, value: u64, tag: u64 },
    /// Response to [`Msg::MmioRead`]. Devices may hold the response to model
    /// blocking device semantics (e.g. popping an empty hardware FIFO).
    MmioReadResp { tag: u64, value: u64 },
    /// Response to [`Msg::MmioWrite`]; MMIO stores are non-posted and the
    /// issuing core stalls until this arrives (paper §2.1).
    MmioWriteResp { tag: u64 },
    /// Interrupt delivery to a core, with a device-defined payload (for the
    /// Cohort engine: the faulting virtual address).
    Irq { irq: u32, payload: u64 },
}

impl Msg {
    /// Payload size in bytes used for NoC serialization latency. Coherence
    /// data grants carry a full cache line; everything else is head-flit
    /// sized control traffic.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Msg::DataS { .. } | Msg::DataM { .. } => crate::LINE_BYTES,
            Msg::MmioWrite { .. } | Msg::MmioReadResp { .. } => 8,
            _ => 0,
        }
    }

    /// Short kind name, used as the trace-event label for NoC flights.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::GetS { .. } => "GetS",
            Msg::GetM { .. } => "GetM",
            Msg::PutLine { .. } => "PutLine",
            Msg::Inv { .. } => "Inv",
            Msg::InvAck { .. } => "InvAck",
            Msg::Downgrade { .. } => "Downgrade",
            Msg::DowngradeAck { .. } => "DowngradeAck",
            Msg::DataS { .. } => "DataS",
            Msg::DataM { .. } => "DataM",
            Msg::MmioRead { .. } => "MmioRead",
            Msg::MmioWrite { .. } => "MmioWrite",
            Msg::MmioReadResp { .. } => "MmioReadResp",
            Msg::MmioWriteResp { .. } => "MmioWriteResp",
            Msg::Irq { .. } => "Irq",
        }
    }

    /// The cache line this message concerns, if it is coherence traffic.
    pub fn line(&self) -> Option<u64> {
        match self {
            Msg::GetS { line }
            | Msg::GetM { line, .. }
            | Msg::PutLine { line, .. }
            | Msg::Inv { line }
            | Msg::InvAck { line }
            | Msg::Downgrade { line }
            | Msg::DowngradeAck { line }
            | Msg::DataS { line }
            | Msg::DataM { line } => Some(*line),
            _ => None,
        }
    }
}

/// A routed message: payload plus its source component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Component that sent the message.
    pub src: CompId,
    /// The payload.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_line_sized() {
        assert_eq!(Msg::DataS { line: 0 }.payload_bytes(), crate::LINE_BYTES);
        assert_eq!(Msg::GetS { line: 0 }.payload_bytes(), 0);
        assert_eq!(
            Msg::MmioWrite {
                pa: 0,
                value: 1,
                tag: 0
            }
            .payload_bytes(),
            8
        );
    }

    #[test]
    fn line_extraction() {
        assert_eq!(Msg::Inv { line: 0x40 }.line(), Some(0x40));
        assert_eq!(Msg::MmioRead { pa: 0x40, tag: 1 }.line(), None);
    }
}
