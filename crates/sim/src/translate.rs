//! Address translation hook for core-side accesses.
//!
//! Cores translate through a [`Translator`] at zero modelled cost (their
//! MMUs are not the object of study); the Cohort engine and MAPLE unit
//! model their MMUs explicitly (TLB + page-table walks with real timing)
//! in their own crates.

use crate::mem::MemAccess;

/// Virtual-to-physical translation for core memory operations.
///
/// Takes memory as `&dyn MemAccess` so walkers read page tables through
/// the calling component's staged view (own same-cycle PTE writes
/// visible, other components' staged writes not).
pub trait Translator: Send {
    /// Translates `va`; `None` denotes a fault (the core panics — core-side
    /// faults are outside the modelled experiments).
    fn translate(&self, mem: &dyn MemAccess, va: u64) -> Option<u64>;
}

/// The identity mapping, used when programs address physical memory
/// directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Translator for Identity {
    fn translate(&self, _mem: &dyn MemAccess, va: u64) -> Option<u64> {
        Some(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let mem = crate::mem::PhysMem::new();
        assert_eq!(Identity.translate(&mem, 0xabc), Some(0xabc));
    }
}
