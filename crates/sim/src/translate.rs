//! Address translation hook for core-side accesses.
//!
//! Cores translate through a [`Translator`] at zero modelled cost (their
//! MMUs are not the object of study); the Cohort engine and MAPLE unit
//! model their MMUs explicitly (TLB + page-table walks with real timing)
//! in their own crates.

use crate::mem::PhysMem;

/// Virtual-to-physical translation for core memory operations.
pub trait Translator: Send {
    /// Translates `va`; `None` denotes a fault (the core panics — core-side
    /// faults are outside the modelled experiments).
    fn translate(&self, mem: &PhysMem, va: u64) -> Option<u64>;
}

/// The identity mapping, used when programs address physical memory
/// directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Translator for Identity {
    fn translate(&self, _mem: &PhysMem, va: u64) -> Option<u64> {
        Some(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let mem = PhysMem::new();
        assert_eq!(Identity.translate(&mem, 0xabc), Some(0xabc));
    }
}
