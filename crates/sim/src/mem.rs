//! Sparse physical memory.
//!
//! [`PhysMem`] is the single functional copy of memory in the simulation.
//! Caches and directories track *coherence state* (tags, owners, sharers)
//! but not data; data reads and writes always go to `PhysMem` at the cycle
//! the protocol permits them, which keeps the timing model honest while the
//! functional model stays simple. See `DESIGN.md` §5.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Byte-addressable memory access, implemented by [`PhysMem`] (direct) and
/// [`crate::stage::StagedMem`] (write-staged, the view components see
/// during a step).
///
/// Hooks and OS-layer helpers that used to take `&mut PhysMem` take
/// `&mut dyn MemAccess` instead, so the same code runs against committed
/// memory (host side, between cycles) and a component's staged view
/// (inside a step, where writes become visible to other components only at
/// the cycle barrier).
pub trait MemAccess {
    /// Reads one byte.
    fn read_u8(&self, pa: u64) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, pa: u64, value: u8);

    /// Fills `buf` from memory starting at `pa`.
    fn read_bytes(&self, pa: u64, buf: &mut [u8]);

    /// Copies `data` into memory starting at `pa`.
    fn write_bytes(&mut self, pa: u64, data: &[u8]);

    /// Reads a little-endian `u64`. The access may span frames.
    fn read_u64(&self, pa: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(pa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`. The access may span frames.
    fn write_u64(&mut self, pa: u64, value: u64) {
        self.write_bytes(pa, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    fn read_u32(&self, pa: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(pa, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    fn write_u32(&mut self, pa: u64, value: u32) {
        self.write_bytes(pa, &value.to_le_bytes());
    }

    /// Reads `len` bytes into a fresh vector.
    fn read_vec(&self, pa: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read_bytes(pa, &mut v);
        v
    }
}

/// Sparse, byte-addressable physical memory backed by 4 KiB frames.
///
/// Frames are allocated on first touch; reads of untouched memory return
/// zeroes without allocating.
#[derive(Default)]
pub struct PhysMem {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

impl PhysMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames currently resident.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn split(pa: u64) -> (u64, usize) {
        (pa >> PAGE_SHIFT, (pa as usize) & (PAGE_BYTES - 1))
    }

    /// Reads one byte.
    pub fn read_u8(&self, pa: u64) -> u8 {
        let (page, off) = Self::split(pa);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, pa: u64, value: u8) {
        let (page, off) = Self::split(pa);
        self.page_mut(page)[off] = value;
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Reads a little-endian `u64`. The access may span frames.
    pub fn read_u64(&self, pa: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(pa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`. The access may span frames.
    pub fn write_u64(&mut self, pa: u64, value: u64) {
        self.write_bytes(pa, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, pa: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(pa, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, pa: u64, value: u32) {
        self.write_bytes(pa, &value.to_le_bytes());
    }

    /// Fills `buf` from memory starting at `pa`.
    pub fn read_bytes(&self, pa: u64, buf: &mut [u8]) {
        let mut pa = pa;
        let mut done = 0;
        while done < buf.len() {
            let (page, off) = Self::split(pa);
            let n = (PAGE_BYTES - off).min(buf.len() - done);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pa += n as u64;
        }
    }

    /// Copies `data` into memory starting at `pa`.
    pub fn write_bytes(&mut self, pa: u64, data: &[u8]) {
        let mut pa = pa;
        let mut done = 0;
        while done < data.len() {
            let (page, off) = Self::split(pa);
            let n = (PAGE_BYTES - off).min(data.len() - done);
            self.page_mut(page)[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pa += n as u64;
        }
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_vec(&self, pa: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read_bytes(pa, &mut v);
        v
    }
}

impl MemAccess for PhysMem {
    fn read_u8(&self, pa: u64) -> u8 {
        PhysMem::read_u8(self, pa)
    }

    fn write_u8(&mut self, pa: u64, value: u8) {
        PhysMem::write_u8(self, pa, value);
    }

    fn read_bytes(&self, pa: u64, buf: &mut [u8]) {
        PhysMem::read_bytes(self, pa, buf);
    }

    fn write_bytes(&mut self, pa: u64, data: &[u8]) {
        PhysMem::write_bytes(self, pa, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = PhysMem::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = PhysMem::new();
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(0x1000), 0xef, "little endian");
    }

    #[test]
    fn cross_page_access() {
        let mut m = PhysMem::new();
        let pa = (1 << PAGE_SHIFT) - 3;
        m.write_u64(pa, u64::MAX);
        assert_eq!(m.read_u64(pa), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn byte_slices_roundtrip() {
        let mut m = PhysMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x3ffe, &data);
        assert_eq!(m.read_vec(0x3ffe, 256), data);
    }

    #[test]
    fn u32_roundtrip() {
        let mut m = PhysMem::new();
        m.write_u32(8, 0xa5a5_5a5a);
        assert_eq!(m.read_u32(8), 0xa5a5_5a5a);
        assert_eq!(m.read_u64(8), 0xa5a5_5a5a);
    }
}
