//! Agent-side coherence port: a private cache plus the request/response
//! logic for talking to the directory.
//!
//! Reused by the in-order cores, the Cohort engine's memory transaction
//! engine (with a tiny line buffer instead of a full cache) and the MAPLE
//! baseline unit — all of them participate in coherence the same way, which
//! is exactly the premise of queue coherence.

use crate::cache::{LineState, TagArray};
use crate::component::Observability;
use crate::component::{CompId, Ctx};
use crate::config::CacheConfig;
use crate::line_of;
use crate::msg::{Envelope, Msg};
use crate::stats::Counter;
use std::collections::HashMap;

/// Result of issuing an access to the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The line is held with sufficient permission; data is available at
    /// `ready_at`.
    Hit {
        /// Cycle at which the access completes.
        ready_at: u64,
    },
    /// A directory transaction was issued (or joined); a
    /// [`PortEvent::Completed`] with the same token will follow.
    Pending,
    /// The access conflicts with an in-flight transaction on the same line
    /// (e.g. a write behind a pending read); retry next cycle.
    Retry,
}

/// Asynchronous notifications from the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortEvent {
    /// A previously `Pending` access with this token now holds the line.
    Completed {
        /// Caller-chosen identifier passed to [`CoherentPort::request`].
        token: u64,
    },
    /// The directory invalidated `line` (another agent is writing it, or an
    /// inclusive eviction recalled it). This is the signal the Cohort
    /// engine's reader coherency manager monitors.
    Invalidated {
        /// The invalidated line address.
        line: u64,
    },
    /// The directory downgraded our exclusive copy of `line` to shared
    /// (another agent is reading it).
    Downgraded {
        /// The downgraded line address.
        line: u64,
    },
}

#[derive(Debug)]
struct PendingLine {
    want_m: bool,
    tokens: Vec<u64>,
}

/// Counters exposed by a port. Fields are registry-backed
/// [`Counter`] handles: cloning shares the cells, and adopting them into a
/// [`crate::stats::Stats`] registry makes them visible in snapshots.
#[derive(Debug, Default, Clone)]
pub struct PortCounters {
    /// Accesses that hit in the private cache.
    pub hits: Counter,
    /// Accesses that required a directory transaction.
    pub misses: Counter,
    /// Invalidations received.
    pub invs: Counter,
    /// Downgrades received.
    pub downgrades: Counter,
    /// Lines evicted (capacity) from the private cache.
    pub evictions: Counter,
}

impl PortCounters {
    /// Registers every counter under `obs`'s scope with a `prefix.` name
    /// (e.g. `l1.hits`); owners call this from their `attach`.
    pub fn register(&self, obs: &Observability, prefix: &str) {
        obs.adopt_counter(&format!("{prefix}.hits"), &self.hits);
        obs.adopt_counter(&format!("{prefix}.misses"), &self.misses);
        obs.adopt_counter(&format!("{prefix}.invs"), &self.invs);
        obs.adopt_counter(&format!("{prefix}.downgrades"), &self.downgrades);
        obs.adopt_counter(&format!("{prefix}.evictions"), &self.evictions);
    }
}

/// A private cache front-end speaking the directory protocol.
#[derive(Debug)]
pub struct CoherentPort {
    dir: CompId,
    cache: TagArray,
    hit_latency: u64,
    pending: HashMap<u64, PendingLine>,
    pinned: std::collections::HashSet<u64>,
    counters: PortCounters,
}

impl CoherentPort {
    /// Creates a port with a private cache of geometry `cache_cfg`, talking
    /// to the directory component `dir`.
    pub fn new(dir: CompId, cache_cfg: CacheConfig, hit_latency: u64) -> Self {
        Self {
            dir,
            cache: TagArray::new(cache_cfg),
            hit_latency,
            pending: HashMap::new(),
            pinned: std::collections::HashSet::new(),
            counters: PortCounters::default(),
        }
    }

    /// Pins `line`: it will never be chosen as a capacity victim (it may
    /// still be invalidated by the directory). Used by the Cohort engine to
    /// keep its reader-coherency-manager's monitored pointer lines
    /// resident, so a writer's invalidation is guaranteed to be observed.
    pub fn pin(&mut self, line: u64) {
        self.pinned.insert(line);
    }

    /// Removes a pin.
    pub fn unpin(&mut self, line: u64) {
        self.pinned.remove(&line);
    }

    /// Removes all pins.
    pub fn unpin_all(&mut self) {
        self.pinned.clear();
    }

    /// Issues a read (`write == false`) or write (`write == true`) access to
    /// the byte at `pa`. `token` identifies the access in a later
    /// [`PortEvent::Completed`].
    pub fn request(&mut self, ctx: &mut Ctx<'_>, pa: u64, write: bool, token: u64) -> Outcome {
        self.request_opts(ctx, pa, write, token, false)
    }

    /// Like [`CoherentPort::request`], with `full_line` promising that a
    /// write will overwrite the whole cache line (the directory may then
    /// skip fetching stale data from DRAM).
    pub fn request_opts(
        &mut self,
        ctx: &mut Ctx<'_>,
        pa: u64,
        write: bool,
        token: u64,
        full_line: bool,
    ) -> Outcome {
        let line = line_of(pa);
        match self.cache.touch(line) {
            Some(LineState::M) => {
                self.counters.hits.inc();
                Outcome::Hit {
                    ready_at: ctx.cycle + self.hit_latency,
                }
            }
            Some(LineState::S) if !write => {
                self.counters.hits.inc();
                Outcome::Hit {
                    ready_at: ctx.cycle + self.hit_latency,
                }
            }
            held => {
                // Miss, or an S->M upgrade.
                if let Some(p) = self.pending.get_mut(&line) {
                    if write && !p.want_m {
                        return Outcome::Retry;
                    }
                    p.tokens.push(token);
                    return Outcome::Pending;
                }
                debug_assert!(held.is_none() || write, "read of held line should have hit");
                self.counters.misses.inc();
                let msg = if write {
                    Msg::GetM {
                        line,
                        no_fetch: full_line,
                    }
                } else {
                    Msg::GetS { line }
                };
                ctx.send(self.dir, msg);
                self.pending.insert(
                    line,
                    PendingLine {
                        want_m: write,
                        tokens: vec![token],
                    },
                );
                Outcome::Pending
            }
        }
    }

    /// True if the port could handle `msg` (coherence traffic).
    pub fn wants(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::DataS { .. } | Msg::DataM { .. } | Msg::Inv { .. } | Msg::Downgrade { .. }
        )
    }

    /// Processes one coherence message addressed to this agent, emitting
    /// zero or more [`PortEvent`]s.
    pub fn handle(&mut self, env: &Envelope, ctx: &mut Ctx<'_>) -> Vec<PortEvent> {
        let mut events = Vec::new();
        match env.msg {
            Msg::DataS { line } | Msg::DataM { line } => {
                let state = if matches!(env.msg, Msg::DataM { .. }) {
                    LineState::M
                } else {
                    LineState::S
                };
                let pinned = &self.pinned;
                match self
                    .cache
                    .insert_with_victim_filter(line, state, |l| pinned.contains(&l))
                {
                    Ok(Some((vline, vstate))) => {
                        self.counters.evictions.inc();
                        ctx.send(
                            self.dir,
                            Msg::PutLine {
                                line: vline,
                                dirty: vstate == LineState::M,
                            },
                        );
                    }
                    Ok(None) => {}
                    Err(()) => {
                        // Every victim candidate is pinned: complete the
                        // access uncached and immediately relinquish the
                        // permission so the directory state stays tidy.
                        ctx.send(
                            self.dir,
                            Msg::PutLine {
                                line,
                                dirty: state == LineState::M,
                            },
                        );
                    }
                }
                if let Some(p) = self.pending.remove(&line) {
                    for token in p.tokens {
                        events.push(PortEvent::Completed { token });
                    }
                }
            }
            Msg::Inv { line } => {
                self.counters.invs.inc();
                self.cache.remove(line);
                ctx.send(self.dir, Msg::InvAck { line });
                events.push(PortEvent::Invalidated { line });
            }
            Msg::Downgrade { line } => {
                self.counters.downgrades.inc();
                if self.cache.state(line) == Some(LineState::M) {
                    self.cache.set_state(line, LineState::S);
                }
                ctx.send(self.dir, Msg::DowngradeAck { line });
                events.push(PortEvent::Downgraded { line });
            }
            ref other => panic!("port received non-coherence message {other:?}"),
        }
        events
    }

    /// Voluntarily relinquishes a line (used by endpoints that stream data
    /// and will not touch the line again), notifying the directory.
    pub fn relinquish(&mut self, ctx: &mut Ctx<'_>, line: u64) {
        if let Some(st) = self.cache.remove(line) {
            ctx.send(
                self.dir,
                Msg::PutLine {
                    line,
                    dirty: st == LineState::M,
                },
            );
        }
    }

    /// Current cached state of the line containing `pa`.
    pub fn state_of(&self, pa: u64) -> Option<LineState> {
        self.cache.state(line_of(pa))
    }

    /// True when no directory transactions are outstanding.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Counter snapshot.
    pub fn port_counters(&self) -> &PortCounters {
        &self.counters
    }

    /// The directory this port talks to.
    pub fn dir(&self) -> CompId {
        self.dir
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }
}
