//! Set-associative tag arrays.
//!
//! Caches in this simulator are *tag-only*: they track which lines an agent
//! holds and in what MESI-ish state, while the data lives in
//! [`crate::mem::PhysMem`]. See `DESIGN.md` §5 for why this is sound.

use crate::config::CacheConfig;
use crate::LINE_BYTES;

/// Agent-side coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Shared: may read.
    S,
    /// Modified/exclusive: may read and write.
    M,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    state: LineState,
    lru: u64,
}

/// A set-associative, LRU tag array.
#[derive(Debug)]
pub struct TagArray {
    sets: u64,
    ways: usize,
    entries: Vec<Option<Entry>>,
    tick: u64,
}

impl TagArray {
    /// Builds an empty tag array with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Self {
            sets,
            ways: cfg.ways as usize,
            entries: vec![None; (sets as usize) * cfg.ways as usize],
            tick: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / LINE_BYTES) % self.sets) as usize
    }

    fn set_slice(&self, line: u64) -> std::ops::Range<usize> {
        let s = self.set_index(line) * self.ways;
        s..s + self.ways
    }

    /// Current state of `line`, or `None` if not resident.
    pub fn state(&self, line: u64) -> Option<LineState> {
        self.entries[self.set_slice(line)]
            .iter()
            .flatten()
            .find(|e| e.tag == line)
            .map(|e| e.state)
    }

    /// True if `line` is resident in any state.
    pub fn contains(&self, line: u64) -> bool {
        self.state(line).is_some()
    }

    /// Marks `line` most-recently-used and returns its state.
    pub fn touch(&mut self, line: u64) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(line);
        for e in self.entries[range].iter_mut().flatten() {
            if e.tag == line {
                e.lru = tick;
                return Some(e.state);
            }
        }
        None
    }

    /// Changes the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, line: u64, state: LineState) -> bool {
        let range = self.set_slice(line);
        for e in self.entries[range].iter_mut().flatten() {
            if e.tag == line {
                e.state = state;
                return true;
            }
        }
        false
    }

    /// Removes a line (invalidation or recall); returns its former state.
    pub fn remove(&mut self, line: u64) -> Option<LineState> {
        let range = self.set_slice(line);
        for slot in self.entries[range].iter_mut() {
            if let Some(e) = slot {
                if e.tag == line {
                    let st = e.state;
                    *slot = None;
                    return Some(st);
                }
            }
        }
        None
    }

    /// Inserts `line` in `state`, evicting the LRU victim of the set if the
    /// set is full. Returns the evicted `(line, state)` if any.
    ///
    /// If the line is already resident its state is overwritten instead.
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<(u64, LineState)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(line);
        // Already resident: update in place.
        for e in self.entries[range.clone()].iter_mut().flatten() {
            if e.tag == line {
                e.state = state;
                e.lru = tick;
                return None;
            }
        }
        // Free way?
        for slot in self.entries[range.clone()].iter_mut() {
            if slot.is_none() {
                *slot = Some(Entry {
                    tag: line,
                    state,
                    lru: tick,
                });
                return None;
            }
        }
        // Evict LRU.
        let victim_idx = self.entries[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.as_ref().map_or(u64::MAX, |e| e.lru))
            .map(|(i, _)| i)
            .expect("non-empty set");
        let slot = &mut self.entries[range.start + victim_idx];
        let victim = slot.take().map(|e| (e.tag, e.state));
        *slot = Some(Entry {
            tag: line,
            state,
            lru: tick,
        });
        victim
    }

    /// Like [`TagArray::insert`], but never evicts a victim for which
    /// `busy` returns true (e.g. lines with an in-flight directory
    /// transaction). Returns `Err(())` if the set is full of busy lines;
    /// the caller should retry later.
    #[allow(clippy::result_unit_err)]
    pub fn insert_with_victim_filter(
        &mut self,
        line: u64,
        state: LineState,
        busy: impl Fn(u64) -> bool,
    ) -> Result<Option<(u64, LineState)>, ()> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(line);
        for e in self.entries[range.clone()].iter_mut().flatten() {
            if e.tag == line {
                e.state = state;
                e.lru = tick;
                return Ok(None);
            }
        }
        for slot in self.entries[range.clone()].iter_mut() {
            if slot.is_none() {
                *slot = Some(Entry {
                    tag: line,
                    state,
                    lru: tick,
                });
                return Ok(None);
            }
        }
        let victim_idx = self.entries[range.clone()]
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some_and(|e| !busy(e.tag)))
            .min_by_key(|(_, e)| e.map(|e| e.lru))
            .map(|(i, _)| i);
        match victim_idx {
            Some(i) => {
                let slot = &mut self.entries[range.start + i];
                let victim = slot.take().map(|e| (e.tag, e.state));
                *slot = Some(Entry {
                    tag: line,
                    state,
                    lru: tick,
                });
                Ok(victim)
            }
            None => Err(()),
        }
    }

    /// Iterates over all resident `(line, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.entries.iter().flatten().map(|e| (e.tag, e.state))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TagArray {
        // 2 sets x 2 ways.
        TagArray::new(CacheConfig::new(4 * LINE_BYTES, 2))
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = tiny();
        assert_eq!(t.state(0x40), None);
        assert_eq!(t.insert(0x40, LineState::S), None);
        assert_eq!(t.state(0x40), Some(LineState::S));
        assert!(t.set_state(0x40, LineState::M));
        assert_eq!(t.state(0x40), Some(LineState::M));
    }

    #[test]
    fn eviction_is_lru_within_set() {
        let mut t = tiny();
        // Lines 0, 0x80, 0x100 all map to set 0 (stride = sets*64 = 128).
        assert_eq!(t.insert(0x000, LineState::S), None);
        assert_eq!(t.insert(0x100, LineState::S), None);
        t.touch(0x000); // make 0x100 the LRU
        let evicted = t.insert(0x200, LineState::M);
        assert_eq!(evicted, Some((0x100, LineState::S)));
        assert!(t.contains(0x000));
        assert!(t.contains(0x200));
    }

    #[test]
    fn remove_returns_state() {
        let mut t = tiny();
        t.insert(0x40, LineState::M);
        assert_eq!(t.remove(0x40), Some(LineState::M));
        assert_eq!(t.remove(0x40), None);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = tiny();
        t.insert(0x40, LineState::S);
        assert_eq!(t.insert(0x40, LineState::M), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.state(0x40), Some(LineState::M));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut t = tiny();
        // 0x00 -> set 0, 0x40 -> set 1 for 2-set geometry.
        t.insert(0x00, LineState::S);
        t.insert(0x40, LineState::S);
        t.insert(0x80, LineState::S); // set 0 again
        assert_eq!(t.len(), 3);
    }
}
