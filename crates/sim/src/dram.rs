//! An opt-in DRAM controller model sitting under the L2 directory.
//!
//! The default memory system is flat: every L2 miss pays
//! [`crate::config::TimingConfig::dram`] cycles, no matter how many misses
//! are in flight. That is the right baseline for protocol work, but it can
//! never saturate — a shard sweep over an idealized memory system scales
//! linearly forever and the perf gate cannot tell a genuinely faster hot
//! path from one hiding behind infinite bandwidth.
//!
//! [`DramModel`] replaces the flat constant (only when
//! [`crate::config::SocConfig::dram`] is set) with a bank/channel timing
//! model:
//!
//! * Lines interleave across `channels` at line granularity; each channel
//!   services requests **FCFS, one at a time** — the channel data bus is
//!   the bandwidth limit.
//! * Each channel owns `banks` row buffers. A request to the bank's open
//!   row pays `t_row_hit` (CAS only); any other row pays `t_row_miss`
//!   (precharge + activate + CAS) and replaces the open row. A miss that
//!   evicts another open row is additionally counted as a bank conflict.
//! * Each channel queue holds at most `queue_depth` outstanding requests.
//!   A full queue **rejects** the request and reports the cycle at which
//!   the oldest entry retires, so the caller can retry then — this is the
//!   backpressure edge that propagates saturation upstream instead of
//!   queueing infinitely.
//!
//! Everything is computed at enqueue time from `(cycle, line)` alone, so
//! the model is a pure deterministic function of the request stream: the
//! directory drives it from its (deterministic) message-processing order,
//! and completions ride the directory's existing delayed-event heap, which
//! keeps `quiescent_for` hints exact and lookahead batching sound.

use std::collections::VecDeque;

use crate::component::Observability;
use crate::stats::{Counter, Histogram};

/// Geometry and timing of the opt-in DRAM controller model, plus the two
/// backpressure knobs that live outside the controller proper (directory
/// MSHRs and NoC ejection width). `None` in
/// [`crate::config::SocConfig::dram`] keeps the flat-latency memory
/// system; every existing baseline is bit-identical in that case.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Independent DRAM channels; lines interleave across them.
    pub channels: u32,
    /// Row buffers (banks) per channel.
    pub banks: u32,
    /// Consecutive lines per DRAM row (row size / line size).
    pub row_lines: u64,
    /// Cycles for a row-buffer hit (CAS).
    pub t_row_hit: u64,
    /// Cycles for a row-buffer miss (precharge + activate + CAS).
    pub t_row_miss: u64,
    /// Outstanding requests a channel queue holds before rejecting.
    pub queue_depth: usize,
    /// Concurrent directory transactions (MSHRs) before new requests wait
    /// at the directory ingress.
    pub mshrs: usize,
    /// Messages the NoC ejects into one destination per cycle before the
    /// overflow slips a cycle (0 = unlimited).
    pub noc_ejection: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 2,
            banks: 4,
            // 2 KiB rows of 64-byte lines.
            row_lines: 32,
            t_row_hit: 18,
            t_row_miss: 46,
            queue_depth: 8,
            mshrs: 12,
            noc_ejection: 4,
        }
    }
}

/// Structured parse/validation error for [`DramConfig::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramSpecError {
    /// A clause was not `key=value`.
    Malformed(String),
    /// Unknown key.
    UnknownKey(String),
    /// Value failed to parse as an integer.
    BadValue { key: String, value: String },
    /// Parsed fine but violates a structural constraint.
    Invalid(String),
}

impl std::fmt::Display for DramSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramSpecError::Malformed(c) => write!(f, "dram spec clause {c:?} is not key=value"),
            DramSpecError::UnknownKey(k) => write!(
                f,
                "unknown dram spec key {k:?} (expected channels, banks, rowlines, \
                 hit, miss, queue, mshrs, ejection)"
            ),
            DramSpecError::BadValue { key, value } => {
                write!(f, "dram spec {key}={value:?}: not an unsigned integer")
            }
            DramSpecError::Invalid(why) => write!(f, "invalid dram spec: {why}"),
        }
    }
}

impl std::error::Error for DramSpecError {}

impl DramConfig {
    /// Parses the `socrun --dram` / fleet `dram =` spec grammar: `default`
    /// (or the empty string) for [`DramConfig::default`], otherwise
    /// comma-separated `key=value` clauses overriding individual fields,
    /// e.g. `channels=1,queue=4,miss=60`.
    ///
    /// # Errors
    /// [`DramSpecError`] on unknown keys, non-integer values, or degenerate
    /// geometry (zero channels/banks/rows/queue/MSHRs, hit > miss).
    pub fn from_spec(spec: &str) -> Result<Self, DramSpecError> {
        let mut cfg = DramConfig::default();
        let spec = spec.trim();
        if !(spec.is_empty() || spec == "default") {
            for clause in spec.split(',') {
                let clause = clause.trim();
                let (key, value) = clause
                    .split_once('=')
                    .ok_or_else(|| DramSpecError::Malformed(clause.to_string()))?;
                let (key, value) = (key.trim(), value.trim());
                let n: u64 = value.parse().map_err(|_| DramSpecError::BadValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
                match key {
                    "channels" => cfg.channels = n as u32,
                    "banks" => cfg.banks = n as u32,
                    "rowlines" | "row" => cfg.row_lines = n,
                    "hit" => cfg.t_row_hit = n,
                    "miss" => cfg.t_row_miss = n,
                    "queue" => cfg.queue_depth = n as usize,
                    "mshrs" => cfg.mshrs = n as usize,
                    "ejection" => cfg.noc_ejection = n,
                    _ => return Err(DramSpecError::UnknownKey(key.to_string())),
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), DramSpecError> {
        let nonzero: [(&str, u64); 6] = [
            ("channels", u64::from(self.channels)),
            ("banks", u64::from(self.banks)),
            ("rowlines", self.row_lines),
            ("hit", self.t_row_hit),
            ("queue", self.queue_depth as u64),
            ("mshrs", self.mshrs as u64),
        ];
        for (key, v) in nonzero {
            if v == 0 {
                return Err(DramSpecError::Invalid(format!("{key} must be >= 1")));
            }
        }
        if self.t_row_miss < self.t_row_hit {
            return Err(DramSpecError::Invalid(format!(
                "miss ({}) must be >= hit ({})",
                self.t_row_miss, self.t_row_hit
            )));
        }
        Ok(())
    }
}

/// One DRAM channel: a serial data bus, a bounded request queue, and a set
/// of bank row buffers.
#[derive(Debug)]
struct Channel {
    /// Cycle the channel finishes its newest accepted request.
    busy_until: u64,
    /// Completion cycles of accepted, unretired requests, in FCFS order
    /// (monotonically non-decreasing by construction).
    pending: VecDeque<u64>,
    /// Open row per bank (`None` = closed / never activated).
    open_row: Vec<Option<u64>>,
}

/// Registry-backed observability for the DRAM model. Adopted under the
/// directory's scope (`dir#N.dram_*`) when the model is enabled, so flat
/// runs keep a byte-identical `stats_json`.
#[derive(Debug, Default, Clone)]
pub struct DramCounters {
    /// Requests accepted into a channel queue.
    pub reqs: Counter,
    /// Requests that hit the bank's open row.
    pub row_hits: Counter,
    /// Requests that missed the row buffer (cold or conflict).
    pub row_misses: Counter,
    /// Row misses that evicted another open row (true bank conflicts).
    pub bank_conflicts: Counter,
    /// Requests rejected by a full channel queue (retried later).
    pub rejects: Counter,
    /// Channel queue occupancy observed by each arriving request.
    pub queue_depth: Histogram,
    /// End-to-end service latency (enqueue to data return) per request.
    pub service: Histogram,
}

/// The bank/channel DRAM timing model. See the module docs for the timing
/// rule and the determinism argument.
#[derive(Debug)]
pub struct DramModel {
    cfg: DramConfig,
    channels: Vec<Channel>,
    counters: DramCounters,
}

impl DramModel {
    /// Builds an idle model (all banks closed, all queues empty).
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                busy_until: 0,
                pending: VecDeque::new(),
                open_row: vec![None; cfg.banks as usize],
            })
            .collect();
        Self {
            cfg,
            channels,
            counters: DramCounters::default(),
        }
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Counter handles (shareable with a stats registry).
    pub fn counters(&self) -> &DramCounters {
        &self.counters
    }

    /// `(channel, bank, row)` for a line address.
    fn map(&self, line_addr: u64) -> (usize, usize, u64) {
        let idx = line_addr / crate::LINE_BYTES;
        let ch = (idx % u64::from(self.cfg.channels)) as usize;
        let row = (idx / u64::from(self.cfg.channels)) / self.cfg.row_lines;
        let bank = (row % u64::from(self.cfg.banks)) as usize;
        (ch, bank, row)
    }

    /// Tries to enqueue a fill for `line_addr` issued at cycle `at`.
    ///
    /// `Ok(done)` is the cycle the data returns. `Err(retry_at)` means the
    /// line's channel queue is full; `retry_at` is the cycle its oldest
    /// entry retires, when one slot is guaranteed free — re-issue then.
    /// Issue cycles must be non-decreasing across calls (the directory's
    /// event order guarantees this).
    ///
    /// # Errors
    /// `Err(retry_at)` on a full channel queue, as above.
    pub fn enqueue(&mut self, at: u64, line_addr: u64) -> Result<u64, u64> {
        let (ch, bank, row) = self.map(line_addr);
        let chan = &mut self.channels[ch];
        while chan.pending.front().is_some_and(|&done| done <= at) {
            chan.pending.pop_front();
        }
        self.counters.queue_depth.record(chan.pending.len() as u64);
        if chan.pending.len() >= self.cfg.queue_depth {
            self.counters.rejects.inc();
            let retry = *chan.pending.front().expect("full queue has a front");
            debug_assert!(retry > at, "retired entries were drained above");
            return Err(retry);
        }
        self.counters.reqs.inc();
        let latency = match chan.open_row[bank] {
            Some(open) if open == row => {
                self.counters.row_hits.inc();
                self.cfg.t_row_hit
            }
            Some(_) => {
                self.counters.row_misses.inc();
                self.counters.bank_conflicts.inc();
                self.cfg.t_row_miss
            }
            None => {
                self.counters.row_misses.inc();
                self.cfg.t_row_miss
            }
        };
        chan.open_row[bank] = Some(row);
        let start = at.max(chan.busy_until);
        let done = start + latency;
        chan.busy_until = done;
        chan.pending.push_back(done);
        self.counters.service.record(done - at);
        Ok(done)
    }

    /// Earliest cycle after `now` at which any channel retires a request
    /// (`None` when fully drained). This is the model's contribution to the
    /// directory's `quiescent_for` hint; because every accepted request
    /// also has a completion event in the directory's delayed heap, the
    /// hint derived from that heap never overshoots this bound.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.channels
            .iter()
            .flat_map(|c| c.pending.iter().copied())
            .filter(|&done| done > now)
            .min()
    }

    /// Outstanding (unretired as of `now`) requests in `channel`.
    pub fn depth(&self, channel: usize, now: u64) -> usize {
        self.channels[channel]
            .pending
            .iter()
            .filter(|&&done| done > now)
            .count()
    }

    /// Adopts the model's counters and histograms under `obs`'s scope.
    pub fn attach(&self, obs: &Observability) {
        let c = &self.counters;
        for (name, counter) in [
            ("dram_reqs", &c.reqs),
            ("dram_row_hits", &c.row_hits),
            ("dram_row_misses", &c.row_misses),
            ("dram_bank_conflicts", &c.bank_conflicts),
            ("dram_rejects", &c.rejects),
        ] {
            obs.adopt_counter(name, counter);
        }
        obs.adopt_histogram("dram_queue_depth", &c.queue_depth);
        obs.adopt_histogram("dram_service", &c.service);
    }

    /// Counter snapshot for `Component::counters` reporting.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        vec![
            ("dram_reqs".into(), c.reqs.get()),
            ("dram_row_hits".into(), c.row_hits.get()),
            ("dram_row_misses".into(), c.row_misses.get()),
            ("dram_bank_conflicts".into(), c.bank_conflicts.get()),
            ("dram_rejects".into(), c.rejects.get()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_default_round_trips() {
        assert_eq!(DramConfig::from_spec("default"), Ok(DramConfig::default()));
        assert_eq!(DramConfig::from_spec(""), Ok(DramConfig::default()));
    }

    #[test]
    fn spec_overrides_fields() {
        let cfg = DramConfig::from_spec("channels=1, queue=4 ,miss=60").expect("parses");
        assert_eq!(cfg.channels, 1);
        assert_eq!(cfg.queue_depth, 4);
        assert_eq!(cfg.t_row_miss, 60);
        assert_eq!(cfg.banks, DramConfig::default().banks);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(matches!(
            DramConfig::from_spec("banana=3"),
            Err(DramSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            DramConfig::from_spec("channels"),
            Err(DramSpecError::Malformed(_))
        ));
        assert!(matches!(
            DramConfig::from_spec("channels=x"),
            Err(DramSpecError::BadValue { .. })
        ));
        assert!(matches!(
            DramConfig::from_spec("channels=0"),
            Err(DramSpecError::Invalid(_))
        ));
        assert!(matches!(
            DramConfig::from_spec("hit=50,miss=20"),
            Err(DramSpecError::Invalid(_))
        ));
    }

    #[test]
    fn row_hits_are_cheaper_than_misses() {
        let cfg = DramConfig::from_spec("channels=1,banks=1").expect("parses");
        let mut m = DramModel::new(cfg.clone());
        // Cold miss opens the row, the next access to the same row hits.
        let first = m.enqueue(0, 0).expect("accepted");
        assert_eq!(first, cfg.t_row_miss);
        let second = m.enqueue(first, crate::LINE_BYTES).expect("accepted");
        assert_eq!(second, first + cfg.t_row_hit);
        assert_eq!(m.counters().row_hits.get(), 1);
        assert_eq!(m.counters().row_misses.get(), 1);
        assert_eq!(m.counters().bank_conflicts.get(), 0);
    }

    #[test]
    fn conflicting_rows_count_bank_conflicts() {
        let cfg = DramConfig::from_spec("channels=1,banks=1,rowlines=1").expect("parses");
        let mut m = DramModel::new(cfg);
        let a = m.enqueue(0, 0).expect("accepted");
        let _b = m.enqueue(a, crate::LINE_BYTES).expect("accepted");
        assert_eq!(m.counters().bank_conflicts.get(), 1);
    }

    #[test]
    fn channel_serializes_fcfs() {
        let cfg = DramConfig::from_spec("channels=1,banks=1,queue=8").expect("parses");
        let mut m = DramModel::new(cfg.clone());
        // Two same-cycle requests to the same open row: the second waits
        // for the bus even though it is a row hit.
        let a = m.enqueue(0, 0).expect("accepted");
        let b = m.enqueue(0, crate::LINE_BYTES).expect("accepted");
        assert_eq!(a, cfg.t_row_miss);
        assert_eq!(b, a + cfg.t_row_hit);
    }

    #[test]
    fn full_queue_rejects_with_exact_retry_cycle() {
        let cfg = DramConfig::from_spec("channels=1,banks=1,queue=2").expect("parses");
        let mut m = DramModel::new(cfg);
        let a = m.enqueue(0, 0).expect("accepted");
        let _b = m.enqueue(0, 64).expect("accepted");
        let retry = m.enqueue(0, 128).expect_err("queue full");
        assert_eq!(retry, a, "retry lands when the oldest entry retires");
        assert_eq!(m.counters().rejects.get(), 1);
        // At the retry cycle the slot has freed and the request lands.
        assert!(m.enqueue(retry, 128).is_ok());
    }

    #[test]
    fn next_event_tracks_earliest_unretired_completion() {
        let cfg = DramConfig::from_spec("channels=2,banks=1").expect("parses");
        let mut m = DramModel::new(cfg);
        assert_eq!(m.next_event(0), None);
        let a = m.enqueue(0, 0).expect("accepted"); // channel 0
        let b = m.enqueue(5, 64).expect("accepted"); // channel 1, later issue
        assert!(a < b);
        assert_eq!(m.next_event(0), Some(a));
        assert_eq!(m.next_event(a), Some(b));
        assert_eq!(m.next_event(b), None);
    }

    #[test]
    fn deterministic_for_identical_streams() {
        let cfg = DramConfig::default();
        let mut x = DramModel::new(cfg.clone());
        let mut y = DramModel::new(cfg);
        let mut state = 0x9e37u64;
        let mut at = 0u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            at += state % 7;
            let line = (state >> 16) % 4096 * crate::LINE_BYTES;
            assert_eq!(x.enqueue(at, line), y.enqueue(at, line));
        }
        assert_eq!(x.counters().row_hits.get(), y.counters().row_hits.get());
    }
}
