//! Abstract instruction streams executed by [`crate::core::InOrderCore`].
//!
//! Benchmarks are expressed as sequences of [`Op`]s — loads, stores, spin
//! waits, fences, MMIO accesses and modelled kernel costs — mirroring the
//! paper's benchmark pseudo-code (§5.3) without simulating a full ISA.
//! Each op carries an implied retired-instruction count so the core can
//! report IPC (§6.2).

/// One abstract operation of a core program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `n` single-cycle ALU instructions (address arithmetic, loop
    /// bookkeeping, compares...).
    Alu(u32),
    /// An 8-byte cached load from virtual address `va`. If `record` is
    /// true, the loaded value is appended to the core's recorded-value log
    /// (used by harnesses to verify accelerator output end to end).
    Load {
        /// Virtual address.
        va: u64,
        /// Log the loaded value.
        record: bool,
    },
    /// An 8-byte cached store of `value` to `va` via the store buffer.
    Store {
        /// Virtual address.
        va: u64,
        /// Value stored.
        value: u64,
    },
    /// Spin until the little-endian `u64` at `va` is `>= value` (the
    /// consumer side of an SPSC queue polling a write pointer).
    WaitGe {
        /// Virtual address of the polled word.
        va: u64,
        /// Threshold.
        value: u64,
    },
    /// Release fence: drains the store buffer. SPSC producers order the
    /// data write before the pointer publish with exactly this (§4.2.3).
    Fence,
    /// A blocking uncached (MMIO) load. The device may delay its response
    /// arbitrarily (e.g. until an accelerator result is ready), stalling
    /// the core — the paper's §2.1 MMIO semantics.
    MmioLoad {
        /// Physical device register address.
        pa: u64,
        /// Log the returned value.
        record: bool,
    },
    /// A blocking uncached (MMIO) store.
    MmioStore {
        /// Physical device register address.
        pa: u64,
        /// Value written.
        value: u64,
    },
    /// Modelled kernel time: syscall entry/exit, driver bookkeeping. Costs
    /// `cycles` and retires `insts` instructions.
    KernelCost {
        /// Stall cycles.
        cycles: u64,
        /// Retired instructions attributed to the kernel code.
        insts: u64,
    },
}

impl Op {
    /// Instructions this op retires when it completes (spin ops retire per
    /// iteration instead; see the core model).
    pub fn retired_instructions(&self) -> u64 {
        match self {
            Op::Alu(n) => u64::from(*n),
            Op::Load { .. } | Op::Store { .. } => 1,
            Op::WaitGe { .. } => 0, // accounted per spin iteration
            Op::Fence => 1,
            Op::MmioLoad { .. } | Op::MmioStore { .. } => 1,
            Op::KernelCost { insts, .. } => *insts,
        }
    }
}

/// An ordered list of [`Op`]s for one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends all ops of `other`.
    pub fn append(&mut self, mut other: Program) {
        self.ops.append(&mut other.ops);
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Read-only view of the ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the program, returning its ops.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Static instruction count (spin iterations excluded).
    pub fn static_instructions(&self) -> u64 {
        self.ops.iter().map(Op::retired_instructions).sum()
    }
}

impl Extend<Op> for Program {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        let p: Program = vec![
            Op::Alu(3),
            Op::Store { va: 0, value: 1 },
            Op::Fence,
            Op::KernelCost {
                cycles: 100,
                insts: 40,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(p.static_instructions(), 3 + 1 + 1 + 40);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn append_preserves_order() {
        let mut a = Program::new();
        a.push(Op::Alu(1));
        let mut b = Program::new();
        b.push(Op::Fence);
        a.append(b);
        assert_eq!(a.ops()[1], Op::Fence);
    }
}
