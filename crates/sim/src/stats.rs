//! The sim-wide stats registry.
//!
//! Every component registers named monotonic [`Counter`]s and log2-bucket
//! [`Histogram`]s here at attach time (`Component::attach`). The
//! handles are `Arc`-backed, so the component increments its own copy on
//! the hot path (one relaxed atomic add) while the registry can snapshot
//! all of them at any time without `&mut` access to the component —
//! including mid-run.
//!
//! Counter names are `scope.counter` where scope is the component's
//! `name#id` (e.g. `engine#3.backoffs`, `dir#0.inv_sent`). The registry
//! serialises to a stable, dependency-free JSON document via
//! [`Stats::to_json`]; `socrun --stats out.json` writes exactly that.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic event counter.
///
/// Cloning shares the underlying cell; a clone registered in a [`Stats`]
/// registry observes every later increment made through the component's
/// copy.
#[derive(Debug, Default, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Fresh counter at zero (unregistered until adopted by a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero **through the shared cell**, so registry-adopted
    /// clones observe the reset too. Only for harnesses that reload a
    /// program into an already-attached component; counters stay monotonic
    /// within a run.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Overwrites the value. For mirroring an external monotonic source
    /// (e.g. a device MMU that keeps plain integer counters) into the
    /// registry; the mirrored source must itself be monotonic.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples (latencies, occupancies).
///
/// Bucket `0` holds the value zero; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Recording is a handful of relaxed atomic ops, so the
/// handle is safe to hit from a simulation hot loop.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("mean", &s.mean)
            .finish()
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median upper bound (bucket resolution).
    pub p50: u64,
    /// 90th-percentile upper bound (bucket resolution).
    pub p90: u64,
    /// 99th-percentile upper bound (bucket resolution).
    pub p99: u64,
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_top(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= 64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let h = &*self.0;
        h.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records `n` identical samples, bit-exactly equivalent to calling
    /// [`Histogram::record`] `n` times (the sum uses wrapping arithmetic,
    /// matching `n` individual wrapping `fetch_add`s). Used by
    /// [`crate::component::Component::fast_forward`] to reconcile
    /// per-cycle histograms over a skipped window without paying one
    /// atomic round trip per cycle.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let h = &*self.0;
        h.buckets[Self::bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        h.count.fetch_add(n, Ordering::Relaxed);
        h.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Summarises the current contents.
    pub fn summary(&self) -> HistogramSummary {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        let sum = h.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = (p * count as f64).ceil() as u64;
            let mut seen = 0;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= target {
                    return Self::bucket_top(i);
                }
            }
            Self::bucket_top(BUCKETS - 1)
        };
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// The shared stats registry: a name → handle map for counters and
/// histograms. Cloning shares the registry.
#[derive(Clone, Default)]
pub struct Stats {
    inner: Arc<Mutex<Registry>>,
}

impl std::fmt::Debug for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.inner.lock().unwrap();
        f.debug_struct("Stats")
            .field("counters", &reg.counters.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

impl Stats {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `name`, so a component
    /// can keep its own field and still be visible in snapshots. Replaces
    /// any previous registration of the same name.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.inner
            .lock()
            .unwrap()
            .counters
            .insert(name.to_string(), counter.clone());
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing histogram handle under `name`.
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .insert(name.to_string(), histogram.clone());
    }

    /// All counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .unwrap()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histogram summaries, sorted by name.
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }

    /// Serialises the registry to a stable JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, ...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counter_values();
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(name), value));
        }
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        let hists = self.histogram_summaries();
        for (i, (name, s)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_string(name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.mean,
                s.p50,
                s.p90,
                s.p99
            ));
        }
        if !hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let stats = Stats::new();
        let a = stats.counter("engine#0.backoffs");
        let b = stats.counter("engine#0.backoffs");
        a.inc();
        b.add(2);
        assert_eq!(
            stats.counter_values(),
            vec![("engine#0.backoffs".into(), 3)]
        );
    }

    #[test]
    fn adopted_counter_is_live() {
        let stats = Stats::new();
        let mine = Counter::new();
        mine.add(5);
        stats.adopt_counter("core#1.loads", &mine);
        mine.inc();
        assert_eq!(stats.counter_values()[0].1, 6);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 8, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 119);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 >= 100, "p99 upper bound covers the max sample");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().summary();
        assert_eq!((s.count, s.min, s.max, s.p99), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let stats = Stats::new();
        stats.counter("a\"b").inc();
        stats.histogram("lat").record(7);
        let j = stats.to_json();
        assert!(j.contains("\"a\\\"b\": 1"));
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"histograms\""));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn bucket_top_monotone() {
        let mut last = 0;
        for i in 0..BUCKETS {
            let t = Histogram::bucket_top(i);
            assert!(t >= last);
            last = t;
        }
    }
}
