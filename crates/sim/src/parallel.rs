//! Synchronisation primitives for the component-parallel step kernel.
//!
//! The SoC keeps a pool of worker threads parked on a [`GoSignal`]. Each
//! cycle the main thread publishes a [`Frame`] describing the work (a raw
//! view of the slot array plus the read-only memory image), releases the
//! workers, steps its own stripe, and waits on a [`DoneLatch`] until every
//! worker has finished before committing the cycle. Workers never touch
//! the NoC, stats registry keys, or `PhysMem` mutably — all cross-component
//! effects are staged per-slot and committed by the main thread at the
//! barrier (see [`crate::stage`]).
//!
//! Both primitives spin briefly before falling back to a condvar: cycles
//! are microseconds apart, so an immediate park/unpark per cycle would
//! dominate runtime, but an unbounded spin would burn a host CPU per
//! worker on oversubscribed machines.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Spin iterations before yielding, then parking on the condvar.
const SPIN: usize = 64;
/// `yield_now` calls after spinning before parking on the condvar.
const YIELDS: usize = 16;

/// A generation-counted start barrier: the main thread bumps the
/// generation to release every waiter once.
#[derive(Debug, Default)]
pub(crate) struct GoSignal {
    generation: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl GoSignal {
    /// Releases all workers currently waiting on `seen`.
    pub(crate) fn go(&self) {
        // The store must happen-before the notify, and the lock round trip
        // closes the race where a worker checks the generation, loses the
        // CPU, and would otherwise miss the wakeup.
        self.generation.fetch_add(1, Ordering::Release);
        drop(self.lock.lock().unwrap());
        self.cv.notify_all();
    }

    /// Blocks until the generation advances past `seen`; returns the new
    /// generation to pass to the next wait.
    pub(crate) fn wait(&self, seen: u64) -> u64 {
        for _ in 0..SPIN {
            let g = self.generation.load(Ordering::Acquire);
            if g != seen {
                return g;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            let g = self.generation.load(Ordering::Acquire);
            if g != seen {
                return g;
            }
            std::thread::yield_now();
        }
        let mut guard = self.lock.lock().unwrap();
        loop {
            let g = self.generation.load(Ordering::Acquire);
            if g != seen {
                return g;
            }
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

/// A completion latch: `arrive` is called once per worker per cycle and
/// the main thread blocks until the count drains, then re-arms it.
#[derive(Debug)]
pub(crate) struct DoneLatch {
    remaining: AtomicUsize,
    workers: usize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl DoneLatch {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(workers),
            workers,
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Marks one worker's stripe complete for this cycle.
    pub(crate) fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(self.lock.lock().unwrap());
            self.cv.notify_all();
        }
    }

    /// Blocks until every worker has arrived, then re-arms the latch for
    /// the next cycle.
    pub(crate) fn wait_and_reset(&self) {
        for _ in 0..SPIN {
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.remaining.store(self.workers, Ordering::Release);
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.remaining.store(self.workers, Ordering::Release);
                return;
            }
            std::thread::yield_now();
        }
        let mut guard = self.lock.lock().unwrap();
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).unwrap();
        }
        drop(guard);
        self.remaining.store(self.workers, Ordering::Release);
    }
}

/// Worker-shared state: the per-cycle [`Frame`] plus the exit flag.
///
/// The frame cell is only written by the main thread while every worker is
/// parked (between `done.wait_and_reset` and the next `go`), and only read
/// by workers between `go` and `arrive` — the two barriers make the
/// accesses data-race-free, which is what the `Sync` impl asserts.
#[derive(Debug)]
pub(crate) struct Shared {
    frame: std::cell::UnsafeCell<Frame>,
    pub(crate) exit: AtomicBool,
    pub(crate) go: GoSignal,
    pub(crate) done: DoneLatch,
}

unsafe impl Sync for Shared {}

impl Shared {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            frame: std::cell::UnsafeCell::new(Frame::empty()),
            exit: AtomicBool::new(false),
            go: GoSignal::default(),
            done: DoneLatch::new(workers),
        }
    }

    /// Publishes this cycle's frame. Caller must be the main thread with
    /// all workers parked.
    pub(crate) fn publish(&self, frame: Frame) {
        unsafe { *self.frame.get() = frame };
    }

    /// Reads the current frame. Caller must hold a `go`/`arrive` window.
    pub(crate) fn frame(&self) -> Frame {
        unsafe { *self.frame.get() }
    }
}

/// A raw, cycle-scoped view of the step workload handed to workers.
///
/// Raw pointers rather than references because the borrow starts when the
/// main thread publishes and ends at the done barrier — a lifetime the
/// borrow checker cannot see across threads. The invariants:
///
/// * `slots` points at the SoC's slot array; each worker dereferences
///   only slots `i` with `i % stride == worker_stripe`, so no slot is
///   aliased mutably.
/// * `mem` and `mmio` are read-only for the whole step phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) slots: *mut crate::soc::Slot,
    pub(crate) len: usize,
    pub(crate) mem: *const crate::mem::PhysMem,
    pub(crate) mmio: *const crate::component::MmioMap,
    pub(crate) cycle: u64,
}

impl Frame {
    fn empty() -> Self {
        Self {
            slots: std::ptr::null_mut(),
            len: 0,
            mem: std::ptr::null(),
            mmio: std::ptr::null(),
            cycle: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn go_signal_releases_waiter() {
        let sig = Arc::new(GoSignal::default());
        let s2 = sig.clone();
        let h = std::thread::spawn(move || s2.wait(0));
        sig.go();
        assert_eq!(h.join().unwrap(), 1);
        let s3 = sig.clone();
        let h = std::thread::spawn(move || s3.wait(1));
        sig.go();
        assert_eq!(h.join().unwrap(), 2);
    }

    #[test]
    fn done_latch_drains_and_rearms() {
        let latch = Arc::new(DoneLatch::new(2));
        for _ in 0..3 {
            let (a, b) = (latch.clone(), latch.clone());
            let h1 = std::thread::spawn(move || a.arrive());
            let h2 = std::thread::spawn(move || b.arrive());
            latch.wait_and_reset();
            h1.join().unwrap();
            h2.join().unwrap();
        }
    }
}
