//! Synchronisation primitives for the component-parallel step kernel.
//!
//! The SoC keeps a pool of worker threads parked on a [`GoSignal`]. Each
//! *stepped* cycle the main thread publishes a [`Frame`] describing the
//! work (a raw view of the slot array, the read-only memory image and the
//! cost-aware stripe assignment), releases the workers, steps its own
//! stripe, and waits on a [`DoneLatch`] until every worker has finished
//! before committing the cycle. Workers never touch the NoC, stats
//! registry keys, or `PhysMem` mutably — all cross-component effects are
//! staged per-slot and committed by the main thread at the barrier (see
//! [`crate::stage`]). Cycles the lookahead proves to be no-ops skip the
//! barrier entirely (see `Soc::lookahead_horizon`), so consecutive go
//! signals mark *batches* of simulated time, not single cycles.
//!
//! Both primitives spin briefly before falling back to a condvar: stepped
//! cycles are microseconds apart, so an immediate park/unpark per barrier
//! would dominate runtime, but an unbounded spin would burn a host CPU
//! per worker on oversubscribed machines. Either side skips the condvar
//! round trip entirely when nobody is parked — with batching, barriers
//! cluster into dense step phases where the spin path wins, separated by
//! long fast-forward gaps where workers park and the wake must pay the
//! lock.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Spin iterations before yielding, then parking on the condvar. Raised
/// from the pre-batching 64: within a dense step phase back-to-back
/// barriers are the common case, and a missed spin window now costs a
/// full park/unpark (there is no next-cycle barrier right behind it).
const SPIN: usize = 128;
/// `yield_now` calls after spinning before parking on the condvar.
/// Lowered from the pre-batching 16: with batches, a waiter that has
/// exhausted its spin budget is usually facing a long fast-forward gap,
/// and repeated `yield_now` on an oversubscribed host just thrashes the
/// scheduler before parking anyway.
const YIELDS: usize = 8;

/// A generation-counted start barrier: the main thread bumps the
/// generation to release every waiter once.
#[derive(Debug, Default)]
pub(crate) struct GoSignal {
    generation: AtomicU64,
    /// Workers currently parked (or committing to park) on the condvar.
    /// Lets `go` skip the lock + notify round trip in the common case
    /// where every worker is still spinning.
    parked: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl GoSignal {
    /// Releases all workers currently waiting on `seen`.
    pub(crate) fn go(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        // Skip the condvar round trip when no worker is parked. SeqCst on
        // both sides makes this sound: a worker increments `parked`
        // *before* its final generation check (under the lock), so either
        // we observe `parked > 0` here and notify (the lock round trip
        // closes the check-then-park race), or the worker's generation
        // re-check is ordered after our bump and it never sleeps on the
        // old generation.
        if self.parked.load(Ordering::SeqCst) > 0 {
            drop(self.lock.lock().unwrap());
            self.cv.notify_all();
        }
    }

    /// Blocks until the generation advances past `seen`; returns the new
    /// generation to pass to the next wait.
    pub(crate) fn wait(&self, seen: u64) -> u64 {
        for _ in 0..SPIN {
            let g = self.generation.load(Ordering::Acquire);
            if g != seen {
                return g;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            let g = self.generation.load(Ordering::Acquire);
            if g != seen {
                return g;
            }
            std::thread::yield_now();
        }
        self.parked.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap();
        let g = loop {
            let g = self.generation.load(Ordering::SeqCst);
            if g != seen {
                break g;
            }
            guard = self.cv.wait(guard).unwrap();
        };
        drop(guard);
        self.parked.fetch_sub(1, Ordering::SeqCst);
        g
    }
}

/// A completion latch: `arrive` is called once per worker per stepped
/// cycle and the main thread blocks until the count drains, then re-arms
/// it. `new(0)` is a valid degenerate pool: the latch is born drained and
/// `wait_and_reset` returns immediately, forever.
#[derive(Debug)]
pub(crate) struct DoneLatch {
    remaining: AtomicUsize,
    workers: usize,
    /// True while the main thread is parked (or committing to park) on
    /// the condvar; lets the last arriving worker skip the lock + notify
    /// round trip when the main thread is still spinning.
    waiting: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl DoneLatch {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(workers),
            workers,
            waiting: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Marks one worker's stripe complete for this cycle.
    pub(crate) fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Mirror image of `GoSignal::go`: the main thread sets
            // `waiting` *before* its final drain check under the lock, so
            // with SeqCst either we see the flag and notify, or its
            // re-check is ordered after our decrement and it never parks.
            if self.waiting.load(Ordering::SeqCst) {
                drop(self.lock.lock().unwrap());
                self.cv.notify_all();
            }
        }
    }

    /// Blocks until every worker has arrived, then re-arms the latch for
    /// the next cycle.
    pub(crate) fn wait_and_reset(&self) {
        for _ in 0..SPIN {
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.remaining.store(self.workers, Ordering::Release);
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.remaining.store(self.workers, Ordering::Release);
                return;
            }
            std::thread::yield_now();
        }
        self.waiting.store(true, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap();
        while self.remaining.load(Ordering::SeqCst) != 0 {
            guard = self.cv.wait(guard).unwrap();
        }
        drop(guard);
        self.waiting.store(false, Ordering::SeqCst);
        self.remaining.store(self.workers, Ordering::Release);
    }
}

/// Worker-shared state: the per-cycle [`Frame`] plus the exit flag.
///
/// The frame cell is only written by the main thread while every worker is
/// parked (between `done.wait_and_reset` and the next `go`), and only read
/// by workers between `go` and `arrive` — the two barriers make the
/// accesses data-race-free, which is what the `Sync` impl asserts.
#[derive(Debug)]
pub(crate) struct Shared {
    frame: std::cell::UnsafeCell<Frame>,
    pub(crate) exit: AtomicBool,
    pub(crate) go: GoSignal,
    pub(crate) done: DoneLatch,
}

unsafe impl Sync for Shared {}

impl Shared {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            frame: std::cell::UnsafeCell::new(Frame::empty()),
            exit: AtomicBool::new(false),
            go: GoSignal::default(),
            done: DoneLatch::new(workers),
        }
    }

    /// Publishes this cycle's frame. Caller must be the main thread with
    /// all workers parked.
    pub(crate) fn publish(&self, frame: Frame) {
        unsafe { *self.frame.get() = frame };
    }

    /// Reads the current frame. Caller must hold a `go`/`arrive` window.
    pub(crate) fn frame(&self) -> Frame {
        unsafe { *self.frame.get() }
    }
}

/// A raw, cycle-scoped view of the step workload handed to workers.
///
/// Raw pointers rather than references because the borrow starts when the
/// main thread publishes and ends at the done barrier — a lifetime the
/// borrow checker cannot see across threads. The invariants:
///
/// * `slots` points at the SoC's slot array; worker `w` dereferences only
///   the slot indices listed in stripe `w` of `stripes`, and the stripes
///   are disjoint by construction, so no slot is aliased mutably.
/// * `stripes` points at the SoC's stripe assignment, which the main
///   thread mutates only while every worker is parked.
/// * `mem` and `mmio` are read-only for the whole step phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) slots: *mut crate::soc::Slot,
    pub(crate) len: usize,
    pub(crate) mem: *const crate::mem::PhysMem,
    pub(crate) mmio: *const crate::component::MmioMap,
    pub(crate) stripes: *const Vec<Vec<u32>>,
    pub(crate) cycle: u64,
}

impl Frame {
    fn empty() -> Self {
        Self {
            slots: std::ptr::null_mut(),
            len: 0,
            mem: std::ptr::null(),
            mmio: std::ptr::null(),
            stripes: std::ptr::null(),
            cycle: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn go_signal_releases_waiter() {
        let sig = Arc::new(GoSignal::default());
        let s2 = sig.clone();
        let h = std::thread::spawn(move || s2.wait(0));
        sig.go();
        assert_eq!(h.join().unwrap(), 1);
        let s3 = sig.clone();
        let h = std::thread::spawn(move || s3.wait(1));
        sig.go();
        assert_eq!(h.join().unwrap(), 2);
    }

    #[test]
    fn go_signal_wait_after_go_returns_without_parking() {
        // The signal may fire before the waiter even starts spinning; the
        // fast path must observe it without touching the condvar.
        let sig = GoSignal::default();
        sig.go();
        assert_eq!(sig.wait(0), 1);
        assert_eq!(sig.parked.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn done_latch_drains_and_rearms() {
        let latch = Arc::new(DoneLatch::new(2));
        for _ in 0..3 {
            let (a, b) = (latch.clone(), latch.clone());
            let h1 = std::thread::spawn(move || a.arrive());
            let h2 = std::thread::spawn(move || b.arrive());
            latch.wait_and_reset();
            h1.join().unwrap();
            h2.join().unwrap();
        }
    }

    #[test]
    fn done_latch_zero_workers_never_blocks() {
        // The degenerate pool: a latch with no workers is born drained and
        // must re-arm to "drained" every cycle without ever parking.
        let latch = DoneLatch::new(0);
        for _ in 0..100 {
            latch.wait_and_reset();
        }
        assert_eq!(latch.remaining.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn single_worker_pool_round_trips() {
        // One worker, many generations: exercises both the spin path and
        // (by making the worker slow enough to park sometimes) the
        // parked/waiting handshakes of both primitives under contention.
        let shared = Arc::new((
            GoSignal::default(),
            DoneLatch::new(1),
            AtomicBool::new(false),
        ));
        let s = shared.clone();
        let h = std::thread::spawn(move || {
            let (go, done, exit) = (&s.0, &s.1, &s.2);
            let mut seen = 0u64;
            let mut steps = 0u64;
            loop {
                seen = go.wait(seen);
                if exit.load(Ordering::SeqCst) {
                    break;
                }
                steps += 1;
                if steps.is_multiple_of(7) {
                    std::thread::yield_now();
                }
                done.arrive();
            }
            steps
        });
        let (go, done, exit) = (&shared.0, &shared.1, &shared.2);
        for i in 0..500 {
            go.go();
            if i % 13 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            done.wait_and_reset();
        }
        exit.store(true, Ordering::SeqCst);
        go.go();
        assert_eq!(h.join().unwrap(), 500);
    }
}
