//! The SoC top level: owns components, functional memory and the NoC, and
//! advances simulated time.

use std::collections::VecDeque;

use crate::component::{CompId, Component, Ctx, MmioMap, Observability, Outgoing, TileCoord};
use crate::config::SocConfig;
use crate::faultinject::FaultState;
use crate::mem::PhysMem;
use crate::msg::Envelope;
use crate::noc::Noc;
use crate::stats::Stats;
use crate::trace::Trace;

struct Slot {
    comp: Option<Box<dyn Component>>,
    tile: TileCoord,
    inbox: VecDeque<Envelope>,
}

/// Result of [`Soc::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cycle at which the run stopped.
    pub cycle: u64,
    /// True if the SoC went quiescent (all components idle, no messages in
    /// flight); false if the cycle budget was exhausted first.
    pub quiescent: bool,
}

/// The simulated system-on-chip.
pub struct Soc {
    /// Current cycle.
    pub cycle: u64,
    /// Functional physical memory.
    pub mem: PhysMem,
    noc: Noc,
    slots: Vec<Slot>,
    mmio_map: MmioMap,
    cfg: SocConfig,
    outbox: Vec<Outgoing>,
    stats: Stats,
    trace: Trace,
    faults: FaultState,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("cycle", &self.cycle)
            .field("components", &self.slots.len())
            .finish()
    }
}

impl Soc {
    /// Creates an empty SoC with configuration `cfg`.
    pub fn new(cfg: SocConfig) -> Self {
        let stats = Stats::new();
        let trace = Trace::default();
        let faults = FaultState::default();
        let mut noc = Noc::new(&cfg.timing);
        noc.attach(&stats, &trace);
        noc.set_fault_state(faults.clone());
        Self {
            cycle: 0,
            mem: PhysMem::new(),
            noc,
            slots: Vec::new(),
            mmio_map: MmioMap::default(),
            cfg,
            outbox: Vec::new(),
            stats,
            trace,
            faults,
        }
    }

    /// The SoC-wide fault switches. Cloning shares the cells: hand clones
    /// to components (e.g. the Cohort engine) so a
    /// [`crate::faultinject::FaultInjector`] can perturb them live.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// The configuration this SoC was built with.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The SoC-wide stats registry. Components register into it when added;
    /// harness code may also snapshot it mid-run.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The SoC-wide event trace (disabled until
    /// [`Soc::set_tracing`] turns it on).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables or disables structured event tracing. Cheap to toggle; with
    /// tracing off the emit paths reduce to one atomic load.
    pub fn set_tracing(&self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Adds a component at `tile`, returning its id. The component's
    /// [`Component::attach`] hook runs here with scope `name#id`, so its
    /// counters are registered before its first step.
    pub fn add_component(&mut self, tile: TileCoord, mut comp: Box<dyn Component>) -> CompId {
        let id = CompId(self.slots.len());
        let scope = comp.scope(id);
        self.trace.name_thread(id.0 as u64, &scope);
        let obs = Observability {
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            scope,
            tid: id.0 as u64,
        };
        comp.attach(&obs);
        self.slots.push(Slot {
            comp: Some(comp),
            tile,
            inbox: VecDeque::new(),
        });
        id
    }

    /// Routes the MMIO physical-address `range` to `comp`.
    pub fn map_mmio(&mut self, range: std::ops::Range<u64>, comp: CompId) {
        self.mmio_map.map(range, comp);
    }

    /// Advances the SoC by one cycle.
    pub fn step(&mut self) {
        let slots = &mut self.slots;
        self.noc.deliver_due(self.cycle, |dst, env| {
            slots[dst.0].inbox.push_back(env);
        });
        for i in 0..self.slots.len() {
            let mut comp = self.slots[i].comp.take().expect("component present");
            {
                let mut ctx = Ctx {
                    cycle: self.cycle,
                    self_id: CompId(i),
                    mem: &mut self.mem,
                    inbox: &mut self.slots[i].inbox,
                    outbox: &mut self.outbox,
                    mmio_map: &self.mmio_map,
                };
                comp.step(&mut ctx);
            }
            self.slots[i].comp = Some(comp);
            let src_tile = self.slots[i].tile;
            for out in self.outbox.drain(..) {
                let dst_tile = self.slots[out.dst.0].tile;
                self.noc.inject_delayed(
                    self.cycle,
                    src_tile,
                    dst_tile,
                    out.dst,
                    out.env,
                    out.extra_delay,
                );
            }
        }
        self.cycle += 1;
    }

    fn is_quiescent(&self) -> bool {
        self.noc.is_empty()
            && self
                .slots
                .iter()
                .all(|s| s.inbox.is_empty() && s.comp.as_ref().is_some_and(|c| c.is_idle()))
    }

    /// Runs until the SoC is quiescent or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.is_quiescent() {
                return RunOutcome {
                    cycle: self.cycle,
                    quiescent: true,
                };
            }
            self.step();
        }
        RunOutcome {
            cycle: self.cycle,
            quiescent: self.is_quiescent(),
        }
    }

    /// Runs until `pred` on the SoC becomes true, quiescence, or the budget
    /// is exhausted. Returns true if the predicate fired.
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&Soc) -> bool) -> bool {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if pred(self) {
                return true;
            }
            if self.is_quiescent() {
                return pred(self);
            }
            self.step();
        }
        false
    }

    /// Immutable typed access to a component.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn component<T: 'static>(&self, id: CompId) -> Option<&T> {
        self.slots[id.0]
            .comp
            .as_ref()
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to a component.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn component_mut<T: 'static>(&mut self, id: CompId) -> Option<&mut T> {
        self.slots[id.0]
            .comp
            .as_mut()
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Name and counters of every component, for diagnostics.
    pub fn all_counters(&self) -> Vec<(String, Vec<(String, u64)>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.comp.as_ref().map(|c| (c.scope(CompId(i)), c.counters())))
            .collect()
    }

    /// Total messages the NoC has delivered.
    pub fn noc_delivered(&self) -> u64 {
        self.noc.delivered()
    }

    /// Total flits the NoC has carried.
    pub fn noc_flits(&self) -> u64 {
        self.noc.flits()
    }

    /// The stats registry rendered as JSON (see [`Stats::to_json`]).
    pub fn stats_json(&self) -> String {
        self.stats.to_json()
    }

    /// The event trace rendered as Chrome `trace_event` JSON, loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn trace_json(&self) -> String {
        self.trace.to_chrome_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TileCoord;
    use crate::core::InOrderCore;
    use crate::directory::Directory;
    use crate::program::{Op, Program};

    fn build(program: Program) -> (Soc, CompId) {
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let core = InOrderCore::new(dir, &cfg, program);
        let core_id = soc.add_component(TileCoord::new(1, 0), Box::new(core));
        (soc, core_id)
    }

    #[test]
    fn empty_program_quiesces_immediately() {
        let (mut soc, _) = build(Program::new());
        let out = soc.run(1000);
        assert!(out.quiescent);
        assert!(out.cycle < 10);
    }

    #[test]
    fn store_reaches_memory() {
        let mut p = Program::new();
        p.push(Op::Store {
            va: 0x1000,
            value: 0xdead,
        });
        p.push(Op::Fence);
        let (mut soc, core) = build(p);
        let out = soc.run(100_000);
        assert!(out.quiescent, "stalled at cycle {}", out.cycle);
        assert_eq!(soc.mem.read_u64(0x1000), 0xdead);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert!(c.is_done());
        assert!(c.core_counters().instret.get() >= 2);
    }

    #[test]
    fn load_records_value() {
        let mut p = Program::new();
        p.push(Op::Store { va: 0x40, value: 7 });
        p.push(Op::Fence);
        p.push(Op::Load {
            va: 0x40,
            record: true,
        });
        let (mut soc, core) = build(p);
        assert!(soc.run(100_000).quiescent);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert_eq!(c.recorded(), &[7]);
    }

    #[test]
    fn store_to_load_forwarding() {
        // Load issued while the store is still buffered must see the value.
        let mut p = Program::new();
        p.push(Op::Store {
            va: 0x80,
            value: 99,
        });
        p.push(Op::Load {
            va: 0x80,
            record: true,
        });
        let (mut soc, core) = build(p);
        assert!(soc.run(100_000).quiescent);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert_eq!(c.recorded(), &[99]);
    }

    #[test]
    fn wait_ge_spins_until_satisfied() {
        // Core 1 publishes a flag; core 2 spins on it.
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut producer = Program::new();
        producer.push(Op::Alu(200)); // delay
        producer.push(Op::Store {
            va: 0x2000,
            value: 5,
        });
        producer.push(Op::Fence);
        let mut consumer = Program::new();
        consumer.push(Op::WaitGe {
            va: 0x2000,
            value: 5,
        });
        consumer.push(Op::Load {
            va: 0x2000,
            record: true,
        });
        let p = InOrderCore::new(dir, &cfg, producer);
        let c = InOrderCore::new(dir, &cfg, consumer);
        soc.add_component(TileCoord::new(1, 0), Box::new(p));
        let cid = soc.add_component(TileCoord::new(0, 1), Box::new(c));
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "deadlock at {}", out.cycle);
        assert!(out.cycle >= 200, "consumer cannot finish before producer");
        let cc = soc.component::<InOrderCore>(cid).unwrap();
        assert_eq!(cc.recorded(), &[5]);
        assert!(cc.core_counters().spin_iters.get() > 1);
    }

    #[test]
    fn two_cores_contend_on_one_line() {
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut a = Program::new();
        let mut b = Program::new();
        for i in 0..20 {
            a.push(Op::Store {
                va: 0x3000,
                value: i,
            });
            a.push(Op::Fence);
            b.push(Op::Store {
                va: 0x3000,
                value: 1000 + i,
            });
            b.push(Op::Fence);
        }
        soc.add_component(
            TileCoord::new(1, 0),
            Box::new(InOrderCore::new(dir, &cfg, a)),
        );
        soc.add_component(
            TileCoord::new(0, 1),
            Box::new(InOrderCore::new(dir, &cfg, b)),
        );
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "coherence deadlock at {}", out.cycle);
        let v = soc.mem.read_u64(0x3000);
        assert!(
            v == 19 || v == 1019,
            "final value from one of the cores, got {v}"
        );
        let d = soc
            .component::<Directory>(CompId(0))
            .unwrap()
            .dir_counters()
            .clone();
        assert!(
            d.inv_sent.get() > 0,
            "ping-pong must generate invalidations"
        );
    }

    #[test]
    fn capacity_misses_beyond_l2() {
        // Touch far more lines than L2 capacity; re-touching them must miss
        // again (the Figs. 8/9 capacity effect at queue size 8192).
        let cfg = SocConfig::default();
        let lines = 2 * cfg.l2.capacity_bytes / crate::LINE_BYTES;
        let mut p = Program::new();
        for pass in 0..2 {
            for i in 0..lines {
                p.push(Op::Store {
                    va: i * crate::LINE_BYTES,
                    value: i + pass,
                });
            }
        }
        p.push(Op::Fence);
        let (mut soc, _) = build(p);
        let out = soc.run(10_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().fills.get() > lines,
            "second pass must refill: fills={} lines={lines}",
            d.dir_counters().fills.get()
        );
        assert_eq!(soc.mem.read_u64((lines - 1) * crate::LINE_BYTES), lines);
    }

    #[test]
    fn three_readers_one_writer_invalidation_storm() {
        // Three cores read a line; a writer's GetM must invalidate all of
        // them and the final value must win.
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut writer = Program::new();
        writer.push(Op::Alu(500)); // let the readers cache the line first
        writer.push(Op::Store {
            va: 0x9000,
            value: 77,
        });
        writer.push(Op::Fence);
        soc.add_component(
            TileCoord::new(1, 0),
            Box::new(InOrderCore::new(dir, &cfg, writer)),
        );
        let mut readers = Vec::new();
        for i in 0..3u16 {
            let mut p = Program::new();
            p.push(Op::Load {
                va: 0x9000,
                record: true,
            }); // warm S copy
            p.push(Op::WaitGe {
                va: 0x9000,
                value: 77,
            });
            p.push(Op::Load {
                va: 0x9000,
                record: true,
            });
            let id = soc.add_component(
                TileCoord::new(0, 1 + i),
                Box::new(InOrderCore::new(dir, &cfg, p)),
            );
            readers.push(id);
        }
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        for id in readers {
            let c = soc.component::<InOrderCore>(id).unwrap();
            assert_eq!(c.recorded()[1], 77, "all readers observe the write");
        }
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().inv_sent.get() >= 3,
            "all shared copies invalidated"
        );
    }

    #[test]
    fn store_buffer_acquires_lines_in_parallel() {
        // With MSHR-style prefetching, back-to-back stores to distinct
        // lines should be faster than serialized line acquisitions.
        let mut fast_cfg = SocConfig::default();
        fast_cfg.timing.sb_mshrs = 4;
        let mut slow_cfg = SocConfig::default();
        slow_cfg.timing.sb_mshrs = 1;
        let mk = || {
            let mut p = Program::new();
            for i in 0..64u64 {
                p.push(Op::Store {
                    va: 0x4000 + i * crate::LINE_BYTES,
                    value: i,
                });
            }
            p.push(Op::Fence);
            p
        };
        let run = |cfg: SocConfig| {
            let mut soc = Soc::new(cfg.clone());
            let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
            let core = soc.add_component(
                TileCoord::new(1, 0),
                Box::new(InOrderCore::new(dir, &cfg, mk())),
            );
            assert!(soc.run(1_000_000).quiescent);
            soc.component::<InOrderCore>(core)
                .unwrap()
                .core_counters()
                .done_at
        };
        let fast = run(fast_cfg);
        let slow = run(slow_cfg);
        assert!(fast < slow, "mshr=4 ({fast}) must beat mshr=1 ({slow})");
    }

    #[test]
    fn full_line_write_skips_dram() {
        // A no-fetch GetM should complete without the DRAM fill penalty.
        use crate::msg::Msg;
        use crate::port::{CoherentPort, Outcome};
        // Drive the protocol directly through a tiny probe component.
        struct Probe {
            port: CoherentPort,
            issued: bool,
            done_at: Option<u64>,
            full_line: bool,
        }
        impl Component for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn step(&mut self, ctx: &mut crate::component::Ctx<'_>) {
                while let Some(env) = ctx.recv() {
                    if CoherentPort::wants(&env.msg) {
                        for ev in self.port.handle(&env, ctx) {
                            if matches!(ev, crate::port::PortEvent::Completed { .. }) {
                                self.done_at = Some(ctx.cycle);
                            }
                        }
                    } else if !matches!(env.msg, Msg::MmioWriteResp { .. }) {
                        panic!("unexpected {:?}", env.msg);
                    }
                }
                if !self.issued {
                    self.issued = true;
                    match self.port.request_opts(ctx, 0xa000, true, 1, self.full_line) {
                        Outcome::Pending => {}
                        other => panic!("expected a miss, got {other:?}"),
                    }
                }
            }
            fn is_idle(&self) -> bool {
                self.done_at.is_some()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let time = |full_line: bool| {
            let cfg = SocConfig::default();
            let mut soc = Soc::new(cfg.clone());
            let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
            let probe = Probe {
                port: CoherentPort::new(dir, cfg.l1, cfg.timing.l1_hit),
                issued: false,
                done_at: None,
                full_line,
            };
            let id = soc.add_component(TileCoord::new(1, 0), Box::new(probe));
            assert!(soc.run(100_000).quiescent);
            soc.component::<Probe>(id).unwrap().done_at.unwrap()
        };
        let with_fetch = time(false);
        let no_fetch = time(true);
        assert!(
            with_fetch >= no_fetch + SocConfig::default().timing.dram,
            "no-fetch {no_fetch} vs fetch {with_fetch}"
        );
    }

    #[test]
    fn inclusive_eviction_recalls_holders() {
        // An L2 smaller than the private cache forces inclusive evictions
        // of lines the core still holds: the directory must recall them.
        use crate::config::CacheConfig;
        // 4 lines of L2 total.
        let cfg = SocConfig {
            l2: CacheConfig::new(4 * crate::LINE_BYTES, 2),
            ..SocConfig::default()
        };
        let mut p = Program::new();
        for i in 0..32u64 {
            p.push(Op::Store {
                va: i * crate::LINE_BYTES,
                value: i,
            });
            p.push(Op::Fence);
        }
        // Read everything back to also exercise recalled-line refetches.
        for i in 0..32u64 {
            p.push(Op::Load {
                va: i * crate::LINE_BYTES,
                record: true,
            });
        }
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let core = InOrderCore::new(dir, &cfg, p);
        let core_id = soc.add_component(TileCoord::new(1, 0), Box::new(core));
        let out = soc.run(10_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().recalls.get() > 0,
            "must observe inclusive recalls"
        );
        let c = soc.component::<InOrderCore>(core_id).unwrap();
        let expect: Vec<u64> = (0..32).collect();
        assert_eq!(c.recorded(), &expect[..], "recalled data must survive");
    }
}
