//! The SoC top level: owns components, functional memory and the NoC, and
//! advances simulated time.
//!
//! # Cycle structure and the determinism contract
//!
//! Each cycle has two phases:
//!
//! 1. **Step** — every component is stepped against a write-staged view of
//!    memory ([`crate::stage::StagedMem`]): reads see *committed* memory
//!    plus the component's own writes from this cycle; writes and outgoing
//!    messages are staged per-slot. Steps are data-independent, so the SoC
//!    may execute them across worker threads
//!    ([`crate::config::SocConfig::threads`]).
//! 2. **Commit** — on the main thread, in slot order: write logs are
//!    applied to [`PhysMem`], outboxes are injected into the NoC, staged
//!    fault-switch flips are applied, and the cycle advances.
//!
//! Because cross-component visibility is pinned to the commit barrier,
//! simulated behaviour is a function of the architecture alone: results
//! are bit-identical for any thread count and any component registration
//! order (see `docs/architecture.md`, "Parallel kernel & determinism
//! contract").

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use crate::component::{CompId, Component, Ctx, MmioMap, Observability, Outgoing, TileCoord};
use crate::config::{Lookahead, SocConfig};
use crate::faultinject::FaultState;
use crate::mem::PhysMem;
use crate::msg::Envelope;
use crate::noc::Noc;
use crate::parallel::{Frame, Shared};
use crate::stage::{StagedMem, WriteLog};
use crate::stats::{Counter, Stats};
use crate::trace::Trace;

pub(crate) struct Slot {
    comp: Box<dyn Component>,
    tile: TileCoord,
    inbox: VecDeque<Envelope>,
    /// Messages staged during this cycle's step, injected at commit.
    outbox: Vec<Outgoing>,
    /// Memory writes staged during this cycle's step, applied at commit.
    log: WriteLog,
}

/// Steps one slot against the read-only memory image. Runs on the main
/// thread (sequential path / stripe 0) or a worker thread (other stripes);
/// all effects land in the slot's own staging buffers.
fn step_slot(slot: &mut Slot, i: usize, cycle: u64, mem: &PhysMem, mmio: &MmioMap) {
    let mut ctx = Ctx {
        cycle,
        self_id: CompId(i),
        mem: StagedMem::new(mem, &mut slot.log),
        inbox: &mut slot.inbox,
        outbox: &mut slot.outbox,
        mmio_map: mmio,
    };
    slot.comp.step(&mut ctx);
}

/// Steps the slots listed in stripe `w` of the frame's stripe assignment.
///
/// # Safety
/// The frame's pointers must be live for the whole call, every thread of
/// the cycle must step a distinct stripe index (the stripe lists are
/// disjoint by construction, so no slot is aliased), the stripe
/// assignment must not be mutated concurrently, and the memory image must
/// not be mutated concurrently.
pub(crate) unsafe fn step_stripe(frame: &Frame, w: usize) {
    // SAFETY: the main thread published the assignment before releasing
    // the workers and only rebuilds it while they are parked.
    let stripes: &Vec<Vec<u32>> = unsafe { &*frame.stripes };
    let stripe: &[u32] = &stripes[w];
    for &i in stripe {
        let i = i as usize;
        debug_assert!(i < frame.len);
        // SAFETY: stripes are disjoint, so slot `i` is exclusive to this
        // call; mem/mmio are read-only this phase.
        let (slot, mem, mmio) = unsafe { (&mut *frame.slots.add(i), &*frame.mem, &*frame.mmio) };
        step_slot(slot, i, frame.cycle, mem, mmio);
    }
}

/// Stepped cycles between stripe-assignment rebuilds in the parallel
/// loop. Long enough to amortise the sort, short enough to track phase
/// changes in component activity.
const STRIPE_REBUILD_PERIOD: u32 = 256;

/// The simulation kernel's own instrumentation. Lives in a registry
/// *separate* from the SoC's architectural [`Stats`] so that
/// [`Soc::stats_json`] — part of the determinism contract — is
/// bit-identical whether or not cycle batching is enabled (batching
/// changes how the kernel reaches a state, never the state itself).
struct KernelStats {
    stats: Stats,
    /// Stepped cycles: commit barriers executed (go/done round trips in
    /// the parallel loop, plain commits in the sequential one).
    barriers: Counter,
    /// Cycles skipped by conservative-lookahead fast-forward.
    ff_cycles: Counter,
    /// Cost-aware stripe-assignment rebuilds.
    rebuilds: Counter,
}

impl KernelStats {
    fn new() -> Self {
        let stats = Stats::new();
        let barriers = stats.counter("kernel.barrier_activations");
        let ff_cycles = stats.counter("kernel.ff_cycles");
        let rebuilds = stats.counter("kernel.stripe_rebuilds");
        Self {
            stats,
            barriers,
            ff_cycles,
            rebuilds,
        }
    }
}

/// Why [`Soc::run_loop`] stopped.
enum LoopExit {
    /// The caller's predicate fired.
    Pred,
    /// The SoC went quiescent (and the predicate, if any, stayed false).
    Quiescent,
    /// The cycle budget was exhausted.
    Deadline,
}

/// Result of [`Soc::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cycle at which the run stopped.
    pub cycle: u64,
    /// True if the SoC went quiescent (all components idle, no messages in
    /// flight); false if the cycle budget was exhausted first.
    pub quiescent: bool,
}

/// The simulated system-on-chip.
pub struct Soc {
    /// Current cycle.
    pub cycle: u64,
    /// Functional physical memory.
    pub mem: PhysMem,
    noc: Noc,
    slots: Vec<Slot>,
    mmio_map: MmioMap,
    cfg: SocConfig,
    stats: Stats,
    trace: Trace,
    faults: FaultState,
    kernel: KernelStats,
    /// Per-slot EWMA of staged-op counts (scaled by 256), updated at every
    /// commit — the deterministic cost model behind stripe packing.
    costs: Vec<u64>,
    /// Stripe assignment for the parallel loop: `stripes[w]` lists the
    /// slot indices thread `w` steps. Disjoint and covering by
    /// construction; rebuilt by greedy LPT packing over `costs`.
    stripes: Vec<Vec<u32>>,
    /// Stepped cycles since the last stripe rebuild.
    stepped_since_rebuild: u32,
    /// Index of the slot that pinned the last lookahead probe to 1
    /// (`usize::MAX` before the first pin). Saturated phases are almost
    /// always pinned by the same busy component for thousands of
    /// consecutive cycles, so [`Soc::lookahead_horizon`] re-checks this
    /// slot first and answers most probes with one hint call instead of
    /// a full scan — pure memoization, the probe's *result* is
    /// unchanged. A `Cell` because the horizon is a `&self` query.
    pin_slot: std::cell::Cell<usize>,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("cycle", &self.cycle)
            .field("components", &self.slots.len())
            .finish()
    }
}

impl Soc {
    /// Creates an empty SoC with configuration `cfg`.
    pub fn new(cfg: SocConfig) -> Self {
        let stats = Stats::new();
        let trace = Trace::default();
        let faults = FaultState::default();
        let mut noc = Noc::new(&cfg.timing);
        if let Some(dram) = &cfg.dram {
            noc.set_ejection_width(dram.noc_ejection);
        }
        noc.attach(&stats, &trace);
        noc.set_fault_state(faults.clone());
        Self {
            cycle: 0,
            mem: PhysMem::new(),
            noc,
            slots: Vec::new(),
            mmio_map: MmioMap::default(),
            cfg,
            stats,
            trace,
            faults,
            kernel: KernelStats::new(),
            costs: Vec::new(),
            stripes: Vec::new(),
            stepped_since_rebuild: 0,
            pin_slot: std::cell::Cell::new(usize::MAX),
        }
    }

    /// The SoC-wide fault switches. Cloning shares the cells: hand clones
    /// to components (e.g. the Cohort engine) so a
    /// [`crate::faultinject::FaultInjector`] can perturb them live.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// The configuration this SoC was built with.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The SoC-wide stats registry. Components register into it when added;
    /// harness code may also snapshot it mid-run.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The SoC-wide event trace (disabled until
    /// [`Soc::set_tracing`] turns it on).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables or disables structured event tracing. Cheap to toggle; with
    /// tracing off the emit paths reduce to one atomic load.
    pub fn set_tracing(&self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Adds a component at `tile`, returning its id. The component's
    /// [`Component::attach`] hook runs here with scope `name#id`, so its
    /// counters are registered before its first step.
    pub fn add_component(&mut self, tile: TileCoord, mut comp: Box<dyn Component>) -> CompId {
        let id = CompId(self.slots.len());
        let scope = comp.scope(id);
        self.trace.name_thread(id.0 as u64, &scope);
        let obs = Observability {
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            scope,
            tid: id.0 as u64,
        };
        comp.attach(&obs);
        self.slots.push(Slot {
            comp,
            tile,
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            log: WriteLog::new(),
        });
        id
    }

    /// Routes the MMIO physical-address `range` to `comp`.
    pub fn map_mmio(&mut self, range: std::ops::Range<u64>, comp: CompId) {
        self.mmio_map.map(range, comp);
    }

    /// Advances the SoC by one cycle (sequential step phase + commit).
    pub fn step(&mut self) {
        self.deliver_due();
        let (slots, mem, mmio) = (&mut self.slots, &self.mem, &self.mmio_map);
        for (i, slot) in slots.iter_mut().enumerate() {
            step_slot(slot, i, self.cycle, mem, mmio);
        }
        self.commit_cycle();
    }

    /// Places every message due this cycle into its destination inbox.
    fn deliver_due(&mut self) {
        let slots = &mut self.slots;
        self.noc.deliver_due(self.cycle, |dst, env| {
            slots[dst.0].inbox.push_back(env);
        });
    }

    /// The cycle barrier: applies staged writes to memory and staged
    /// messages to the NoC in slot order, commits staged fault-switch
    /// flips, and advances the cycle. Runs on the main thread only.
    fn commit_cycle(&mut self) {
        self.kernel.barriers.inc();
        let (slots, mem, noc) = (&mut self.slots, &mut self.mem, &mut self.noc);
        if self.costs.len() != slots.len() {
            self.costs.resize(slots.len(), 0);
        }
        for (slot, cost) in slots.iter_mut().zip(self.costs.iter_mut()) {
            // EWMA (alpha = 1/8, samples scaled by 256) over this cycle's
            // staged activity. Pure integer arithmetic over simulated
            // state — never wall time — so the cost model, and therefore
            // the stripe assignment, is itself deterministic.
            let sample = (slot.log.staged_ops() + slot.outbox.len()) as u64 * 256;
            *cost = (*cost * 7 + sample) / 8;
            slot.log.commit(mem);
        }
        for i in 0..slots.len() {
            if slots[i].outbox.is_empty() {
                continue;
            }
            let src_tile = slots[i].tile;
            let mut outbox = std::mem::take(&mut slots[i].outbox);
            for out in outbox.drain(..) {
                let dst_tile = slots[out.dst.0].tile;
                noc.inject_delayed(
                    self.cycle,
                    src_tile,
                    dst_tile,
                    out.dst,
                    out.env,
                    out.extra_delay,
                );
            }
            slots[i].outbox = outbox;
        }
        self.faults.commit_staged();
        self.cycle += 1;
    }

    fn is_quiescent(&self) -> bool {
        self.noc.is_empty()
            && self.slots.iter().all(|s| {
                s.inbox.is_empty() && s.outbox.is_empty() && s.log.is_empty() && s.comp.is_idle()
            })
    }

    /// The conservative lookahead horizon from the current cycle: the
    /// number of upcoming cycles (≥ 1) that are provably free of
    /// cross-component events, i.e. the minimum over
    ///
    /// * the remaining cycle budget (`deadline`),
    /// * the next NoC delivery ([`crate::noc::Noc::next_delivery`]),
    /// * the next fault-window edge
    ///   ([`FaultState::next_window_edge`]; window *opens* are bounded by
    ///   the injector's own hint below),
    /// * every component's [`Component::quiescent_for`] hint.
    ///
    /// Any pending inbox pins the horizon to 1 (the delivery must be
    /// consumed by a real step). A horizon of `k ≥ 2` means cycles
    /// `now .. now + k - 1` may be skipped and the first potential event
    /// cycle `now + k` — a delivery, a fault edge, or a component waking
    /// — is still stepped for real. Under [`Lookahead::Force1`] this is
    /// constantly 1. Public so the horizon-soundness property tests can
    /// probe it directly.
    pub fn lookahead_horizon(&self, deadline: u64) -> u64 {
        if self.cfg.lookahead == Lookahead::Force1 {
            return 1;
        }
        let mut k = deadline.saturating_sub(self.cycle);
        if k <= 1 {
            return 1;
        }
        // Memoized fast path: if the slot that pinned the last probe is
        // still busy (undrained inbox or hint of 1), the global min is
        // still 1 — no need to consult anyone else. Saturated phases
        // answer here with a single hint call.
        if let Some(s) = self.slots.get(self.pin_slot.get()) {
            if !s.inbox.is_empty() || s.comp.quiescent_for(self.cycle) <= 1 {
                return 1;
            }
        }
        if let Some(i) = self.slots.iter().position(|s| !s.inbox.is_empty()) {
            self.pin_slot.set(i);
            return 1;
        }
        if let Some(at) = self.noc.next_delivery() {
            k = k.min(at.saturating_sub(self.cycle));
        }
        if let Some(edge) = self.faults.next_window_edge(self.cycle) {
            k = k.min(edge.saturating_sub(self.cycle));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if k <= 1 {
                return 1;
            }
            k = k.min(s.comp.quiescent_for(self.cycle));
            if k <= 1 {
                self.pin_slot.set(i);
                return 1;
            }
        }
        k.max(1)
    }

    /// Skips `k` cycles the lookahead proved to be no-ops: advances the
    /// cycle counter and lets every component reconcile its per-cycle
    /// bookkeeping. No step, no commit, and — in the parallel loop — no
    /// barrier.
    fn fast_forward_cycles(&mut self, k: u64) {
        debug_assert!(self
            .slots
            .iter()
            .all(|s| { s.inbox.is_empty() && s.outbox.is_empty() && s.log.is_empty() }));
        for slot in &mut self.slots {
            slot.comp.fast_forward(k);
        }
        self.kernel.ff_cycles.add(k);
        self.cycle += k;
    }

    /// Rebuilds the parallel loop's stripe assignment by greedy
    /// longest-processing-time packing over the cost EWMAs: slots sorted
    /// by descending cost (slot index breaks ties), each placed on the
    /// currently lightest stripe. Deterministic input, deterministic
    /// order — the assignment is reproducible, and since every slot is
    /// stepped exactly once per cycle regardless of stripe, it is
    /// semantics-invariant (a host-side scheduling decision only).
    fn rebuild_stripes(&mut self, threads: usize) {
        self.costs.resize(self.slots.len(), 0);
        let mut order: Vec<u32> = (0..self.slots.len() as u32).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.costs[i as usize]), i));
        self.stripes.resize(threads, Vec::new());
        self.stripes.truncate(threads);
        for s in &mut self.stripes {
            s.clear();
        }
        let mut load = vec![0u64; threads];
        for i in order {
            let w = (0..threads)
                .min_by_key(|&w| (load[w], w))
                .expect("threads >= 1");
            // +1 so zero-cost slots still spread instead of piling up.
            load[w] += self.costs[i as usize] + 1;
            self.stripes[w].push(i);
        }
        self.kernel.rebuilds.inc();
        self.stepped_since_rebuild = 0;
    }

    /// Runs until the SoC is quiescent or `max_cycles` elapse. A budget of
    /// `u64::MAX` means "no budget" (the deadline saturates rather than
    /// wrapping).
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        match self.run_loop(max_cycles, None) {
            LoopExit::Quiescent => RunOutcome {
                cycle: self.cycle,
                quiescent: true,
            },
            _ => RunOutcome {
                cycle: self.cycle,
                quiescent: self.is_quiescent(),
            },
        }
    }

    /// Runs until `pred` on the SoC becomes true, quiescence, or the budget
    /// is exhausted (saturating, like [`Soc::run`]). Returns true if the
    /// predicate fired.
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&Soc) -> bool) -> bool {
        matches!(self.run_loop(max_cycles, Some(&mut pred)), LoopExit::Pred)
    }

    /// The shared run loop behind [`Soc::run`] and [`Soc::run_until`].
    ///
    /// Per iteration: deadline check, predicate check, quiescence check
    /// (re-consulting the predicate, which may hold on the quiescent
    /// state), then one cycle. With `cfg.threads > 1` the cycle's step
    /// phase fans out across a scoped worker pool; everything else —
    /// checks, NoC delivery, commit — runs on the main thread, so the
    /// sequential and parallel paths execute the same decisions in the
    /// same order.
    fn run_loop(
        &mut self,
        max_cycles: u64,
        pred: Option<&mut dyn FnMut(&Soc) -> bool>,
    ) -> LoopExit {
        let deadline = self.cycle.saturating_add(max_cycles);
        let threads = self.cfg.threads.clamp(1, self.slots.len().max(1));
        if threads <= 1 {
            self.run_loop_seq(deadline, pred)
        } else {
            self.run_loop_par(deadline, pred, threads)
        }
    }

    fn run_loop_seq(
        &mut self,
        deadline: u64,
        mut pred: Option<&mut dyn FnMut(&Soc) -> bool>,
    ) -> LoopExit {
        loop {
            if self.cycle >= deadline {
                return LoopExit::Deadline;
            }
            if let Some(p) = pred.as_deref_mut() {
                if p(self) {
                    return LoopExit::Pred;
                }
            }
            if self.is_quiescent() {
                return match pred.as_deref_mut() {
                    Some(p) => {
                        if p(self) {
                            LoopExit::Pred
                        } else {
                            LoopExit::Quiescent
                        }
                    }
                    None => LoopExit::Quiescent,
                };
            }
            let k = self.lookahead_horizon(deadline);
            if k >= 2 {
                self.fast_forward_cycles(k);
                continue;
            }
            self.step();
        }
    }

    /// The component-parallel run loop: workers park on a go/done barrier
    /// pair for the whole run; each cycle the main thread publishes a
    /// [`Frame`] over the slot array, releases the workers, steps stripe 0
    /// itself, waits for the workers, and commits.
    fn run_loop_par(
        &mut self,
        deadline: u64,
        mut pred: Option<&mut dyn FnMut(&Soc) -> bool>,
        threads: usize,
    ) -> LoopExit {
        self.rebuild_stripes(threads);
        let shared = Shared::new(threads - 1);
        std::thread::scope(|scope| {
            for w in 1..threads {
                let shared = &shared;
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        seen = shared.go.wait(seen);
                        if shared.exit.load(Ordering::Acquire) {
                            break;
                        }
                        let frame = shared.frame();
                        // SAFETY: the main thread published this frame and
                        // is waiting on the done latch; this worker steps
                        // only stripe `w` of the assignment.
                        unsafe { step_stripe(&frame, w) };
                        shared.done.arrive();
                    }
                });
            }
            let exit = loop {
                if self.cycle >= deadline {
                    break LoopExit::Deadline;
                }
                if let Some(p) = pred.as_deref_mut() {
                    if p(self) {
                        break LoopExit::Pred;
                    }
                }
                if self.is_quiescent() {
                    break match pred.as_deref_mut() {
                        Some(p) => {
                            if p(self) {
                                LoopExit::Pred
                            } else {
                                LoopExit::Quiescent
                            }
                        }
                        None => LoopExit::Quiescent,
                    };
                }
                // Workers are parked here, so skipping a batch of proven
                // no-op cycles pays no go/done barrier at all, and the
                // stripe assignment may be rebuilt without a race.
                let k = self.lookahead_horizon(deadline);
                if k >= 2 {
                    self.fast_forward_cycles(k);
                    continue;
                }
                if self.stepped_since_rebuild >= STRIPE_REBUILD_PERIOD {
                    self.rebuild_stripes(threads);
                }
                self.stepped_since_rebuild += 1;
                self.deliver_due();
                let frame = Frame {
                    slots: self.slots.as_mut_ptr(),
                    len: self.slots.len(),
                    mem: &self.mem,
                    mmio: &self.mmio_map,
                    stripes: &self.stripes,
                    cycle: self.cycle,
                };
                shared.publish(frame);
                shared.go.go();
                // SAFETY: stripe 0 is disjoint from every worker stripe.
                unsafe { step_stripe(&frame, 0) };
                shared.done.wait_and_reset();
                self.commit_cycle();
            };
            shared.exit.store(true, Ordering::Release);
            shared.go.go();
            exit
        })
    }

    /// Immutable typed access to a component; `None` if `id` is out of
    /// range or the component is not a `T`.
    pub fn component<T: 'static>(&self, id: CompId) -> Option<&T> {
        self.slots
            .get(id.0)
            .and_then(|s| s.comp.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to a component; `None` if `id` is out of range
    /// or the component is not a `T`.
    pub fn component_mut<T: 'static>(&mut self, id: CompId) -> Option<&mut T> {
        self.slots
            .get_mut(id.0)
            .and_then(|s| s.comp.as_any_mut().downcast_mut::<T>())
    }

    /// Name and counters of every component, for diagnostics.
    pub fn all_counters(&self) -> Vec<(String, Vec<(String, u64)>)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.comp.scope(CompId(i)), s.comp.counters()))
            .collect()
    }

    /// Total messages the NoC has delivered.
    pub fn noc_delivered(&self) -> u64 {
        self.noc.delivered()
    }

    /// Total flits the NoC has carried.
    pub fn noc_flits(&self) -> u64 {
        self.noc.flits()
    }

    /// The stats registry rendered as JSON (see [`Stats::to_json`]).
    pub fn stats_json(&self) -> String {
        self.stats.to_json()
    }

    /// The simulation kernel's own instrumentation
    /// (`kernel.barrier_activations`, `kernel.ff_cycles`,
    /// `kernel.stripe_rebuilds`). Deliberately a registry separate from
    /// [`Soc::stats`]: kernel counters describe how the host executed the
    /// simulation, not what the simulated SoC did, so they must never
    /// leak into [`Soc::stats_json`] (which the determinism contract pins
    /// across batching modes).
    pub fn kernel_stats(&self) -> &Stats {
        &self.kernel.stats
    }

    /// One kernel counter by name (see [`Soc::kernel_stats`]); 0 if absent.
    pub fn kernel_counter(&self, name: &str) -> u64 {
        self.kernel
            .stats
            .counter_values()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    /// The event trace rendered as Chrome `trace_event` JSON, loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn trace_json(&self) -> String {
        self.trace.to_chrome_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TileCoord;
    use crate::core::InOrderCore;
    use crate::directory::Directory;
    use crate::program::{Op, Program};

    fn build(program: Program) -> (Soc, CompId) {
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let core = InOrderCore::new(dir, &cfg, program);
        let core_id = soc.add_component(TileCoord::new(1, 0), Box::new(core));
        (soc, core_id)
    }

    #[test]
    fn empty_program_quiesces_immediately() {
        let (mut soc, _) = build(Program::new());
        let out = soc.run(1000);
        assert!(out.quiescent);
        assert!(out.cycle < 10);
    }

    #[test]
    fn store_reaches_memory() {
        let mut p = Program::new();
        p.push(Op::Store {
            va: 0x1000,
            value: 0xdead,
        });
        p.push(Op::Fence);
        let (mut soc, core) = build(p);
        let out = soc.run(100_000);
        assert!(out.quiescent, "stalled at cycle {}", out.cycle);
        assert_eq!(soc.mem.read_u64(0x1000), 0xdead);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert!(c.is_done());
        assert!(c.core_counters().instret.get() >= 2);
    }

    #[test]
    fn load_records_value() {
        let mut p = Program::new();
        p.push(Op::Store { va: 0x40, value: 7 });
        p.push(Op::Fence);
        p.push(Op::Load {
            va: 0x40,
            record: true,
        });
        let (mut soc, core) = build(p);
        assert!(soc.run(100_000).quiescent);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert_eq!(c.recorded(), &[7]);
    }

    #[test]
    fn store_to_load_forwarding() {
        // Load issued while the store is still buffered must see the value.
        let mut p = Program::new();
        p.push(Op::Store {
            va: 0x80,
            value: 99,
        });
        p.push(Op::Load {
            va: 0x80,
            record: true,
        });
        let (mut soc, core) = build(p);
        assert!(soc.run(100_000).quiescent);
        let c = soc.component::<InOrderCore>(core).unwrap();
        assert_eq!(c.recorded(), &[99]);
    }

    #[test]
    fn wait_ge_spins_until_satisfied() {
        // Core 1 publishes a flag; core 2 spins on it.
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut producer = Program::new();
        producer.push(Op::Alu(200)); // delay
        producer.push(Op::Store {
            va: 0x2000,
            value: 5,
        });
        producer.push(Op::Fence);
        let mut consumer = Program::new();
        consumer.push(Op::WaitGe {
            va: 0x2000,
            value: 5,
        });
        consumer.push(Op::Load {
            va: 0x2000,
            record: true,
        });
        let p = InOrderCore::new(dir, &cfg, producer);
        let c = InOrderCore::new(dir, &cfg, consumer);
        soc.add_component(TileCoord::new(1, 0), Box::new(p));
        let cid = soc.add_component(TileCoord::new(0, 1), Box::new(c));
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "deadlock at {}", out.cycle);
        assert!(out.cycle >= 200, "consumer cannot finish before producer");
        let cc = soc.component::<InOrderCore>(cid).unwrap();
        assert_eq!(cc.recorded(), &[5]);
        assert!(cc.core_counters().spin_iters.get() > 1);
    }

    #[test]
    fn two_cores_contend_on_one_line() {
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut a = Program::new();
        let mut b = Program::new();
        for i in 0..20 {
            a.push(Op::Store {
                va: 0x3000,
                value: i,
            });
            a.push(Op::Fence);
            b.push(Op::Store {
                va: 0x3000,
                value: 1000 + i,
            });
            b.push(Op::Fence);
        }
        soc.add_component(
            TileCoord::new(1, 0),
            Box::new(InOrderCore::new(dir, &cfg, a)),
        );
        soc.add_component(
            TileCoord::new(0, 1),
            Box::new(InOrderCore::new(dir, &cfg, b)),
        );
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "coherence deadlock at {}", out.cycle);
        let v = soc.mem.read_u64(0x3000);
        assert!(
            v == 19 || v == 1019,
            "final value from one of the cores, got {v}"
        );
        let d = soc
            .component::<Directory>(CompId(0))
            .unwrap()
            .dir_counters()
            .clone();
        assert!(
            d.inv_sent.get() > 0,
            "ping-pong must generate invalidations"
        );
    }

    #[test]
    fn capacity_misses_beyond_l2() {
        // Touch far more lines than L2 capacity; re-touching them must miss
        // again (the Figs. 8/9 capacity effect at queue size 8192).
        let cfg = SocConfig::default();
        let lines = 2 * cfg.l2.capacity_bytes / crate::LINE_BYTES;
        let mut p = Program::new();
        for pass in 0..2 {
            for i in 0..lines {
                p.push(Op::Store {
                    va: i * crate::LINE_BYTES,
                    value: i + pass,
                });
            }
        }
        p.push(Op::Fence);
        let (mut soc, _) = build(p);
        let out = soc.run(10_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().fills.get() > lines,
            "second pass must refill: fills={} lines={lines}",
            d.dir_counters().fills.get()
        );
        assert_eq!(soc.mem.read_u64((lines - 1) * crate::LINE_BYTES), lines);
    }

    #[test]
    fn three_readers_one_writer_invalidation_storm() {
        // Three cores read a line; a writer's GetM must invalidate all of
        // them and the final value must win.
        let cfg = SocConfig::default();
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut writer = Program::new();
        writer.push(Op::Alu(500)); // let the readers cache the line first
        writer.push(Op::Store {
            va: 0x9000,
            value: 77,
        });
        writer.push(Op::Fence);
        soc.add_component(
            TileCoord::new(1, 0),
            Box::new(InOrderCore::new(dir, &cfg, writer)),
        );
        let mut readers = Vec::new();
        for i in 0..3u16 {
            let mut p = Program::new();
            p.push(Op::Load {
                va: 0x9000,
                record: true,
            }); // warm S copy
            p.push(Op::WaitGe {
                va: 0x9000,
                value: 77,
            });
            p.push(Op::Load {
                va: 0x9000,
                record: true,
            });
            let id = soc.add_component(
                TileCoord::new(0, 1 + i),
                Box::new(InOrderCore::new(dir, &cfg, p)),
            );
            readers.push(id);
        }
        let out = soc.run(1_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        for id in readers {
            let c = soc.component::<InOrderCore>(id).unwrap();
            assert_eq!(c.recorded()[1], 77, "all readers observe the write");
        }
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().inv_sent.get() >= 3,
            "all shared copies invalidated"
        );
    }

    #[test]
    fn store_buffer_acquires_lines_in_parallel() {
        // With MSHR-style prefetching, back-to-back stores to distinct
        // lines should be faster than serialized line acquisitions.
        let mut fast_cfg = SocConfig::default();
        fast_cfg.timing.sb_mshrs = 4;
        let mut slow_cfg = SocConfig::default();
        slow_cfg.timing.sb_mshrs = 1;
        let mk = || {
            let mut p = Program::new();
            for i in 0..64u64 {
                p.push(Op::Store {
                    va: 0x4000 + i * crate::LINE_BYTES,
                    value: i,
                });
            }
            p.push(Op::Fence);
            p
        };
        let run = |cfg: SocConfig| {
            let mut soc = Soc::new(cfg.clone());
            let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
            let core = soc.add_component(
                TileCoord::new(1, 0),
                Box::new(InOrderCore::new(dir, &cfg, mk())),
            );
            assert!(soc.run(1_000_000).quiescent);
            soc.component::<InOrderCore>(core)
                .unwrap()
                .core_counters()
                .done_at
        };
        let fast = run(fast_cfg);
        let slow = run(slow_cfg);
        assert!(fast < slow, "mshr=4 ({fast}) must beat mshr=1 ({slow})");
    }

    #[test]
    fn full_line_write_skips_dram() {
        // A no-fetch GetM should complete without the DRAM fill penalty.
        use crate::msg::Msg;
        use crate::port::{CoherentPort, Outcome};
        // Drive the protocol directly through a tiny probe component.
        struct Probe {
            port: CoherentPort,
            issued: bool,
            done_at: Option<u64>,
            full_line: bool,
        }
        impl Component for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn step(&mut self, ctx: &mut crate::component::Ctx<'_>) {
                while let Some(env) = ctx.recv() {
                    if CoherentPort::wants(&env.msg) {
                        for ev in self.port.handle(&env, ctx) {
                            if matches!(ev, crate::port::PortEvent::Completed { .. }) {
                                self.done_at = Some(ctx.cycle);
                            }
                        }
                    } else if !matches!(env.msg, Msg::MmioWriteResp { .. }) {
                        panic!("unexpected {:?}", env.msg);
                    }
                }
                if !self.issued {
                    self.issued = true;
                    match self.port.request_opts(ctx, 0xa000, true, 1, self.full_line) {
                        Outcome::Pending => {}
                        other => panic!("expected a miss, got {other:?}"),
                    }
                }
            }
            fn is_idle(&self) -> bool {
                self.done_at.is_some()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let time = |full_line: bool| {
            let cfg = SocConfig::default();
            let mut soc = Soc::new(cfg.clone());
            let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
            let probe = Probe {
                port: CoherentPort::new(dir, cfg.l1, cfg.timing.l1_hit),
                issued: false,
                done_at: None,
                full_line,
            };
            let id = soc.add_component(TileCoord::new(1, 0), Box::new(probe));
            assert!(soc.run(100_000).quiescent);
            soc.component::<Probe>(id).unwrap().done_at.unwrap()
        };
        let with_fetch = time(false);
        let no_fetch = time(true);
        assert!(
            with_fetch >= no_fetch + SocConfig::default().timing.dram,
            "no-fetch {no_fetch} vs fetch {with_fetch}"
        );
    }

    #[test]
    fn inclusive_eviction_recalls_holders() {
        // An L2 smaller than the private cache forces inclusive evictions
        // of lines the core still holds: the directory must recall them.
        use crate::config::CacheConfig;
        // 4 lines of L2 total.
        let cfg = SocConfig {
            l2: CacheConfig::new(4 * crate::LINE_BYTES, 2),
            ..SocConfig::default()
        };
        let mut p = Program::new();
        for i in 0..32u64 {
            p.push(Op::Store {
                va: i * crate::LINE_BYTES,
                value: i,
            });
            p.push(Op::Fence);
        }
        // Read everything back to also exercise recalled-line refetches.
        for i in 0..32u64 {
            p.push(Op::Load {
                va: i * crate::LINE_BYTES,
                record: true,
            });
        }
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let core = InOrderCore::new(dir, &cfg, p);
        let core_id = soc.add_component(TileCoord::new(1, 0), Box::new(core));
        let out = soc.run(10_000_000);
        assert!(out.quiescent, "stuck at {}", out.cycle);
        let d = soc.component::<Directory>(CompId(0)).unwrap();
        assert!(
            d.dir_counters().recalls.get() > 0,
            "must observe inclusive recalls"
        );
        let c = soc.component::<InOrderCore>(core_id).unwrap();
        let expect: Vec<u64> = (0..32).collect();
        assert_eq!(c.recorded(), &expect[..], "recalled data must survive");
    }

    #[test]
    fn budget_u64_max_saturates_instead_of_wrapping() {
        // `cycle + max_cycles` used to overflow for unbounded budgets once
        // the SoC had advanced past cycle 0; the deadline now saturates.
        let mut p = Program::new();
        p.push(Op::Store {
            va: 0x1000,
            value: 1,
        });
        p.push(Op::Fence);
        let (mut soc, _) = build(p);
        let out = soc.run(u64::MAX);
        assert!(out.quiescent);
        assert!(out.cycle > 0);
        // Second unbounded run from a nonzero cycle: the old code wrapped
        // the deadline to `cycle - 1` and returned without stepping.
        assert!(soc.run(u64::MAX).quiescent);
        assert!(soc.run_until(u64::MAX, |s| s.cycle >= out.cycle));
    }

    #[test]
    fn zero_budget_never_consults_predicate() {
        let (mut soc, _) = build(Program::new());
        let mut calls = 0;
        assert!(!soc.run_until(0, |_| {
            calls += 1;
            true
        }));
        assert_eq!(calls, 0, "deadline is checked before the predicate");
    }

    #[test]
    fn component_accessors_are_total() {
        // Documented as returning Option, these used to panic on an
        // out-of-range id via direct indexing.
        let (mut soc, core) = build(Program::new());
        assert!(soc.component::<InOrderCore>(CompId(99)).is_none());
        assert!(soc.component_mut::<InOrderCore>(CompId(99)).is_none());
        assert!(soc.component::<Directory>(core).is_none(), "wrong type");
        assert!(soc.component::<InOrderCore>(core).is_some());
    }

    /// A component that writes a word at a fixed cycle.
    struct Writer;
    /// A component that polls a word every cycle and records when it first
    /// observes the written value.
    struct Reader {
        seen_at: Option<u64>,
    }
    impl Component for Writer {
        fn name(&self) -> &str {
            "writer"
        }
        fn step(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.cycle == 5 {
                ctx.mem.write_u64(0x100, 42);
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    impl Component for Reader {
        fn name(&self) -> &str {
            "reader"
        }
        fn step(&mut self, ctx: &mut Ctx<'_>) {
            if self.seen_at.is_none() && ctx.mem.read_u64(0x100) == 42 {
                self.seen_at = Some(ctx.cycle);
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn same_cycle_visibility_is_order_independent() {
        // Whatever the registration order, a write staged at cycle 5
        // becomes visible to other components at cycle 6 — the barrier,
        // not the step loop, defines visibility.
        for writer_first in [true, false] {
            let mut soc = Soc::new(SocConfig::default());
            let reader = if writer_first {
                soc.add_component(TileCoord::new(0, 0), Box::new(Writer));
                soc.add_component(TileCoord::new(1, 0), Box::new(Reader { seen_at: None }))
            } else {
                let r = soc.add_component(TileCoord::new(1, 0), Box::new(Reader { seen_at: None }));
                soc.add_component(TileCoord::new(0, 0), Box::new(Writer));
                r
            };
            for _ in 0..10 {
                soc.step();
            }
            let r = soc.component::<Reader>(reader).unwrap();
            assert_eq!(
                r.seen_at,
                Some(6),
                "writer_first={writer_first}: visibility pinned to the barrier"
            );
        }
    }

    /// Runs the producer/consumer hand-off with the two cores registered
    /// in the given order; returns (final cycle, consumer record, memory
    /// word) for bit-identity comparison.
    fn handoff(consumer_first: bool, threads: usize, lookahead: Lookahead) -> (u64, Vec<u64>, u64) {
        let cfg = SocConfig::default()
            .with_threads(threads)
            .with_lookahead(lookahead);
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
        let mut producer = Program::new();
        producer.push(Op::Alu(200));
        producer.push(Op::Store {
            va: 0x2000,
            value: 5,
        });
        producer.push(Op::Fence);
        let mut consumer = Program::new();
        consumer.push(Op::WaitGe {
            va: 0x2000,
            value: 5,
        });
        consumer.push(Op::Load {
            va: 0x2000,
            record: true,
        });
        // Tiles stay fixed; only the slot (registration) order changes.
        let p = InOrderCore::new(dir, &cfg, producer);
        let c = InOrderCore::new(dir, &cfg, consumer);
        let cid = if consumer_first {
            let cid = soc.add_component(TileCoord::new(0, 1), Box::new(c));
            soc.add_component(TileCoord::new(1, 0), Box::new(p));
            cid
        } else {
            soc.add_component(TileCoord::new(1, 0), Box::new(p));
            soc.add_component(TileCoord::new(0, 1), Box::new(c))
        };
        let out = soc.run(1_000_000);
        assert!(out.quiescent);
        let rec = soc
            .component::<InOrderCore>(cid)
            .unwrap()
            .recorded()
            .to_vec();
        (out.cycle, rec, soc.mem.read_u64(0x2000))
    }

    #[test]
    fn registration_order_does_not_change_results() {
        assert_eq!(
            handoff(false, 1, Lookahead::Auto),
            handoff(true, 1, Lookahead::Auto)
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq = handoff(false, 1, Lookahead::Auto);
        assert_eq!(seq, handoff(false, 2, Lookahead::Auto));
        assert_eq!(seq, handoff(false, 3, Lookahead::Auto));
        assert_eq!(
            seq,
            handoff(false, 8, Lookahead::Auto),
            "threads clamp to slot count"
        );
    }

    #[test]
    fn lookahead_does_not_change_results() {
        // The heart of the batching contract: cycle-for-cycle stepping and
        // conservative fast-forwarding are observationally identical, at
        // every thread count.
        let base = handoff(false, 1, Lookahead::Force1);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                base,
                handoff(false, threads, Lookahead::Auto),
                "auto batching diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn lookahead_actually_skips_cycles() {
        // The hand-off spends most of its time in an ALU delay and a spin
        // wait — lookahead must convert those into fast-forward gaps, and
        // the barrier/ff split must account for every simulated cycle.
        let run = |lookahead| {
            let cfg = SocConfig::default().with_lookahead(lookahead);
            let mut soc = Soc::new(cfg.clone());
            let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
            let mut producer = Program::new();
            producer.push(Op::Alu(500));
            producer.push(Op::Store {
                va: 0x2000,
                value: 5,
            });
            producer.push(Op::Fence);
            let mut consumer = Program::new();
            consumer.push(Op::WaitGe {
                va: 0x2000,
                value: 5,
            });
            soc.add_component(
                TileCoord::new(1, 0),
                Box::new(InOrderCore::new(dir, &cfg, producer)),
            );
            soc.add_component(
                TileCoord::new(0, 1),
                Box::new(InOrderCore::new(dir, &cfg, consumer)),
            );
            let out = soc.run(1_000_000);
            assert!(out.quiescent);
            (
                out.cycle,
                soc.kernel_counter("kernel.barrier_activations"),
                soc.kernel_counter("kernel.ff_cycles"),
            )
        };
        let (cycles_f1, barriers_f1, ff_f1) = run(Lookahead::Force1);
        let (cycles_auto, barriers_auto, ff_auto) = run(Lookahead::Auto);
        assert_eq!(cycles_f1, cycles_auto, "batching must not change timing");
        assert_eq!(ff_f1, 0, "force-1 never fast-forwards");
        assert_eq!(barriers_f1, cycles_f1, "force-1 steps every cycle");
        assert!(ff_auto > 0, "the ALU delay must fast-forward");
        assert_eq!(
            barriers_auto + ff_auto,
            cycles_auto,
            "every cycle is either stepped or skipped"
        );
        assert!(
            barriers_auto * 2 <= cycles_auto,
            "most of this workload is skippable: {barriers_auto} barriers \
             over {cycles_auto} cycles"
        );
    }

    /// A component that never acts on its own: only a message (which none
    /// arrives) could wake it, so only the deadline bounds the horizon.
    struct Dormant;
    impl Component for Dormant {
        fn name(&self) -> &str {
            "dormant"
        }
        fn step(&mut self, _ctx: &mut Ctx<'_>) {}
        fn is_idle(&self) -> bool {
            false // keeps `run` from declaring quiescence
        }
        fn quiescent_for(&self, _now: u64) -> u64 {
            u64::MAX
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn lookahead_jumps_straight_to_the_deadline() {
        let mut soc = Soc::new(SocConfig::default());
        soc.add_component(TileCoord::new(0, 0), Box::new(Dormant));
        let out = soc.run(100_000);
        assert!(!out.quiescent);
        assert_eq!(out.cycle, 100_000, "budget exhausted exactly");
        assert!(
            soc.kernel_counter("kernel.barrier_activations") < 16,
            "a dormant SoC must not step per cycle"
        );
        assert!(soc.kernel_counter("kernel.ff_cycles") > 99_000);
    }
}
