//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes *when* and *what* to perturb: explicit
//! [`FaultEvent`]s pinned to cycles, plus an optional splitmix64-seeded
//! [`RandomFaults`] schedule resolved deterministically by
//! [`FaultPlan::schedule`]. The same seed and configuration always yield
//! the same schedule, so chaos runs are exactly reproducible.
//!
//! Four fault classes are modelled:
//!
//! * **Accelerator stalls** ([`FaultKind::AccelStall`]) — the accelerator's
//!   valid/ready interface is held low for N cycles (or [`FOREVER`]); the
//!   engine's endpoints observe this through the shared [`FaultState`].
//! * **NoC latency spikes** ([`FaultKind::LatencySpike`]) — every message
//!   injected during the window takes `factor`× its modelled latency
//!   (congestion, thermal throttling, a misbehaving neighbour).
//! * **Page-fault storms** ([`FaultKind::PageFaultStorm`]) — lazily-mapped
//!   pages are forcibly evicted mid-burst through a harness-provided
//!   [`StormHook`] (the OS layer owns the page tables; the sim crate does
//!   not), followed by an engine TLB flush so the evictions are observed.
//! * **Corrupted descriptor writes** ([`FaultKind::CorruptDescriptor`]) —
//!   garbage MMIO writes land in the engine's configuration registers
//!   while it is enabled, exercising the sticky `ERROR_STATUS` path.
//!
//! The [`FaultInjector`] component owns the resolved schedule and applies
//! each event on its due cycle; injections are counted in the stats
//! registry and emitted as trace instants so Perfetto shows each fault
//! next to the engine's recovery spans.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::component::{Component, Ctx, Observability};
use crate::mem::MemAccess;
use crate::msg::Msg;
use crate::stats::Counter;
use crate::trace::Trace;

/// Stall duration meaning "until the end of the run" (never self-clears).
pub const FOREVER: u64 = u64::MAX;

/// Largest cycle a fault spec may name. Far beyond any run's cycle budget
/// (the slowest 8192-element MMIO run stays under ~10^8 cycles), so a
/// bigger value is a typo, not a plan — rejected at parse time instead of
/// silently never firing.
pub const MAX_FAULT_CYCLE: u64 = 1 << 40;

/// Largest engine index a `kill@C:E` spec may target. [`FaultState`]
/// tracks fail-stops in a 64-bit mask, so indices past 63 would alias a
/// lower engine — rejected at parse time.
pub const MAX_ENGINE_ID: u64 = 63;

/// A structured parse/validation error for the `--faults` grammar and the
/// fleet-spec fault sections. Every variant names the offending token, so
/// tooling can point at the exact entry instead of echoing a prose blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// An entry had no `@` separator (`kind@cycle` expected).
    MissingAt {
        /// The malformed entry.
        entry: String,
    },
    /// A field that must be a `u64` (cycle, duration, factor, …) was not.
    NotANumber {
        /// The offending token.
        token: String,
    },
    /// The fault kind before the `@` is not in the grammar.
    UnknownKind {
        /// The malformed entry.
        entry: String,
    },
    /// A known kind received the wrong number of `:`-separated arguments.
    BadArity {
        /// The malformed entry.
        entry: String,
        /// The expected shape, e.g. `stall@C:D`.
        expected: &'static str,
    },
    /// A `random:` entry held a token that is not `key=value`.
    ExpectedKeyValue {
        /// The offending token.
        token: String,
    },
    /// A `random:` entry named an unknown key.
    UnknownRandomKey {
        /// The offending key.
        key: String,
    },
    /// A `random:` window was empty (`to <= from`).
    EmptyWindow {
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive).
        to: u64,
    },
    /// A `kill@C:E` engine index past [`MAX_ENGINE_ID`] — it would alias
    /// a lower engine in the 64-bit kill mask.
    EngineOutOfRange {
        /// The requested engine index.
        engine: u64,
    },
    /// A cycle (or random-window bound) past [`MAX_FAULT_CYCLE`].
    CycleOutOfRange {
        /// The requested cycle.
        cycle: u64,
    },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::MissingAt { entry } => {
                write!(f, "fault spec: expected kind@cycle in {entry:?}")
            }
            FaultSpecError::NotANumber { token } => {
                write!(f, "fault spec: {token:?} is not a number")
            }
            FaultSpecError::UnknownKind { entry } => write!(
                f,
                "fault spec: unknown kind in {entry:?} (see `stall@C:D`, \
                 `spike@C:D:F`, `storm@C:P`, `corrupt@C`, `kill@C[:E]`, \
                 `maple-stall@C:D`, `maple-kill@C`, `random:...`)"
            ),
            FaultSpecError::BadArity { entry, expected } => {
                write!(f, "fault spec: bad entry {entry:?} (expected {expected})")
            }
            FaultSpecError::ExpectedKeyValue { token } => {
                write!(f, "fault spec: expected key=value in {token:?}")
            }
            FaultSpecError::UnknownRandomKey { key } => {
                write!(f, "fault spec: unknown random key {key:?}")
            }
            FaultSpecError::EmptyWindow { from, to } => {
                write!(f, "fault spec: empty window {from}..{to}")
            }
            FaultSpecError::EngineOutOfRange { engine } => write!(
                f,
                "fault spec: engine {engine} out of range (kill mask holds \
                 engines 0..={MAX_ENGINE_ID})"
            ),
            FaultSpecError::CycleOutOfRange { cycle } => write!(
                f,
                "fault spec: cycle {cycle} out of range (max {MAX_FAULT_CYCLE})"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// The splitmix64 step: a tiny, high-quality, seedable PRNG used for every
/// randomised schedule in the repo (same generator as the benches).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fault class with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hold the accelerator's valid/ready interface low for `cycles`
    /// (use [`FOREVER`] for a wedged accelerator).
    AccelStall {
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// Multiply every NoC message latency by `factor` for `cycles`.
    LatencySpike {
        /// Window length in cycles.
        cycles: u64,
        /// Multiplicative latency factor (≥ 1).
        factor: u64,
    },
    /// Forcibly evict up to `pages` lazily-mapped pages and flush the
    /// engine TLB, provoking page-fault recovery mid-burst.
    PageFaultStorm {
        /// Pages to evict.
        pages: u64,
    },
    /// Write garbage into the engine's queue-descriptor registers while it
    /// is enabled.
    CorruptDescriptor,
    /// Fail-stop: permanently wedge engine `engine`'s datapath (the
    /// dead-man's handle trips; the register file and watchdog survive so
    /// the fault is detectable and the engine can be fenced). Only ever
    /// injected explicitly — never drawn by the random schedule, so
    /// existing seeded plans are unchanged.
    KillEngine {
        /// Index of the engine to kill (the `i` of `SimSystem::engine(i)`).
        engine: u64,
    },
    /// Hold the MAPLE unit's accelerator and DMA datapath for `cycles`
    /// (use [`FOREVER`] for a wedge). Explicit-only, like `KillEngine`.
    MapleStall {
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// Fail-stop the MAPLE unit: held MMIO requests complete with the
    /// error sentinel instead of hanging the core. Explicit-only.
    KillMaple,
}

impl FaultKind {
    /// Short label used for trace events and counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AccelStall { .. } => "stall",
            FaultKind::LatencySpike { .. } => "spike",
            FaultKind::PageFaultStorm { .. } => "storm",
            FaultKind::CorruptDescriptor => "corrupt",
            FaultKind::KillEngine { .. } => "kill",
            FaultKind::MapleStall { .. } => "maple-stall",
            FaultKind::KillMaple => "maple-kill",
        }
    }
}

/// A fault pinned to a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault fires (applied on the first step at or
    /// after this cycle).
    pub at_cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded random schedule: `count` faults drawn uniformly over
/// `[from, to)` cycles, classes and parameters drawn from splitmix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFaults {
    /// PRNG seed; the whole schedule is a pure function of this.
    pub seed: u64,
    /// Number of faults to generate.
    pub count: u64,
    /// First cycle of the injection window (inclusive).
    pub from: u64,
    /// Last cycle of the injection window (exclusive).
    pub to: u64,
}

impl Default for RandomFaults {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            count: 8,
            from: 0,
            to: 1_000_000,
        }
    }
}

/// A complete fault-injection plan: explicit events plus an optional
/// seeded random schedule. Lives in [`crate::config::SocConfig`]; the
/// default plan is empty (no faults).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Explicit, cycle-pinned events.
    pub events: Vec<FaultEvent>,
    /// Optional seeded random schedule, merged in by
    /// [`FaultPlan::schedule`].
    pub random: Option<RandomFaults>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.random.is_none()
    }

    /// Builder-style: adds one explicit event.
    pub fn at(mut self, at_cycle: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_cycle, kind });
        self
    }

    /// Builder-style: sets the random schedule.
    pub fn with_random(mut self, random: RandomFaults) -> Self {
        self.random = Some(random);
        self
    }

    /// Resolves the plan into a concrete schedule, sorted by cycle:
    /// explicit events plus the deterministically generated random ones.
    /// Calling this twice on equal plans yields identical schedules.
    pub fn schedule(&self) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        if let Some(r) = self.random {
            let span = r.to.saturating_sub(r.from).max(1);
            let mut s = r.seed;
            for _ in 0..r.count {
                let at_cycle = r.from + splitmix64(&mut s) % span;
                let class = splitmix64(&mut s) % 4;
                let p = splitmix64(&mut s);
                let kind = match class {
                    0 => FaultKind::AccelStall {
                        cycles: 200 + p % 2000,
                    },
                    1 => FaultKind::LatencySpike {
                        cycles: 200 + p % 2000,
                        factor: 2 + p % 6,
                    },
                    2 => FaultKind::PageFaultStorm { pages: 1 + p % 4 },
                    _ => FaultKind::CorruptDescriptor,
                };
                out.push(FaultEvent { at_cycle, kind });
            }
        }
        // Stable sort: same-cycle events keep their generation order.
        out.sort_by_key(|e| e.at_cycle);
        out
    }

    /// Parses a `socrun --faults` spec: semicolon-separated entries of
    ///
    /// * `stall@CYCLE:DUR` — `DUR` in cycles, or `forever`;
    /// * `spike@CYCLE:DUR:FACTOR`;
    /// * `storm@CYCLE:PAGES`;
    /// * `corrupt@CYCLE`;
    /// * `kill@CYCLE[:ENGINE]` — fail-stop engine `ENGINE` (default 0);
    /// * `maple-stall@CYCLE:DUR`;
    /// * `maple-kill@CYCLE`;
    /// * `random:seed=S,count=N,from=A,to=B` — all keys optional
    ///   (defaults: seed `0x5eed`, count 8, window `[0, 1000000)`).
    ///
    /// # Errors
    /// Returns a structured [`FaultSpecError`] naming the offending token:
    /// malformed entries, non-numeric fields, engine ids past
    /// [`MAX_ENGINE_ID`] and cycles past [`MAX_FAULT_CYCLE`] are all
    /// rejected here rather than misbehaving at run time.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(body) =
                entry
                    .strip_prefix("random:")
                    .or(if entry == "random" { Some("") } else { None })
            {
                let mut r = RandomFaults::default();
                for kv in body.split(',').map(str::trim).filter(|e| !e.is_empty()) {
                    let (key, value) =
                        kv.split_once('=')
                            .ok_or_else(|| FaultSpecError::ExpectedKeyValue {
                                token: kv.to_string(),
                            })?;
                    let n = parse_u64(value)?;
                    match key {
                        "seed" => r.seed = n,
                        "count" => r.count = n,
                        "from" => r.from = n,
                        "to" => r.to = n,
                        other => {
                            return Err(FaultSpecError::UnknownRandomKey {
                                key: other.to_string(),
                            })
                        }
                    }
                }
                if r.to <= r.from {
                    return Err(FaultSpecError::EmptyWindow {
                        from: r.from,
                        to: r.to,
                    });
                }
                if r.to > MAX_FAULT_CYCLE {
                    return Err(FaultSpecError::CycleOutOfRange { cycle: r.to });
                }
                plan.random = Some(r);
                continue;
            }
            let (name, rest) = entry
                .split_once('@')
                .ok_or_else(|| FaultSpecError::MissingAt {
                    entry: entry.to_string(),
                })?;
            let mut parts = rest.split(':');
            let at_cycle = parse_u64(parts.next().unwrap_or(""))?;
            if at_cycle > MAX_FAULT_CYCLE {
                return Err(FaultSpecError::CycleOutOfRange { cycle: at_cycle });
            }
            let args: Vec<&str> = parts.collect();
            let arity = |expected| FaultSpecError::BadArity {
                entry: entry.to_string(),
                expected,
            };
            let kind = match (name, args.as_slice()) {
                ("stall", [d]) => FaultKind::AccelStall {
                    cycles: parse_duration(d)?,
                },
                ("stall", _) => return Err(arity("stall@C:D")),
                ("spike", [d, f]) => FaultKind::LatencySpike {
                    cycles: parse_u64(d)?,
                    factor: parse_u64(f)?.max(1),
                },
                ("spike", _) => return Err(arity("spike@C:D:F")),
                ("storm", [p]) => FaultKind::PageFaultStorm {
                    pages: parse_u64(p)?.max(1),
                },
                ("storm", _) => return Err(arity("storm@C:P")),
                ("corrupt", []) => FaultKind::CorruptDescriptor,
                ("corrupt", _) => return Err(arity("corrupt@C")),
                ("kill", []) => FaultKind::KillEngine { engine: 0 },
                ("kill", [e]) => {
                    let engine = parse_u64(e)?;
                    if engine > MAX_ENGINE_ID {
                        return Err(FaultSpecError::EngineOutOfRange { engine });
                    }
                    FaultKind::KillEngine { engine }
                }
                ("kill", _) => return Err(arity("kill@C[:E]")),
                ("maple-stall", [d]) => FaultKind::MapleStall {
                    cycles: parse_duration(d)?,
                },
                ("maple-stall", _) => return Err(arity("maple-stall@C:D")),
                ("maple-kill", []) => FaultKind::KillMaple,
                ("maple-kill", _) => return Err(arity("maple-kill@C")),
                _ => {
                    return Err(FaultSpecError::UnknownKind {
                        entry: entry.to_string(),
                    })
                }
            };
            plan.events.push(FaultEvent { at_cycle, kind });
        }
        Ok(plan)
    }
}

fn parse_u64(s: &str) -> Result<u64, FaultSpecError> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| FaultSpecError::NotANumber {
            token: s.to_string(),
        })
}

fn parse_duration(s: &str) -> Result<u64, FaultSpecError> {
    if s.trim() == "forever" {
        Ok(FOREVER)
    } else {
        parse_u64(s)
    }
}

/// A fault-switch flip staged during a step and applied at the cycle
/// barrier, so every component observes it from the next cycle regardless
/// of step order or thread placement.
#[derive(Debug, Clone, Copy)]
enum FaultOp {
    StallAccel { until: u64 },
    LatencySpike { until: u64, factor: u64 },
    KillEngine { engine: u64 },
    StallMaple { until: u64 },
    KillMaple,
}

/// Live fault switches shared between the injector, the NoC and the
/// engine. Cloning shares the cells (like [`Counter`]); the default state
/// injects nothing.
///
/// The [`FaultInjector`] *stages* its flips (`stage_*`) and the SoC
/// applies them at the cycle barrier (`FaultState::commit_staged`);
/// harness code running between cycles uses the immediate setters.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    /// Flips staged by the injector this cycle, applied at the barrier.
    pending: Arc<Mutex<Vec<FaultOp>>>,
    /// Accelerator valid/ready held low while `cycle < stall_until`.
    stall_until: Arc<AtomicU64>,
    /// NoC latency multiplied while `cycle < spike_until`.
    spike_until: Arc<AtomicU64>,
    spike_factor: Arc<AtomicU64>,
    /// Bitmask of fail-stopped engines (bit `i` = engine `i` is dead).
    kill_mask: Arc<AtomicU64>,
    /// MAPLE datapath held while `cycle < maple_stall_until`.
    maple_stall_until: Arc<AtomicU64>,
    /// Non-zero once the MAPLE unit is fail-stopped.
    maple_dead: Arc<AtomicU64>,
}

impl FaultState {
    /// Holds the accelerator interface low until `until` ([`FOREVER`] for
    /// a permanently wedged accelerator).
    pub fn stall_accel(&self, until: u64) {
        self.stall_until.store(until, Ordering::Relaxed);
    }

    /// Clears an accelerator stall.
    pub fn clear_accel_stall(&self) {
        self.stall_until.store(0, Ordering::Relaxed);
    }

    /// True while the accelerator interface is held low.
    pub fn accel_stalled(&self, cycle: u64) -> bool {
        cycle < self.stall_until.load(Ordering::Relaxed)
    }

    /// Opens a latency-spike window: messages injected before `until`
    /// take `factor`× their modelled latency.
    pub fn set_latency_spike(&self, until: u64, factor: u64) {
        self.spike_factor.store(factor.max(1), Ordering::Relaxed);
        self.spike_until.store(until, Ordering::Relaxed);
    }

    /// The multiplicative NoC latency factor in effect at `cycle` (1 when
    /// no spike window is open).
    pub fn latency_factor(&self, cycle: u64) -> u64 {
        if cycle < self.spike_until.load(Ordering::Relaxed) {
            self.spike_factor.load(Ordering::Relaxed).max(1)
        } else {
            1
        }
    }

    /// Permanently fail-stops engine `engine` (no un-kill: fail-stop is
    /// by definition terminal; recovery is migration, not revival).
    pub fn kill_engine(&self, engine: u64) {
        self.kill_mask
            .fetch_or(1u64 << (engine & 63), Ordering::Relaxed);
    }

    /// True once engine `engine` has been fail-stopped.
    pub fn engine_killed(&self, engine: u64) -> bool {
        self.kill_mask.load(Ordering::Relaxed) & (1u64 << (engine & 63)) != 0
    }

    /// Holds the MAPLE datapath until `until`.
    pub fn stall_maple(&self, until: u64) {
        self.maple_stall_until.store(until, Ordering::Relaxed);
    }

    /// True while the MAPLE datapath is held.
    pub fn maple_stalled(&self, cycle: u64) -> bool {
        cycle < self.maple_stall_until.load(Ordering::Relaxed)
    }

    /// Permanently fail-stops the MAPLE unit.
    pub fn kill_maple(&self) {
        self.maple_dead.store(1, Ordering::Relaxed);
    }

    /// True once the MAPLE unit has been fail-stopped.
    pub fn maple_killed(&self) -> bool {
        self.maple_dead.load(Ordering::Relaxed) != 0
    }

    /// The next cycle strictly after `cycle` at which an open fault
    /// window closes (its `until` edge), if any. Window *opens* are
    /// always driven by the injector's schedule (or harness code between
    /// cycles), so together with the injector's own lookahead hint this
    /// bounds every cycle at which `accel_stalled`/`latency_factor`/
    /// `maple_stalled` can change value. A [`FOREVER`] window has no edge
    /// and imposes no bound: nothing ever changes inside it.
    pub fn next_window_edge(&self, cycle: u64) -> Option<u64> {
        let mut edge = u64::MAX;
        for until in [
            self.stall_until.load(Ordering::Relaxed),
            self.spike_until.load(Ordering::Relaxed),
            self.maple_stall_until.load(Ordering::Relaxed),
        ] {
            if until > cycle {
                edge = edge.min(until);
            }
        }
        (edge != u64::MAX).then_some(edge)
    }

    /// Stages an accelerator stall for the cycle barrier.
    pub(crate) fn stage_stall_accel(&self, until: u64) {
        self.stage(FaultOp::StallAccel { until });
    }

    /// Stages a latency-spike window for the cycle barrier.
    pub(crate) fn stage_latency_spike(&self, until: u64, factor: u64) {
        self.stage(FaultOp::LatencySpike { until, factor });
    }

    /// Stages an engine fail-stop for the cycle barrier.
    pub(crate) fn stage_kill_engine(&self, engine: u64) {
        self.stage(FaultOp::KillEngine { engine });
    }

    /// Stages a MAPLE stall for the cycle barrier.
    pub(crate) fn stage_stall_maple(&self, until: u64) {
        self.stage(FaultOp::StallMaple { until });
    }

    /// Stages a MAPLE fail-stop for the cycle barrier.
    pub(crate) fn stage_kill_maple(&self) {
        self.stage(FaultOp::KillMaple);
    }

    fn stage(&self, op: FaultOp) {
        self.pending.lock().unwrap().push(op);
    }

    /// Applies every staged flip, in staging order. Called by the SoC at
    /// the cycle barrier.
    pub(crate) fn commit_staged(&self) {
        let mut pending = self.pending.lock().unwrap();
        if pending.is_empty() {
            return;
        }
        for op in pending.drain(..) {
            match op {
                FaultOp::StallAccel { until } => self.stall_accel(until),
                FaultOp::LatencySpike { until, factor } => self.set_latency_spike(until, factor),
                FaultOp::KillEngine { engine } => self.kill_engine(engine),
                FaultOp::StallMaple { until } => self.stall_maple(until),
                FaultOp::KillMaple => self.kill_maple(),
            }
        }
    }
}

/// Harness-provided page evictor for [`FaultKind::PageFaultStorm`]: takes
/// (staged) functional memory and the requested page count, returns pages
/// actually evicted. The OS layer owns page tables, so the hook is
/// injected from above rather than implemented here. It runs during the
/// injector's step, so its page-table writes commit at the cycle barrier
/// like any other component write.
pub type StormHook = Box<dyn FnMut(&mut dyn MemAccess, u64) -> u64 + Send>;

/// The fault-injection component: owns the resolved schedule and applies
/// each event on its due cycle.
pub struct FaultInjector {
    schedule: VecDeque<FaultEvent>,
    state: FaultState,
    /// Engine TLB-flush register (storms flush so evictions are observed).
    tlb_flush_pa: Option<u64>,
    /// MMIO (pa, garbage) writes performed on [`FaultKind::CorruptDescriptor`].
    corrupt_writes: Vec<(u64, u64)>,
    storm_hook: Option<StormHook>,
    stalls: Counter,
    spikes: Counter,
    storms: Counter,
    corruptions: Counter,
    evicted_pages: Counter,
    kills: Counter,
    trace: Option<Trace>,
    tid: u64,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("pending", &self.schedule.len())
            .field("stalls", &self.stalls.get())
            .field("spikes", &self.spikes.get())
            .field("storms", &self.storms.get())
            .field("corruptions", &self.corruptions.get())
            .finish()
    }
}

impl FaultInjector {
    /// Creates an injector for `plan`, driving the shared `state` (obtain
    /// it from [`crate::soc::Soc::fault_state`] so the NoC and engine see
    /// the same switches).
    pub fn new(plan: &FaultPlan, state: FaultState) -> Self {
        Self {
            schedule: plan.schedule().into(),
            state,
            tlb_flush_pa: None,
            corrupt_writes: Vec::new(),
            storm_hook: None,
            stalls: Counter::new(),
            spikes: Counter::new(),
            storms: Counter::new(),
            corruptions: Counter::new(),
            evicted_pages: Counter::new(),
            kills: Counter::new(),
            trace: None,
            tid: 0,
        }
    }

    /// Sets the engine's TLB-flush register address; page-fault storms
    /// write it after evicting so stale translations are dropped.
    pub fn set_tlb_flush_pa(&mut self, pa: u64) {
        self.tlb_flush_pa = Some(pa);
    }

    /// Sets the garbage MMIO writes performed by a corrupt-descriptor
    /// fault (typically the engine's `IN_*`/`OUT_*` registers).
    pub fn set_corrupt_writes(&mut self, writes: Vec<(u64, u64)>) {
        self.corrupt_writes = writes;
    }

    /// Installs the page evictor used by page-fault storms.
    pub fn set_storm_hook(&mut self, hook: StormHook) {
        self.storm_hook = Some(hook);
    }

    /// Events not yet applied.
    pub fn pending(&self) -> usize {
        self.schedule.len()
    }

    fn emit(&self, cycle: u64, kind: &FaultKind, args: Vec<(&'static str, String)>) {
        if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            trace.instant(
                self.tid,
                "fault",
                format!("fault:{}", kind.label()),
                cycle,
                args,
            );
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_>, ev: FaultEvent) {
        match ev.kind {
            FaultKind::AccelStall { cycles } => {
                let until = if cycles == FOREVER {
                    FOREVER
                } else {
                    ctx.cycle.saturating_add(cycles)
                };
                self.state.stage_stall_accel(until);
                self.stalls.inc();
                self.emit(ctx.cycle, &ev.kind, vec![("until", format!("{until}"))]);
            }
            FaultKind::LatencySpike { cycles, factor } => {
                self.state
                    .stage_latency_spike(ctx.cycle.saturating_add(cycles), factor);
                self.spikes.inc();
                self.emit(ctx.cycle, &ev.kind, vec![("factor", format!("{factor}"))]);
            }
            FaultKind::PageFaultStorm { pages } => {
                let evicted = match self.storm_hook.as_mut() {
                    Some(hook) => hook(&mut ctx.mem, pages),
                    None => 0,
                };
                self.evicted_pages.add(evicted);
                if let Some(pa) = self.tlb_flush_pa {
                    if let Some(dst) = ctx.mmio_target(pa) {
                        ctx.send(
                            dst,
                            Msg::MmioWrite {
                                pa,
                                value: 1,
                                tag: 0xFA17,
                            },
                        );
                    }
                }
                self.storms.inc();
                self.emit(ctx.cycle, &ev.kind, vec![("evicted", format!("{evicted}"))]);
            }
            FaultKind::CorruptDescriptor => {
                for (pa, value) in self.corrupt_writes.clone() {
                    if let Some(dst) = ctx.mmio_target(pa) {
                        ctx.send(
                            dst,
                            Msg::MmioWrite {
                                pa,
                                value,
                                tag: 0xFA17,
                            },
                        );
                    }
                }
                self.corruptions.inc();
                self.emit(ctx.cycle, &ev.kind, vec![]);
            }
            FaultKind::KillEngine { engine } => {
                self.state.stage_kill_engine(engine);
                self.kills.inc();
                self.emit(ctx.cycle, &ev.kind, vec![("engine", format!("{engine}"))]);
            }
            FaultKind::MapleStall { cycles } => {
                let until = if cycles == FOREVER {
                    FOREVER
                } else {
                    ctx.cycle.saturating_add(cycles)
                };
                self.state.stage_stall_maple(until);
                self.stalls.inc();
                self.emit(ctx.cycle, &ev.kind, vec![("until", format!("{until}"))]);
            }
            FaultKind::KillMaple => {
                self.state.stage_kill_maple();
                self.kills.inc();
                self.emit(ctx.cycle, &ev.kind, vec![]);
            }
        }
    }
}

impl Component for FaultInjector {
    fn name(&self) -> &str {
        "faultinject"
    }

    fn attach(&mut self, obs: &Observability) {
        obs.adopt_counter("stalls", &self.stalls);
        obs.adopt_counter("spikes", &self.spikes);
        obs.adopt_counter("storms", &self.storms);
        obs.adopt_counter("corruptions", &self.corruptions);
        obs.adopt_counter("evicted_pages", &self.evicted_pages);
        obs.adopt_counter("kills", &self.kills);
        self.trace = Some(obs.trace.clone());
        self.tid = obs.tid;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(env) = ctx.recv() {
            match env.msg {
                // Acks for the injector's own MMIO pokes.
                Msg::MmioWriteResp { .. } | Msg::MmioReadResp { .. } => {}
                ref other => panic!("fault injector received unexpected message {other:?}"),
            }
        }
        while self
            .schedule
            .front()
            .is_some_and(|e| e.at_cycle <= ctx.cycle)
        {
            let ev = self.schedule.pop_front().expect("peeked");
            self.apply(ctx, ev);
        }
    }

    fn is_idle(&self) -> bool {
        self.schedule.is_empty()
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        // The schedule is sorted (see `schedule_is_deterministic_and_sorted`),
        // so the head event bounds the injector's next action. Everything
        // else the injector does is a reaction to inbound acks, which the
        // SoC's inbox check covers. No per-cycle bookkeeping, so the
        // default no-op `fast_forward` is exact.
        match self.schedule.front() {
            Some(e) => e.at_cycle.saturating_sub(now).max(1),
            None => u64::MAX,
        }
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("stalls".into(), self.stalls.get()),
            ("spikes".into(), self.spikes.get()),
            ("storms".into(), self.storms.get()),
            ("corruptions".into(), self.corruptions.get()),
            ("evicted_pages".into(), self.evicted_pages.get()),
            ("kills".into(), self.kills.get()),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::default().schedule().is_empty());
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let plan = FaultPlan::default()
            .at(500, FaultKind::CorruptDescriptor)
            .with_random(RandomFaults {
                seed: 42,
                count: 16,
                from: 100,
                to: 10_000,
            });
        let a = plan.schedule();
        let b = plan.clone().schedule();
        assert_eq!(a, b, "same plan, same schedule");
        assert_eq!(a.len(), 17);
        assert!(
            a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle),
            "sorted"
        );
        assert!(a.iter().all(|e| e.at_cycle < 10_000));
        let c = FaultPlan::default()
            .with_random(RandomFaults {
                seed: 43,
                count: 16,
                from: 100,
                to: 10_000,
            })
            .schedule();
        assert_ne!(
            a.iter()
                .filter(|e| e.at_cycle != 500)
                .copied()
                .collect::<Vec<_>>(),
            c,
            "different seed, different schedule"
        );
    }

    #[test]
    fn parse_explicit_entries() {
        let plan = FaultPlan::parse("stall@100:forever; spike@200:50:4; storm@300:2; corrupt@400")
            .expect("valid spec");
        assert_eq!(
            plan.events,
            vec![
                FaultEvent {
                    at_cycle: 100,
                    kind: FaultKind::AccelStall { cycles: FOREVER }
                },
                FaultEvent {
                    at_cycle: 200,
                    kind: FaultKind::LatencySpike {
                        cycles: 50,
                        factor: 4
                    }
                },
                FaultEvent {
                    at_cycle: 300,
                    kind: FaultKind::PageFaultStorm { pages: 2 }
                },
                FaultEvent {
                    at_cycle: 400,
                    kind: FaultKind::CorruptDescriptor
                },
            ]
        );
        assert!(plan.random.is_none());
    }

    #[test]
    fn parse_random_with_defaults() {
        let plan = FaultPlan::parse("random:seed=7,count=3").expect("valid spec");
        let r = plan.random.expect("random schedule");
        assert_eq!((r.seed, r.count), (7, 3));
        assert_eq!(
            (r.from, r.to),
            (RandomFaults::default().from, RandomFaults::default().to)
        );
        assert_eq!(plan.schedule().len(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("stall@oops:1").is_err());
        assert!(FaultPlan::parse("flip@100:1").is_err());
        assert!(
            FaultPlan::parse("spike@100:50").is_err(),
            "spike needs a factor"
        );
        assert!(FaultPlan::parse("random:to=0").is_err(), "empty window");
    }

    #[test]
    fn parse_errors_are_structured() {
        assert_eq!(
            FaultPlan::parse("stall@oops:1"),
            Err(FaultSpecError::NotANumber {
                token: "oops".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("flip@100:1"),
            Err(FaultSpecError::UnknownKind {
                entry: "flip@100:1".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("spike@100:50"),
            Err(FaultSpecError::BadArity {
                entry: "spike@100:50".into(),
                expected: "spike@C:D:F"
            })
        );
        assert_eq!(
            FaultPlan::parse("corrupt"),
            Err(FaultSpecError::MissingAt {
                entry: "corrupt".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("random:to=0"),
            Err(FaultSpecError::EmptyWindow { from: 0, to: 0 })
        );
        assert_eq!(
            FaultPlan::parse("random:speed=3"),
            Err(FaultSpecError::UnknownRandomKey {
                key: "speed".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("random:seed"),
            Err(FaultSpecError::ExpectedKeyValue {
                token: "seed".into()
            })
        );
    }

    #[test]
    fn parse_rejects_out_of_range_targets() {
        // A kill past the 64-bit mask would alias engine (e & 63): the
        // classic silent-wraparound bug, now a load-time error.
        assert_eq!(
            FaultPlan::parse("kill@100:64"),
            Err(FaultSpecError::EngineOutOfRange { engine: 64 })
        );
        assert!(FaultPlan::parse("kill@100:63").is_ok());
        // A cycle past any plausible budget never fires; reject it.
        let too_late = MAX_FAULT_CYCLE + 1;
        assert_eq!(
            FaultPlan::parse(&format!("corrupt@{too_late}")),
            Err(FaultSpecError::CycleOutOfRange { cycle: too_late })
        );
        assert_eq!(
            FaultPlan::parse(&format!("random:to={too_late}")),
            Err(FaultSpecError::CycleOutOfRange { cycle: too_late })
        );
        assert!(FaultPlan::parse(&format!("corrupt@{MAX_FAULT_CYCLE}")).is_ok());
    }

    #[test]
    fn parse_fail_stop_entries() {
        let plan =
            FaultPlan::parse("kill@5000:1; kill@9000; maple-stall@100:forever; maple-kill@200")
                .expect("valid spec");
        assert_eq!(
            plan.events,
            vec![
                FaultEvent {
                    at_cycle: 5_000,
                    kind: FaultKind::KillEngine { engine: 1 }
                },
                FaultEvent {
                    at_cycle: 9_000,
                    kind: FaultKind::KillEngine { engine: 0 }
                },
                FaultEvent {
                    at_cycle: 100,
                    kind: FaultKind::MapleStall { cycles: FOREVER }
                },
                FaultEvent {
                    at_cycle: 200,
                    kind: FaultKind::KillMaple
                },
            ]
        );
        assert!(FaultPlan::parse("kill@x").is_err());
    }

    #[test]
    fn random_schedule_never_draws_fail_stop() {
        // Kills are explicit-only: a seeded schedule must keep drawing
        // from the four recoverable classes so existing seeds reproduce.
        let plan = FaultPlan::default().with_random(RandomFaults {
            seed: 99,
            count: 64,
            from: 0,
            to: 100_000,
        });
        for ev in plan.schedule() {
            assert!(
                !matches!(
                    ev.kind,
                    FaultKind::KillEngine { .. }
                        | FaultKind::KillMaple
                        | FaultKind::MapleStall { .. }
                ),
                "random schedule drew a fail-stop fault: {ev:?}"
            );
        }
    }

    #[test]
    fn kill_and_maple_state() {
        let fs = FaultState::default();
        assert!(!fs.engine_killed(0) && !fs.engine_killed(1));
        fs.kill_engine(1);
        assert!(fs.engine_killed(1), "engine 1 dead");
        assert!(!fs.engine_killed(0), "engine 0 untouched");
        let clone = fs.clone();
        assert!(clone.engine_killed(1), "kill mask shared through clones");

        assert!(!fs.maple_stalled(0));
        fs.stall_maple(50);
        assert!(fs.maple_stalled(49));
        assert!(!fs.maple_stalled(50));
        assert!(!fs.maple_killed());
        fs.kill_maple();
        assert!(clone.maple_killed());
    }

    #[test]
    fn fault_state_windows() {
        let fs = FaultState::default();
        assert!(!fs.accel_stalled(0));
        fs.stall_accel(100);
        assert!(fs.accel_stalled(99));
        assert!(!fs.accel_stalled(100));
        fs.stall_accel(FOREVER);
        assert!(fs.accel_stalled(u64::MAX - 1));
        fs.clear_accel_stall();
        assert!(!fs.accel_stalled(0));

        assert_eq!(fs.latency_factor(0), 1);
        fs.set_latency_spike(50, 8);
        assert_eq!(fs.latency_factor(49), 8);
        assert_eq!(fs.latency_factor(50), 1);
    }

    #[test]
    fn shared_state_is_visible_through_clones() {
        let a = FaultState::default();
        let b = a.clone();
        a.stall_accel(10);
        assert!(b.accel_stalled(5), "clones share the cells");
    }

    #[test]
    fn staged_flips_apply_only_at_commit() {
        let fs = FaultState::default();
        fs.stage_stall_accel(100);
        fs.stage_kill_engine(2);
        fs.stage_latency_spike(50, 4);
        assert!(!fs.accel_stalled(0), "staged flips are not yet live");
        assert!(!fs.engine_killed(2));
        assert_eq!(fs.latency_factor(0), 1);
        fs.commit_staged();
        assert!(fs.accel_stalled(99));
        assert!(fs.engine_killed(2));
        assert_eq!(fs.latency_factor(49), 4);
        fs.commit_staged(); // empty commit is a no-op
        assert!(fs.engine_killed(2));
    }
}
