//! SoC configuration: cache geometries, timing constants, NoC parameters.
//!
//! Defaults follow the paper's evaluation platform (§5): OpenPiton's default
//! configuration of 8 KiB L1D + 8 KiB L1.5 private caches (modelled as one
//! private level), a 64 KiB 4-way shared L2, a 16-entry Cohort TLB, and
//! 64-bit endpoint interfaces, on a four-tile design.

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a geometry; `capacity_bytes` must be a multiple of
    /// `ways * LINE_BYTES`.
    ///
    /// # Panics
    /// Panics if the capacity does not divide evenly into sets.
    pub fn new(capacity_bytes: u64, ways: u32) -> Self {
        let line_per_way = capacity_bytes / u64::from(ways);
        assert!(
            line_per_way.is_multiple_of(crate::LINE_BYTES) && line_per_way > 0,
            "capacity {capacity_bytes} not divisible into {ways} ways of whole lines"
        );
        Self {
            capacity_bytes,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.ways) * crate::LINE_BYTES)
    }
}

/// Latency and bandwidth constants for the timing model.
///
/// These are the calibration knobs discussed in `DESIGN.md` §2 item 1: the
/// mechanisms are structural (who talks to whom, and when), while absolute
/// constants are calibrated so the reproduced figures have the paper's
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingConfig {
    /// Private cache hit latency (cycles).
    pub l1_hit: u64,
    /// L2 tag + data access latency at the directory (cycles).
    pub l2_hit: u64,
    /// DRAM fill latency on an L2 miss (cycles).
    pub dram: u64,
    /// NoC router+link latency per hop (cycles).
    pub noc_per_hop: u64,
    /// Fixed NoC injection/ejection overhead (cycles).
    pub noc_base: u64,
    /// Device-side processing latency for an MMIO access (cycles).
    pub mmio_device: u64,
    /// Store buffer depth of the in-order core.
    pub store_buffer: usize,
    /// Distinct lines the store buffer may acquire in parallel (MSHRs).
    pub sb_mshrs: usize,
    /// Cycles for a spin-loop iteration's non-load work (compare + branch).
    pub spin_alu: u64,
    /// Instructions retired per spin-loop iteration (load+compare+branch).
    pub spin_insts: u64,
    /// Write-coherency-manager turnaround: cycles the Cohort producer
    /// endpoint waits between a data-block write completing coherently and
    /// the write-index publication (ordering drain, §4.2.3).
    pub wcm_turnaround: u64,
    /// If true, the engine's consumer and producer endpoints share one
    /// memory transaction engine and their operations serialize (the
    /// Fig. 6 single-MTE organisation); if false the MTE accepts one
    /// operation per endpoint concurrently.
    pub mte_shared: bool,
    /// Kernel entry/exit cost charged when a modelled interrupt handler or
    /// syscall runs (cycles).
    pub trap_cost: u64,
    /// Instructions retired by a modelled trap (for IPC accounting).
    pub trap_insts: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            l1_hit: 2,
            l2_hit: 8,
            dram: 30,
            noc_per_hop: 5,
            noc_base: 4,
            mmio_device: 130,
            store_buffer: 8,
            sb_mshrs: 4,
            spin_alu: 4,
            spin_insts: 3,
            mte_shared: false,
            wcm_turnaround: 100,
            trap_cost: 260,
            trap_insts: 180,
        }
    }
}

/// Cycle-batching policy of the simulation kernel.
///
/// Under [`Lookahead::Auto`] the run loop computes, before each stepped
/// cycle, a conservative horizon K = min over the next NoC delivery, the
/// next fault-plan event/window edge, and every component's
/// [`crate::component::Component::quiescent_for`] hint; when K ≥ 2 it
/// jumps the cycle counter instead of stepping K−1 provable no-op cycles
/// (and, in parallel runs, pays no go/done barrier for them). Results are
/// bit-identical to [`Lookahead::Force1`] by construction — hints are
/// conservative lower bounds, and skipped per-cycle bookkeeping is
/// reconciled by `Component::fast_forward`.
///
/// One caveat: `Soc::run_until` predicates that key on the raw cycle
/// counter (rather than component/NoC state) may observe the cycle
/// *after* a jump and so fire later than under `Force1`. Such harness
/// code should pin `Force1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lookahead {
    /// Step every cycle (the pre-batching kernel). Baseline for the
    /// determinism suite and for cycle-predicate harnesses.
    Force1,
    /// Conservative-lookahead batching + idle fast-forward (default).
    #[default]
    Auto,
}

/// Top-level SoC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocConfig {
    /// Private (L1 + L1.5 combined) cache geometry per core.
    pub l1: CacheConfig,
    /// Shared, inclusive L2 geometry at the directory.
    pub l2: CacheConfig,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Cohort engines instantiated on the mesh (spare-inclusive): the
    /// pool a shard sweep may bind shards onto. Scenarios that manage
    /// their own engine list (the chain pipelines) ignore this.
    pub engines: usize,
    /// Entries in the Cohort engine / MAPLE MMU TLB (paper: 16).
    pub tlb_entries: usize,
    /// Lines held by the Cohort engine's memory transaction engine buffer.
    pub mte_lines: u64,
    /// Deterministic fault-injection plan (empty by default: no faults).
    pub faults: crate::faultinject::FaultPlan,
    /// Host threads the simulation kernel steps components across
    /// (default 1: sequential). Results are bit-identical at any thread
    /// count — the write-staging layer pins cross-component visibility to
    /// the cycle barrier (see `docs/architecture.md`, "Parallel kernel &
    /// determinism contract").
    pub threads: usize,
    /// Cycle-batching policy (default [`Lookahead::Auto`]).
    pub lookahead: Lookahead,
    /// Opt-in DRAM contention model (banks/channels, row buffers, bounded
    /// per-channel queues) plus directory MSHR limits and NoC ejection
    /// backpressure. `None` (the default) keeps the flat
    /// [`TimingConfig::dram`] fill latency and an unbounded directory, so
    /// every pre-existing baseline stays bit-identical.
    pub dram: Option<crate::dram::DramConfig>,
}

impl Default for SocConfig {
    fn default() -> Self {
        Self {
            // 8 KiB L1D + 8 KiB L1.5 modelled as one 16 KiB private level.
            l1: CacheConfig::new(16 * 1024, 4),
            l2: CacheConfig::new(64 * 1024, 4),
            timing: TimingConfig::default(),
            engines: 1,
            tlb_entries: 16,
            mte_lines: 8,
            faults: crate::faultinject::FaultPlan::default(),
            threads: 1,
            lookahead: Lookahead::default(),
            dram: None,
        }
    }
}

impl SocConfig {
    /// Convenience builder-style override of the L2 geometry.
    pub fn with_l2(mut self, l2: CacheConfig) -> Self {
        self.l2 = l2;
        self
    }

    /// Convenience builder-style override of the timing constants.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Convenience builder-style override of the engine-pool size.
    pub fn with_engines(mut self, n: usize) -> Self {
        self.engines = n;
        self
    }

    /// Convenience builder-style override of the TLB size.
    pub fn with_tlb_entries(mut self, n: usize) -> Self {
        self.tlb_entries = n;
        self
    }

    /// Convenience builder-style override of the fault-injection plan.
    pub fn with_faults(mut self, faults: crate::faultinject::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Convenience builder-style override of the simulation-kernel thread
    /// count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Convenience builder-style override of the cycle-batching policy.
    pub fn with_lookahead(mut self, lookahead: Lookahead) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Convenience builder-style enabling of the DRAM contention model.
    pub fn with_dram(mut self, dram: crate::dram::DramConfig) -> Self {
        self.dram = Some(dram);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let cfg = SocConfig::default();
        assert_eq!(cfg.l2.capacity_bytes, 64 * 1024);
        assert_eq!(cfg.l2.ways, 4);
        assert_eq!(cfg.tlb_entries, 16);
    }

    #[test]
    fn sets_computed_from_geometry() {
        let c = CacheConfig::new(64 * 1024, 4);
        assert_eq!(c.sets(), 64 * 1024 / (4 * 64));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_ragged_geometry() {
        let _ = CacheConfig::new(100, 3);
    }

    #[test]
    fn builder_overrides() {
        let cfg = SocConfig::default()
            .with_tlb_entries(4)
            .with_engines(4)
            .with_l2(CacheConfig::new(128 * 1024, 8));
        assert_eq!(cfg.tlb_entries, 4);
        assert_eq!(cfg.engines, 4);
        assert_eq!(cfg.l2.ways, 8);
    }
}
