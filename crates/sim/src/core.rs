//! An in-order core model in the spirit of Ariane (6-stage, single-issue).
//!
//! The core executes an abstract [`Program`]: cached loads/stores through a
//! [`CoherentPort`] private cache, a draining store buffer that gives
//! store-side memory-level parallelism within a line, blocking MMIO
//! accesses (the §2.1 semantics that make MMIO invocation slow), spin-wait
//! polling, release fences, and modelled interrupt handlers for the Cohort
//! page-fault path. It retires at most one instruction per cycle and
//! reports the counters the paper's IPC analysis (§6.2) needs.

use crate::component::{CompId, Component, Ctx, Observability};
use crate::config::SocConfig;
use crate::mem::MemAccess;
use crate::msg::Msg;
use crate::port::{CoherentPort, Outcome, PortEvent};
use crate::program::{Op, Program};
use crate::stats::Counter;
use crate::translate::{Identity, Translator};
use std::collections::{HashMap, VecDeque};

const LOAD_TOKEN: u64 = 1;
const SB_TOKEN: u64 = 2;
const SB_PREFETCH_TOKEN: u64 = 3;

/// What a modelled interrupt handler does after its entry cost.
pub enum HandlerAction {
    /// Write a constant to a device register (blocking MMIO).
    MmioWrite {
        /// Register physical address.
        pa: u64,
        /// Value written.
        value: u64,
    },
    /// Run arbitrary host logic against guest memory (e.g. map a page into
    /// the page tables), then perform a sequence of blocking MMIO writes
    /// `(pa, value)` in order. Receives the interrupt payload and the
    /// current cycle.
    Custom(CustomHandler),
}

/// Host logic run on interrupt: may touch guest memory, then request any
/// number of blocking MMIO writes `(pa, value)` issued strictly in order
/// (each waits for the previous response — the failover orchestrator's
/// rebind sequence relies on this ordering).
pub type CustomHandler = Box<dyn FnMut(&mut dyn MemAccess, u64, u64) -> Vec<(u64, u64)> + Send>;

/// Kernel page-fault path: maps the faulting page and returns true, or
/// returns false for a fatal fault. Runs against the core's staged memory
/// view, so its page-table writes commit at the cycle barrier.
pub type FaultHook = Box<dyn FnMut(&mut dyn MemAccess, u64) -> bool + Send>;

impl std::fmt::Debug for HandlerAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerAction::MmioWrite { pa, value } => f
                .debug_struct("MmioWrite")
                .field("pa", pa)
                .field("value", value)
                .finish(),
            HandlerAction::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// A registered interrupt handler.
#[derive(Debug)]
pub struct IrqHandler {
    /// Trap entry + handler body cost in cycles.
    pub entry_cycles: u64,
    /// Instructions attributed to the handler for IPC accounting.
    pub entry_insts: u64,
    /// Action performed at the end of the handler.
    pub action: HandlerAction,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    Ready,
    /// A cached load hit; finishes at the embedded cycle.
    LoadDone {
        at: u64,
        pa: u64,
        record: bool,
    },
    /// A cached load missed; waiting for the port.
    WaitLoad {
        pa: u64,
        record: bool,
    },
    /// Spin-wait load in flight (hit path, finishes at cycle).
    SpinDone {
        at: u64,
        pa: u64,
        value: u64,
    },
    /// Spin-wait load missed; waiting for the port.
    WaitSpin {
        pa: u64,
        value: u64,
    },
    /// Waiting for an MMIO response.
    WaitMmio {
        record: bool,
    },
    /// Waiting for the MMIO write issued by an interrupt handler.
    WaitHandlerMmio,
    Done,
}

/// Performance counters for one core. Event counts are registry-backed
/// [`Counter`] handles ([`crate::stats::Stats`]); `done_at` is a cycle
/// stamp, not a count, and stays a plain integer.
#[derive(Debug, Default, Clone)]
pub struct CoreCounters {
    /// Retired instructions.
    pub instret: Counter,
    /// Cycle at which the program finished (0 if still running).
    pub done_at: u64,
    /// Cached loads issued.
    pub loads: Counter,
    /// Stores issued.
    pub stores: Counter,
    /// MMIO operations issued.
    pub mmio_ops: Counter,
    /// Cycles stalled waiting for MMIO responses.
    pub mmio_stall_cycles: Counter,
    /// Cycles stalled waiting for cache misses.
    pub mem_stall_cycles: Counter,
    /// Spin-loop iterations executed.
    pub spin_iters: Counter,
    /// Cycles the store buffer was full and blocked a store.
    pub sb_full_stalls: Counter,
    /// Interrupts taken.
    pub irqs: Counter,
    /// Core-side demand page faults taken.
    pub core_faults: Counter,
}

impl CoreCounters {
    fn reset(&mut self) {
        let Self {
            instret,
            done_at,
            loads,
            stores,
            mmio_ops,
            mmio_stall_cycles,
            mem_stall_cycles,
            spin_iters,
            sb_full_stalls,
            irqs,
            core_faults,
        } = self;
        for c in [
            instret,
            loads,
            stores,
            mmio_ops,
            mmio_stall_cycles,
            mem_stall_cycles,
            spin_iters,
            sb_full_stalls,
            irqs,
            core_faults,
        ] {
            c.reset();
        }
        *done_at = 0;
    }
}

/// The in-order core component.
pub struct InOrderCore {
    port: CoherentPort,
    ops: Vec<Op>,
    pc: usize,
    state: CState,
    busy_until: u64,
    sb: VecDeque<(u64, u64)>, // (pa, value)
    sb_limit: usize,
    sb_mshrs: usize,
    sb_waiting: bool,
    spin_alu: u64,
    spin_insts: u64,
    translator: Box<dyn Translator>,
    recorded: Vec<u64>,
    mmio_tag: u64,
    /// Remaining blocking MMIO writes queued by an interrupt handler,
    /// issued one at a time through `WaitHandlerMmio`.
    handler_writes: VecDeque<(u64, u64)>,
    irq_pending: VecDeque<(u32, u64)>,
    handlers: HashMap<u32, IrqHandler>,
    /// Kernel page-fault path for the core's own accesses.
    fault_hook: Option<FaultHook>,
    trap_cost: u64,
    trap_insts: u64,
    counters: CoreCounters,
}

impl std::fmt::Debug for InOrderCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InOrderCore")
            .field("pc", &self.pc)
            .field("state", &self.state)
            .field("instret", &self.counters.instret.get())
            .finish()
    }
}

impl InOrderCore {
    /// Creates a core attached to directory `dir`, executing `program`.
    pub fn new(dir: CompId, cfg: &SocConfig, program: Program) -> Self {
        Self {
            port: CoherentPort::new(dir, cfg.l1, cfg.timing.l1_hit),
            ops: program.into_ops(),
            pc: 0,
            state: CState::Ready,
            busy_until: 0,
            sb: VecDeque::new(),
            sb_limit: cfg.timing.store_buffer,
            sb_mshrs: cfg.timing.sb_mshrs,
            sb_waiting: false,
            spin_alu: cfg.timing.spin_alu,
            spin_insts: cfg.timing.spin_insts,
            translator: Box::new(Identity),
            recorded: Vec::new(),
            mmio_tag: 0,
            handler_writes: VecDeque::new(),
            irq_pending: VecDeque::new(),
            handlers: HashMap::new(),
            fault_hook: None,
            trap_cost: cfg.timing.trap_cost,
            trap_insts: cfg.timing.trap_insts,
            counters: CoreCounters::default(),
        }
    }

    /// Installs the kernel's demand-paging path for this core's own
    /// accesses (unmapped VA -> trap, map, retry).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Installs a virtual-memory translator for this core's accesses.
    pub fn set_translator(&mut self, t: Box<dyn Translator>) {
        self.translator = t;
    }

    /// Replaces the program and resets execution state and counters
    /// (handlers and the translator are retained). Used by harnesses that
    /// assemble the SoC before the benchmark program is known.
    pub fn load_program(&mut self, program: Program) {
        self.ops = program.into_ops();
        self.pc = 0;
        self.state = CState::Ready;
        self.busy_until = 0;
        self.sb.clear();
        self.sb_waiting = false;
        self.recorded.clear();
        self.handler_writes.clear();
        self.irq_pending.clear();
        self.counters.reset();
    }

    /// Registers an interrupt handler for `irq`.
    pub fn register_irq_handler(&mut self, irq: u32, handler: IrqHandler) {
        self.handlers.insert(irq, handler);
    }

    /// True once the program has fully retired and drained.
    pub fn is_done(&self) -> bool {
        self.state == CState::Done
    }

    /// Counter snapshot.
    pub fn core_counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Values recorded by `record`-flagged loads, in program order.
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    /// Translates `va`; on a miss takes the modelled kernel fault path
    /// (charges trap cost, maps the page, and the caller retries the op
    /// next cycle by returning `None`).
    fn translate(&mut self, ctx: &mut Ctx<'_>, va: u64) -> Option<u64> {
        if let Some(pa) = self.translator.translate(&ctx.mem, va) {
            return Some(pa);
        }
        let hook = self
            .fault_hook
            .as_mut()
            .unwrap_or_else(|| panic!("core-side page fault at va {va:#x} with no handler"));
        assert!(
            hook(&mut ctx.mem, va),
            "fatal core-side page fault at va {va:#x}"
        );
        self.counters.core_faults.inc();
        self.counters.instret.add(self.trap_insts);
        self.busy_until = ctx.cycle + self.trap_cost;
        None
    }

    fn sb_forward(&self, pa: u64) -> Option<u64> {
        self.sb
            .iter()
            .rev()
            .find(|(spa, _)| *spa == pa)
            .map(|(_, v)| *v)
    }

    fn drain_sb(&mut self, ctx: &mut Ctx<'_>) {
        // Miss-level parallelism: grab write permission for the next few
        // distinct lines buffered behind the head (MSHR-style).
        let lines: Vec<u64> = {
            let mut seen = Vec::new();
            for &(pa, _) in self.sb.iter() {
                let line = crate::line_of(pa);
                if !seen.contains(&line) {
                    seen.push(line);
                    if seen.len() >= self.sb_mshrs {
                        break;
                    }
                }
            }
            seen
        };
        for (i, line) in lines.iter().enumerate() {
            if i == 0 {
                continue; // head handled below with precise bookkeeping
            }
            // Fire-and-forget permission prefetch; completions are ignored.
            let _ = self.port.request(ctx, *line, true, SB_PREFETCH_TOKEN);
        }
        if self.sb_waiting {
            return;
        }
        if let Some(&(pa, value)) = self.sb.front() {
            match self.port.request(ctx, pa, true, SB_TOKEN) {
                Outcome::Hit { .. } => {
                    ctx.mem.write_u64(pa, value);
                    self.sb.pop_front();
                }
                Outcome::Pending => self.sb_waiting = true,
                Outcome::Retry => {}
            }
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<PortEvent>) {
        for ev in events {
            if let PortEvent::Completed { token } = ev {
                match token {
                    SB_TOKEN => {
                        self.sb_waiting = false;
                        // Write through immediately; the grant is the
                        // serialization point.
                        if let Some(&(pa, value)) = self.sb.front() {
                            ctx.mem.write_u64(pa, value);
                            self.sb.pop_front();
                        }
                    }
                    LOAD_TOKEN => match self.state {
                        CState::WaitLoad { pa, record } => {
                            self.finish_load(ctx, pa, record);
                        }
                        CState::WaitSpin { pa, value } => {
                            self.spin_check(ctx, pa, value);
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
        }
    }

    fn finish_load(&mut self, ctx: &mut Ctx<'_>, pa: u64, record: bool) {
        let v = ctx.mem.read_u64(pa);
        if record {
            self.recorded.push(v);
        }
        self.counters.instret.inc();
        self.pc += 1;
        self.state = CState::Ready;
        self.busy_until = ctx.cycle;
    }

    fn spin_check(&mut self, ctx: &mut Ctx<'_>, pa: u64, value: u64) {
        self.counters.spin_iters.inc();
        self.counters.instret.add(self.spin_insts); // load + compare + branch
        let v = ctx.mem.read_u64(pa);
        if v >= value {
            self.pc += 1;
            self.state = CState::Ready;
            self.busy_until = ctx.cycle + 1;
        } else {
            self.state = CState::Ready;
            self.busy_until = ctx.cycle + self.spin_alu; // loop back edge
                                                         // pc unchanged: the WaitGe op re-issues.
        }
    }

    fn take_irq(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let Some(&(irq, payload)) = self.irq_pending.front() else {
            return false;
        };
        let Some(handler) = self.handlers.get_mut(&irq) else {
            panic!("core has no handler for irq {irq}");
        };
        self.irq_pending.pop_front();
        self.counters.irqs.inc();
        self.counters.instret.add(handler.entry_insts);
        let entry_cycles = handler.entry_cycles;
        let writes = match &mut handler.action {
            HandlerAction::MmioWrite { pa, value } => vec![(*pa, *value)],
            HandlerAction::Custom(f) => f(&mut ctx.mem, payload, ctx.cycle),
        };
        self.handler_writes.extend(writes);
        // The handler's register writes are issued after its entry cost;
        // model by delaying our own readiness.
        self.busy_until = ctx.cycle + entry_cycles;
        if let Some((pa, value)) = self.handler_writes.pop_front() {
            self.send_mmio_write(ctx, pa, value);
            self.state = CState::WaitHandlerMmio;
        }
        true
    }

    fn send_mmio_write(&mut self, ctx: &mut Ctx<'_>, pa: u64, value: u64) {
        let dst = ctx
            .mmio_target(pa)
            .unwrap_or_else(|| panic!("no MMIO device at {pa:#x}"));
        self.mmio_tag += 1;
        self.counters.mmio_ops.inc();
        ctx.send(
            dst,
            Msg::MmioWrite {
                pa,
                value,
                tag: self.mmio_tag,
            },
        );
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>) {
        if self.pc >= self.ops.len() {
            if self.sb.is_empty() && !self.sb_waiting {
                self.state = CState::Done;
                self.counters.done_at = ctx.cycle;
            }
            return;
        }
        let op = self.ops[self.pc].clone();
        match op {
            Op::Alu(n) => {
                self.counters.instret.add(u64::from(n));
                self.busy_until = ctx.cycle + u64::from(n);
                self.pc += 1;
            }
            Op::Load { va, record } => {
                let Some(pa) = self.translate(ctx, va) else {
                    return;
                };
                self.counters.loads.inc();
                if let Some(v) = self.sb_forward(pa) {
                    if record {
                        self.recorded.push(v);
                    }
                    self.counters.instret.inc();
                    self.busy_until = ctx.cycle + 1;
                    self.pc += 1;
                    return;
                }
                match self.port.request(ctx, pa, false, LOAD_TOKEN) {
                    Outcome::Hit { ready_at } => {
                        self.state = CState::LoadDone {
                            at: ready_at,
                            pa,
                            record,
                        };
                    }
                    Outcome::Pending => self.state = CState::WaitLoad { pa, record },
                    Outcome::Retry => self.busy_until = ctx.cycle + 1,
                }
            }
            Op::Store { va, value } => {
                if self.sb.len() >= self.sb_limit {
                    self.counters.sb_full_stalls.inc();
                    self.busy_until = ctx.cycle + 1;
                    return;
                }
                let Some(pa) = self.translate(ctx, va) else {
                    return;
                };
                self.counters.stores.inc();
                self.counters.instret.inc();
                self.sb.push_back((pa, value));
                self.busy_until = ctx.cycle + 1;
                self.pc += 1;
            }
            Op::WaitGe { va, value } => {
                let Some(pa) = self.translate(ctx, va) else {
                    return;
                };
                match self.port.request(ctx, pa, false, LOAD_TOKEN) {
                    Outcome::Hit { ready_at } => {
                        self.state = CState::SpinDone {
                            at: ready_at,
                            pa,
                            value,
                        };
                    }
                    Outcome::Pending => self.state = CState::WaitSpin { pa, value },
                    Outcome::Retry => self.busy_until = ctx.cycle + 1,
                }
            }
            Op::Fence => {
                if self.sb.is_empty() && !self.sb_waiting {
                    self.counters.instret.inc();
                    self.busy_until = ctx.cycle + 1;
                    self.pc += 1;
                } else {
                    self.busy_until = ctx.cycle + 1;
                }
            }
            Op::MmioLoad { pa, record } => {
                let dst = ctx
                    .mmio_target(pa)
                    .unwrap_or_else(|| panic!("no MMIO device at {pa:#x}"));
                self.mmio_tag += 1;
                self.counters.mmio_ops.inc();
                ctx.send(
                    dst,
                    Msg::MmioRead {
                        pa,
                        tag: self.mmio_tag,
                    },
                );
                self.state = CState::WaitMmio { record };
            }
            Op::MmioStore { pa, value } => {
                self.send_mmio_write(ctx, pa, value);
                self.state = CState::WaitMmio { record: false };
            }
            Op::KernelCost { cycles, insts } => {
                self.counters.instret.add(insts);
                self.busy_until = ctx.cycle + cycles;
                self.pc += 1;
            }
        }
    }
}

impl Component for InOrderCore {
    fn name(&self) -> &str {
        "core"
    }

    fn attach(&mut self, obs: &Observability) {
        let c = &self.counters;
        for (name, counter) in [
            ("instret", &c.instret),
            ("loads", &c.loads),
            ("stores", &c.stores),
            ("mmio_ops", &c.mmio_ops),
            ("mmio_stall_cycles", &c.mmio_stall_cycles),
            ("mem_stall_cycles", &c.mem_stall_cycles),
            ("spin_iters", &c.spin_iters),
            ("sb_full_stalls", &c.sb_full_stalls),
            ("irqs", &c.irqs),
            ("core_faults", &c.core_faults),
        ] {
            obs.adopt_counter(name, counter);
        }
        self.port.port_counters().register(obs, "l1");
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        // 1. Messages.
        while let Some(env) = ctx.recv() {
            match &env.msg {
                m if CoherentPort::wants(m) => {
                    let events = self.port.handle(&env, ctx);
                    self.handle_events(ctx, events);
                }
                Msg::MmioReadResp { value, .. } => {
                    if let CState::WaitMmio { record } = self.state {
                        if record {
                            self.recorded.push(*value);
                        }
                        self.counters.instret.inc();
                        self.pc += 1;
                        self.state = CState::Ready;
                        self.busy_until = ctx.cycle + 1;
                    }
                }
                Msg::MmioWriteResp { .. } => match self.state {
                    CState::WaitMmio { .. } => {
                        self.counters.instret.inc();
                        self.pc += 1;
                        self.state = CState::Ready;
                        self.busy_until = ctx.cycle + 1;
                    }
                    CState::WaitHandlerMmio => {
                        if let Some((pa, value)) = self.handler_writes.pop_front() {
                            // Next write of the handler's ordered sequence.
                            self.send_mmio_write(ctx, pa, value);
                        } else {
                            self.state = CState::Ready;
                            self.busy_until = ctx.cycle + 1;
                        }
                    }
                    _ => {}
                },
                Msg::Irq { irq, payload } => {
                    self.irq_pending.push_back((*irq, *payload));
                }
                other => panic!("core received unexpected message {other:?}"),
            }
        }

        // 2. Background store-buffer drain.
        self.drain_sb(ctx);

        // 3. Stall accounting.
        match self.state {
            CState::WaitMmio { .. } | CState::WaitHandlerMmio => {
                self.counters.mmio_stall_cycles.inc()
            }
            CState::WaitLoad { .. } | CState::WaitSpin { .. } => {
                self.counters.mem_stall_cycles.inc()
            }
            _ => {}
        }

        // 4. Finish hit-path accesses.
        match self.state {
            CState::LoadDone { at, pa, record } if ctx.cycle >= at => {
                self.finish_load(ctx, pa, record);
            }
            CState::SpinDone { at, pa, value } if ctx.cycle >= at => {
                self.spin_check(ctx, pa, value);
            }
            _ => {}
        }

        // 5. Execute.
        if self.state == CState::Ready && ctx.cycle >= self.busy_until {
            if !self.irq_pending.is_empty() && self.take_irq(ctx) {
                return;
            }
            self.exec(ctx);
        }
    }

    fn is_idle(&self) -> bool {
        self.state == CState::Done && self.irq_pending.is_empty()
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        // Any store-buffer or IRQ activity issues requests / takes traps
        // on the very next step; the background drain is not idempotent
        // (each attempt pushes a request into a pending line), so those
        // cycles must be stepped for real.
        if !self.irq_pending.is_empty() || !self.sb.is_empty() || self.sb_waiting {
            return 1;
        }
        match self.state {
            // Only an inbound message (a load of a Done core's flag, an
            // IRQ) can wake these; the SoC's inbox/NoC bounds cover that.
            CState::Done
            | CState::WaitLoad { .. }
            | CState::WaitSpin { .. }
            | CState::WaitMmio { .. }
            | CState::WaitHandlerMmio => u64::MAX,
            // Hit-path completions fire exactly at their stamp.
            CState::LoadDone { at, .. } | CState::SpinDone { at, .. } => {
                at.saturating_sub(now).max(1)
            }
            // An ALU/trap busy window ends exactly at busy_until.
            CState::Ready => self.busy_until.saturating_sub(now).max(1),
        }
    }

    fn fast_forward(&mut self, skipped: u64) {
        // Reconcile the per-cycle stall accounting (step phase 3) for the
        // skipped window. The waking step processes its message *before*
        // that accounting runs, so a wait window [enter+1, wake) under
        // forced stepping increments exactly once per skipped cycle —
        // `add(skipped)` is bit-exact. The other skippable states
        // (Ready-busy, LoadDone/SpinDone pending, Done) record nothing
        // per cycle.
        match self.state {
            CState::WaitMmio { .. } | CState::WaitHandlerMmio => {
                self.counters.mmio_stall_cycles.add(skipped);
            }
            CState::WaitLoad { .. } | CState::WaitSpin { .. } => {
                self.counters.mem_stall_cycles.add(skipped);
            }
            _ => {}
        }
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let l1 = self.port.port_counters();
        vec![
            ("l1_hits".into(), l1.hits.get()),
            ("l1_misses".into(), l1.misses.get()),
            ("instret".into(), c.instret.get()),
            ("done_at".into(), c.done_at),
            ("loads".into(), c.loads.get()),
            ("stores".into(), c.stores.get()),
            ("mmio_ops".into(), c.mmio_ops.get()),
            ("mmio_stall_cycles".into(), c.mmio_stall_cycles.get()),
            ("mem_stall_cycles".into(), c.mem_stall_cycles.get()),
            ("spin_iters".into(), c.spin_iters.get()),
            ("sb_full_stalls".into(), c.sb_full_stalls.get()),
            ("irqs".into(), c.irqs.get()),
            ("core_faults".into(), c.core_faults.get()),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
