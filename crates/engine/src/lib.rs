//! # cohort-engine — the Cohort engine
//!
//! The paper's primary hardware contribution: a coherence-connected unit
//! that bridges software shared-memory SPSC queues to latency-insensitive
//! accelerator interfaces (paper §4.2, Figure 6). See [`engine::CohortEngine`]
//! for the component and [`cohort_accel::timing::TimedAccel`] for the valid/ready
//! accelerator wrapper.
//!
//! The engine is programmed through the uncached register bank defined in
//! [`cohort_os::driver::regs`] by the Cohort kernel driver; user code never
//! touches it (§4.4).

pub mod engine;

pub use cohort_accel::timing::TimedAccel;
pub use engine::{CohortEngine, EngineCheckpoint, EngineCounters};
