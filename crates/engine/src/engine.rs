//! The Cohort engine (paper §4.2, Figure 6).
//!
//! One engine bridges a pair of software SPSC queues to one accelerator:
//!
//! * **Uncached configuration registers** — the only MMIO part of Cohort;
//!   programmed exclusively by the kernel driver
//!   ([`cohort_os::driver::regs`]).
//! * **Memory transaction engine (MTE)** — two channels (consumer,
//!   producer) that execute virtually-addressed reads/writes: translate
//!   through the [`cohort_os::mmu::DeviceMmu`] (TLB hit, hardware
//!   page-table walk with timed coherent PTE reads, or page-fault
//!   interrupt), then access memory through a small fully-associative
//!   coherent line buffer ([`cohort_sim::port::CoherentPort`]).
//! * **Consumer endpoint** with the *Reader Coherency Manager*: after
//!   reading the input queue's write index it holds (pins) that line
//!   shared; a directory invalidation of the line means the producer
//!   published — the RCM backs off a configurable window, re-reads the
//!   index, and streams the new elements to the accelerator (§4.2.1,
//!   §4.2.3).
//! * **Producer endpoint** with the *Write Coherency Manager*: collects
//!   accelerator output words, writes data elements, and only then updates
//!   the output queue's write index — data-before-pointer ordering, at
//!   data-block granularity to reduce coherence traffic (§4.2.2, §4.3).

use cohort_os::driver::regs;
use cohort_os::mmu::{DeviceMmu, TlbResult, WalkMachine, WalkStep};
use cohort_queue::QueueDescriptor;
use cohort_sim::component::{CompId, Component, Ctx, Observability};
use cohort_sim::config::{CacheConfig, SocConfig};
use cohort_sim::faultinject::FaultState;
use cohort_sim::line_of;
use cohort_sim::msg::Msg;
use cohort_sim::port::{CoherentPort, Outcome, PortEvent};
use cohort_sim::stats::{Counter, Histogram};
use cohort_sim::trace::Trace;
use cohort_sim::LINE_BYTES;

use cohort_accel::timing::TimedAccel;

const CH_CONS: usize = 0;
const CH_PROD: usize = 1;

/// A pending MTE memory operation (virtually addressed).
#[derive(Debug, Clone)]
enum MteOp {
    /// Read bytes at `va` into the (pre-sized) channel buffer.
    Read { va: u64 },
    /// Write the channel buffer at `va`.
    Write { va: u64 },
}

#[derive(Debug, Clone, Copy)]
enum ChState {
    /// Pick up the next segment and translate it.
    Translate,
    /// A PTE read is outstanding.
    WalkWait,
    /// Faulted; waiting for the driver's resolve write.
    WaitFault,
    /// The port access is outstanding.
    AccessWait { pa: u64, seg: usize, write: bool },
    /// The access hit; completes at the embedded cycle.
    AccessHit {
        at: u64,
        pa: u64,
        seg: usize,
        write: bool,
    },
}

#[derive(Debug)]
struct Channel {
    op: Option<MteOp>,
    buf: Vec<u8>,
    offset: usize,
    state: ChState,
    walk: Option<WalkMachine>,
    done: bool,
    /// Streaming data access: the line is relinquished after use (the MTE
    /// holds only pointer and page-table lines; data flows through).
    transient: bool,
    /// Physical address of the last completed segment (used to learn the
    /// pointer lines the RCM should monitor).
    last_pa: u64,
}

impl Channel {
    fn new() -> Self {
        Self {
            op: None,
            buf: Vec::new(),
            offset: 0,
            state: ChState::Translate,
            walk: None,
            done: false,
            transient: false,
            last_pa: 0,
        }
    }

    fn idle(&self) -> bool {
        self.op.is_none()
    }

    fn start_read(&mut self, va: u64, len: usize) {
        self.start_read_opts(va, len, false)
    }

    fn start_read_opts(&mut self, va: u64, len: usize, transient: bool) {
        debug_assert!(self.op.is_none());
        self.op = Some(MteOp::Read { va });
        self.buf = vec![0u8; len];
        self.offset = 0;
        self.state = ChState::Translate;
        self.walk = None;
        self.done = false;
        self.transient = transient;
    }

    fn start_write_opts(&mut self, va: u64, data: Vec<u8>, transient: bool) {
        debug_assert!(self.op.is_none());
        self.op = Some(MteOp::Write { va });
        self.buf = data;
        self.offset = 0;
        self.state = ChState::Translate;
        self.walk = None;
        self.done = false;
        self.transient = transient;
    }

    fn take_done(&mut self) -> Option<Vec<u8>> {
        if self.done {
            self.op = None;
            self.done = false;
            Some(std::mem::take(&mut self.buf))
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConsState {
    Off,
    /// Reading the CSR configuration buffer.
    Csr,
    /// Reading the input queue's read index.
    InitRd,
    /// Reading the input queue's write index.
    InitWr,
    /// Deciding what to do next.
    Judge,
    /// Armed: RCM watches the write-index line for invalidations.
    Waiting,
    /// Invalidations observed; waiting out the backoff window.
    Backoff {
        until: u64,
    },
    /// Re-reading the write index after backoff.
    ReadWr,
    /// Fetching `n` elements of data.
    Fetch {
        n: u64,
    },
    /// Streaming fetched words into the accelerator.
    Feed {
        fed: usize,
        n: u64,
    },
    /// Publishing the updated read index.
    UpdateRd,
    /// Stopped by a sticky error (bad descriptor, CSR rejection or
    /// watchdog trip); resumes when software clears `ERROR_STATUS`.
    Halted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProdState {
    Off,
    /// Reading the output queue's read index.
    InitRd,
    /// Reading the output queue's write index.
    InitWr,
    /// Collecting accelerator output / waiting for a flushable block.
    Collect,
    /// Output queue looked full; waiting out the backoff window after a
    /// read-index invalidation.
    BackoffFull {
        until: u64,
    },
    /// Re-reading the read index.
    ReadRd,
    /// Writing `n` elements of data.
    WriteData {
        n: u64,
    },
    /// WCM ordering drain between data write and index publication.
    WcmDrain {
        n: u64,
        until: u64,
    },
    /// Publishing the updated write index.
    UpdateWr,
    /// Stopped by a sticky error; resumes when software clears
    /// `ERROR_STATUS`.
    Halted,
}

/// Runtime view of one registered queue.
#[derive(Debug, Clone, Copy, Default)]
struct QueueRegs {
    wr_va: u64,
    rd_va: u64,
    base_va: u64,
    elem: u64,
    len: u64,
}

impl QueueRegs {
    fn slot_va(&self, index: u64) -> u64 {
        self.base_va + (index % self.len) * self.elem
    }

    /// Elements contiguous in the ring starting at `index`.
    fn contig(&self, index: u64) -> u64 {
        self.len - (index % self.len)
    }
}

/// Performance counters of the engine (paper §5.1: "performance counter
/// data comes from each Cohort Engine"). Fields are registry-backed
/// [`Counter`] handles: once the engine is attached to a SoC the same
/// cells are visible through the [`cohort_sim::stats::Stats`] registry.
#[derive(Debug, Default, Clone)]
pub struct EngineCounters {
    /// Elements consumed from the input queue.
    pub consumed: Counter,
    /// Elements produced into the output queue.
    pub produced: Counter,
    /// Write-index line invalidations the RCM observed.
    pub rcm_invalidations: Counter,
    /// Backoff windows taken.
    pub backoffs: Counter,
    /// Page faults raised to the core.
    pub faults: Counter,
    /// Read-index re-reads because the output ring looked full.
    pub full_stalls: Counter,
    /// TLB hits, mirrored from the device MMU each step.
    pub tlb_hits: Counter,
    /// TLB misses, mirrored from the device MMU each step.
    pub tlb_misses: Counter,
    /// Forward-progress watchdog trips (each halts the engine).
    pub watchdog_trips: Counter,
    /// Error interrupts raised to the core.
    pub error_irqs: Counter,
    /// Elements rescued by the watchdog drain (staged/accelerator output
    /// written back to the output queue during an abort).
    pub drained_elems: Counter,
    /// Times software cleared `ERROR_STATUS` and the engine resumed.
    pub resumes: Counter,
    /// Failover rebinds onto this engine (enables with `FAILOVER_T0` set).
    pub rebinds: Counter,
}

/// Snapshot of the engine's migratable state, exported by
/// [`CohortEngine::checkpoint`]: internal index views, bytes staged in
/// the datapath, and the binding epoch. Failover tests use it to argue
/// the exactly-once invariant; the orchestrator itself trusts only the
/// indices in coherent memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCheckpoint {
    /// Elements consumed from the input queue (internal view).
    pub rd: u64,
    /// Elements produced into the output queue (internal view).
    pub wr: u64,
    /// Last input write index observed.
    pub known_wr: u64,
    /// Last output read index observed.
    pub known_rd: u64,
    /// Bytes in the producer staging buffer.
    pub staged_bytes: usize,
    /// Bytes buffered at the accelerator output.
    pub accel_output_bytes: usize,
    /// Epoch of the currently bound descriptors.
    pub bound_epoch: u64,
    /// True once a fail-stop fault froze the datapath.
    pub dead: bool,
}

/// The Cohort engine component. Construct with [`CohortEngine::new`], map
/// its register bank with [`cohort_sim::soc::Soc::map_mmio`], and program
/// it through [`cohort_os::CohortDriver`].
pub struct CohortEngine {
    mmio_base: u64,
    irq_target: CompId,
    irq_num: u32,
    port: CoherentPort,
    mmu: DeviceMmu,
    accel: TimedAccel,
    raw_regs: std::collections::HashMap<u64, u64>,
    enabled: bool,
    channels: [Channel; 2],
    cons: ConsState,
    prod: ProdState,
    in_q: QueueRegs,
    out_q: QueueRegs,
    rd: u64,
    known_wr: u64,
    wr: u64,
    known_rd: u64,
    /// RCM monitored lines (input write index / output read index).
    rcm_in_line: Option<u64>,
    rcm_in_dirty: bool,
    rcm_out_line: Option<u64>,
    rcm_out_dirty: bool,
    backoff: u64,
    wcm_turnaround: u64,
    mte_shared: bool,
    mmio_latency: u64,
    /// Producer-side staging buffer (accelerator words awaiting a flush).
    stage: Vec<u8>,
    counters: EngineCounters,
    in_occupancy: Histogram,
    out_occupancy: Histogram,
    trace: Option<Trace>,
    tid: u64,
    /// Cycle the consumer entered its current state (trace spans).
    cons_since: u64,
    /// Cycle the producer entered its current state (trace spans).
    prod_since: u64,
    irq_outstanding: bool,
    /// A CSR-buffer read is outstanding on the consumer channel.
    csr_pending: bool,
    /// Sticky error bits (`regs::ERR_*`); nonzero halts both endpoints.
    error_status: u64,
    /// Cycle the current error condition began (trace span start).
    error_since: u64,
    /// An error interrupt is in flight / unacknowledged.
    err_irq_outstanding: bool,
    /// Forward-progress budget in cycles (0 = watchdog disabled).
    watchdog_cycles: u64,
    /// Last cycle the consumer endpoint demonstrably made progress.
    cons_progress_at: u64,
    /// Last observed consumer progress signature (state label, elements
    /// consumed, channel offset).
    cons_sig: (&'static str, u64, usize),
    /// Last cycle the producer endpoint demonstrably made progress.
    prod_progress_at: u64,
    /// Last observed producer progress signature.
    prod_sig: (&'static str, u64, usize, usize),
    /// Current consumer backoff window (capped exponential, resets on
    /// progress).
    backoff_cons: u64,
    /// Current producer backoff window.
    backoff_prod: u64,
    /// Distribution of backoff windows actually taken (log2 buckets via
    /// the histogram's own bucketing).
    backoff_window: Histogram,
    /// SoC-wide fault switches (accelerator stall injection).
    fault_state: Option<FaultState>,
    /// This engine's index in the SoC-wide fail-stop kill mask.
    engine_index: u64,
    /// Lowest queue-binding epoch this engine may run (`EPOCH_FENCE`).
    /// Monotonic; survives disable — the exactly-once fence.
    min_epoch: u64,
    /// Epoch of the currently bound descriptors.
    bound_epoch: u64,
    /// First cycle the frozen datapath was observed (fail-stop fault).
    dead_since: Option<u64>,
    /// Armed after a failover enable: `(detect_cycle, produced_then)` —
    /// the first element produced past the baseline closes the
    /// detect→first-element latency measurement.
    resume_watch: Option<(u64, u64)>,
    /// Fault latch → error-IRQ handler completion, in cycles.
    error_irq_latency: Histogram,
    /// Fail-stop onset → watchdog detection, in cycles.
    failover_detect: Histogram,
    /// Detection → spare rebind (its failover enable), in cycles.
    failover_rebind: Histogram,
    /// Detection → first element produced by the spare, in cycles.
    failover_resume: Histogram,
}

impl std::fmt::Debug for CohortEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortEngine")
            .field("enabled", &self.enabled)
            .field("cons", &self.cons)
            .field("prod", &self.prod)
            .field("consumed", &self.counters.consumed.get())
            .field("produced", &self.counters.produced.get())
            .finish()
    }
}

impl CohortEngine {
    /// Creates an engine.
    ///
    /// * `dir` — the directory component;
    /// * `mmio_base` — base physical address of the register bank (map
    ///   `mmio_base..mmio_base + regs::BANK_BYTES`);
    /// * `irq_target`/`irq_num` — where page-fault interrupts go;
    /// * `accel` — the hosted accelerator.
    pub fn new(
        dir: CompId,
        cfg: &SocConfig,
        mmio_base: u64,
        irq_target: CompId,
        irq_num: u32,
        accel: Box<dyn cohort_accel::Accelerator>,
    ) -> Self {
        let lines = cfg.mte_lines.max(4);
        Self {
            mmio_base,
            irq_target,
            irq_num,
            // Fully associative line buffer: pins can never jam a set.
            port: CoherentPort::new(dir, CacheConfig::new(lines * LINE_BYTES, lines as u32), 1),
            mmu: DeviceMmu::new(cfg.tlb_entries),
            accel: TimedAccel::new(accel),
            raw_regs: std::collections::HashMap::new(),
            enabled: false,
            channels: [Channel::new(), Channel::new()],
            cons: ConsState::Off,
            prod: ProdState::Off,
            in_q: QueueRegs::default(),
            out_q: QueueRegs::default(),
            rd: 0,
            known_wr: 0,
            wr: 0,
            known_rd: 0,
            rcm_in_line: None,
            rcm_in_dirty: false,
            rcm_out_line: None,
            rcm_out_dirty: false,
            backoff: 16,
            wcm_turnaround: cfg.timing.wcm_turnaround,
            mte_shared: cfg.timing.mte_shared,
            mmio_latency: cfg.timing.mmio_device,
            stage: Vec::new(),
            counters: EngineCounters::default(),
            in_occupancy: Histogram::new(),
            out_occupancy: Histogram::new(),
            trace: None,
            tid: 0,
            cons_since: 0,
            prod_since: 0,
            irq_outstanding: false,
            csr_pending: false,
            error_status: 0,
            error_since: 0,
            err_irq_outstanding: false,
            watchdog_cycles: 0,
            cons_progress_at: 0,
            cons_sig: ("", 0, 0),
            prod_progress_at: 0,
            prod_sig: ("", 0, 0, 0),
            backoff_cons: 16,
            backoff_prod: 16,
            backoff_window: Histogram::new(),
            fault_state: None,
            engine_index: 0,
            min_epoch: 0,
            bound_epoch: 0,
            dead_since: None,
            resume_watch: None,
            error_irq_latency: Histogram::new(),
            failover_detect: Histogram::new(),
            failover_rebind: Histogram::new(),
            failover_resume: Histogram::new(),
        }
    }

    /// Connects the engine to the SoC-wide fault switches so injected
    /// accelerator stalls gate the valid/ready interface.
    pub fn set_fault_state(&mut self, faults: FaultState) {
        self.fault_state = Some(faults);
    }

    /// Sets this engine's index in the SoC-wide fail-stop kill mask, so a
    /// `kill@C:E` fault wedges exactly engine `E`.
    pub fn set_engine_index(&mut self, index: u64) {
        self.engine_index = index;
    }

    /// True once a fail-stop fault has permanently frozen the datapath.
    /// The register file and the watchdog survive (the dead-man's-handle
    /// model): MMIO stays serviceable so software can fence and disable
    /// the victim, and the watchdog detects the wedge.
    fn killed(&self) -> bool {
        self.fault_state
            .as_ref()
            .is_some_and(|f| f.engine_killed(self.engine_index))
    }

    /// This engine's index in the SoC (assigned at build time).
    pub fn engine_index(&self) -> u64 {
        self.engine_index
    }

    /// Current input-queue occupancy as the engine sees it: elements the
    /// producer has published (`known_wr`) that the consumer endpoint has
    /// not yet read. This is the quantity a shard pool's software
    /// occupancy mirror tracks, exposed so tests can compare mirror
    /// against ground truth.
    pub fn in_queue_occupancy(&self) -> u64 {
        self.known_wr.saturating_sub(self.rd)
    }

    /// Shared handle to the per-step input-occupancy histogram (the
    /// `engine#<id>.in_queue_occupancy` registry entry); its p50 is the
    /// per-engine load summary the bench baseline records.
    pub fn in_occupancy_histogram(&self) -> Histogram {
        self.in_occupancy.clone()
    }

    /// A point-in-time summary of the engine's migratable state, for
    /// tests and diagnostics. The authoritative queue indices live in
    /// coherent memory; these are the engine's internal views.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            rd: self.rd,
            wr: self.wr,
            known_wr: self.known_wr,
            known_rd: self.known_rd,
            staged_bytes: self.stage.len(),
            accel_output_bytes: self.accel.output_len(),
            bound_epoch: self.bound_epoch,
            dead: self.killed(),
        }
    }

    /// Current sticky error bits (`regs::ERR_*`; 0 = healthy).
    pub fn error_status(&self) -> u64 {
        self.error_status
    }

    /// Arms the forward-progress watchdog directly (tests; the driver
    /// path writes `regs::WATCHDOG`).
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles;
    }

    /// True while the accelerator is held stalled by fault injection.
    fn stalled(&self, cycle: u64) -> bool {
        self.fault_state
            .as_ref()
            .is_some_and(|f| f.accel_stalled(cycle))
    }

    /// Counter snapshot.
    pub fn engine_counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// MMU counter snapshot (TLB hits/misses/faults/flushes).
    pub fn mmu_counters(&self) -> &cohort_os::mmu::MmuCounters {
        self.mmu.counters()
    }

    /// The register bank base address.
    pub fn mmio_base(&self) -> u64 {
        self.mmio_base
    }

    fn reg(&self, off: u64) -> u64 {
        self.raw_regs.get(&off).copied().unwrap_or(0)
    }

    /// Validates the programmed queue geometry — the configure-time checks
    /// of the hardened engine. A failure must NOT panic (a misprogrammed
    /// device register is an error condition, not a model bug): it sets
    /// the sticky `ERR_BAD_DESCRIPTOR` bit instead.
    fn validated_queue(
        &self,
        wr: u64,
        rd: u64,
        base: u64,
        elem: u64,
        len: u64,
    ) -> Option<QueueRegs> {
        let (Ok(elem32), Ok(len32)) = (u32::try_from(elem), u32::try_from(len)) else {
            return None;
        };
        QueueDescriptor::try_new(wr, rd, base, elem32, len32).ok()?;
        Some(QueueRegs {
            wr_va: wr,
            rd_va: rd,
            base_va: base,
            elem,
            len,
        })
    }

    fn enable(&mut self, ctx: &mut Ctx<'_>) {
        self.enabled = true;
        if self.killed() {
            // The datapath is fail-stopped: re-enabling cannot revive it.
            self.raise_error(ctx, regs::ERR_ENGINE_DEAD);
            return;
        }
        let epoch = self.reg(regs::IN_EPOCH).min(self.reg(regs::OUT_EPOCH));
        if epoch < self.min_epoch {
            // A binding older than the fence: after queue migration this
            // engine must never touch (or republish) those indices again.
            self.raise_error(ctx, regs::ERR_STALE_EPOCH);
            return;
        }
        let in_q = self.validated_queue(
            self.reg(regs::IN_WR_VA),
            self.reg(regs::IN_RD_VA),
            self.reg(regs::IN_BASE_VA),
            self.reg(regs::IN_ELEM),
            self.reg(regs::IN_LEN),
        );
        let out_q = self.validated_queue(
            self.reg(regs::OUT_WR_VA),
            self.reg(regs::OUT_RD_VA),
            self.reg(regs::OUT_BASE_VA),
            self.reg(regs::OUT_ELEM),
            self.reg(regs::OUT_LEN),
        );
        let (Some(in_q), Some(out_q)) = (in_q, out_q) else {
            self.raise_error(ctx, regs::ERR_BAD_DESCRIPTOR);
            return;
        };
        self.in_q = in_q;
        self.out_q = out_q;
        self.bound_epoch = epoch;
        self.mmu.set_root(self.reg(regs::PT_ROOT_PA));
        self.backoff = self.reg(regs::BACKOFF);
        self.backoff_cons = self.backoff;
        self.backoff_prod = self.backoff;
        self.watchdog_cycles = self.reg(regs::WATCHDOG);
        self.accel.reset();
        self.stage.clear();
        self.rd = 0;
        self.known_wr = 0;
        self.wr = 0;
        self.known_rd = 0;
        self.rcm_in_line = None;
        self.rcm_in_dirty = false;
        self.rcm_out_line = None;
        self.rcm_out_dirty = false;
        self.cons_progress_at = ctx.cycle;
        self.prod_progress_at = ctx.cycle;
        self.cons_sig = ("", 0, 0);
        self.prod_sig = ("", 0, 0, 0);
        self.cons = if self.reg(regs::CSR_LEN) > 0 {
            ConsState::Csr
        } else {
            ConsState::InitRd
        };
        self.prod = ProdState::InitRd;
        // Restore any checkpoint spill (a consume-once no-op when empty),
        // so datapath residue an abort rescued is processed exactly once.
        self.restore_spill(ctx);
        let t0 = self.reg(regs::FAILOVER_T0);
        if t0 > 0 {
            // This is a failover rebind: consume the detection stamp and
            // publish the detect→rebind / detect→first-element latencies.
            self.raw_regs.insert(regs::FAILOVER_T0, 0);
            self.counters.rebinds.inc();
            self.failover_rebind.record(ctx.cycle.saturating_sub(t0));
            self.resume_watch = Some((t0, self.counters.produced.get()));
            if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
                trace.instant(
                    self.tid,
                    "fault",
                    "failover_rebind",
                    ctx.cycle,
                    vec![("epoch", format!("{epoch}"))],
                );
            }
        }
    }

    /// Consumes the checkpoint spill area (`[n_in, n_out, words…]`): the
    /// partial input block a dead engine's abort path rescued is pushed
    /// back into the accelerator ratchet, unwritten output words back
    /// into the staging buffer. The counts are zeroed afterwards so the
    /// restore happens exactly once.
    fn restore_spill(&mut self, ctx: &mut Ctx<'_>) {
        let pa = self.reg(regs::SPILL_PA);
        if pa == 0 {
            return;
        }
        let n_in = ctx.mem.read_u64(pa);
        let n_out = ctx.mem.read_u64(pa + 8);
        if n_in + n_out == 0 || n_in + n_out > 510 {
            return; // empty, or not a spill image this engine wrote
        }
        for i in 0..n_in {
            self.accel.push_word(ctx.mem.read_u64(pa + 16 + i * 8));
        }
        for i in 0..n_out {
            let w = ctx.mem.read_u64(pa + 16 + (n_in + i) * 8);
            self.stage.extend_from_slice(&w.to_le_bytes());
        }
        ctx.mem.write_u64(pa, 0);
        ctx.mem.write_u64(pa + 8, 0);
    }

    /// Latches `bits` into the sticky error register, halts both
    /// endpoints (aborting any in-flight channel operation) and raises
    /// the error interrupt. Idempotent for an already-halted engine.
    fn raise_error(&mut self, ctx: &mut Ctx<'_>, bits: u64) {
        if self.error_status == 0 {
            self.error_since = ctx.cycle;
        }
        self.error_status |= bits;
        self.cons = ConsState::Halted;
        self.prod = ProdState::Halted;
        self.csr_pending = false;
        for ch in &mut self.channels {
            *ch = Channel::new();
        }
        if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            trace.instant(
                self.tid,
                "fault",
                "error_irq",
                ctx.cycle,
                vec![("status", format!("{:#x}", self.error_status))],
            );
        }
        if !self.err_irq_outstanding {
            self.err_irq_outstanding = true;
            self.counters.error_irqs.inc();
            ctx.send(
                self.irq_target,
                Msg::Irq {
                    irq: self.irq_num + regs::ERROR_IRQ_OFFSET,
                    payload: self.error_status,
                },
            );
        }
    }

    /// `ERROR_STATUS` write: clear the sticky bits and resume a halted
    /// engine by re-running the enable sequence — queue indices are
    /// re-read from memory, which stays authoritative across the abort.
    fn clear_error(&mut self, ctx: &mut Ctx<'_>) {
        let was_halted = self.error_status != 0;
        self.error_status = 0;
        self.err_irq_outstanding = false;
        if !was_halted {
            return;
        }
        self.counters.resumes.inc();
        // Latch → IRQ delivery → handler completion: this write IS the
        // handler's completion, so the span closes here.
        self.error_irq_latency
            .record(ctx.cycle.saturating_sub(self.error_since));
        if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            trace.complete(
                self.tid,
                "fault",
                "error",
                self.error_since,
                ctx.cycle.saturating_sub(self.error_since).max(1),
                vec![("resumed", "true".into())],
            );
        }
        if self.enabled {
            self.enable(ctx);
        }
    }

    fn disable(&mut self, ctx: &mut Ctx<'_>) {
        self.enabled = false;
        if self.err_irq_outstanding {
            // Handler completed by disabling the engine (fallback or
            // failover path): close the latency span here instead.
            self.error_irq_latency
                .record(ctx.cycle.saturating_sub(self.error_since));
            self.err_irq_outstanding = false;
        }
        self.cons = ConsState::Off;
        self.prod = ProdState::Off;
        if let Some(l) = self.rcm_in_line.take() {
            self.port.unpin(l);
            self.port.relinquish(ctx, l);
        }
        if let Some(l) = self.rcm_out_line.take() {
            self.port.unpin(l);
            self.port.relinquish(ctx, l);
        }
        self.port.unpin_all();
    }

    /// True for registers that describe the queues / translation setup:
    /// rewriting one while the engine runs invalidates its working state
    /// (this is also the path a corrupted-descriptor fault injection
    /// takes — the write lands, then the engine flags it).
    fn is_config_reg(off: u64) -> bool {
        matches!(
            off,
            regs::IN_WR_VA
                | regs::IN_RD_VA
                | regs::IN_BASE_VA
                | regs::IN_ELEM
                | regs::IN_LEN
                | regs::OUT_WR_VA
                | regs::OUT_RD_VA
                | regs::OUT_BASE_VA
                | regs::OUT_ELEM
                | regs::OUT_LEN
                | regs::PT_ROOT_PA
                | regs::CSR_BASE_VA
                | regs::CSR_LEN
                | regs::IN_EPOCH
                | regs::OUT_EPOCH
        )
    }

    fn on_mmio_write(&mut self, ctx: &mut Ctx<'_>, pa: u64, value: u64) {
        let off = pa - self.mmio_base;
        match off {
            regs::ENABLE => {
                self.raw_regs.insert(off, value);
                if value != 0 {
                    self.enable(ctx);
                } else {
                    self.disable(ctx);
                }
            }
            regs::TLB_FLUSH => {
                self.mmu.flush();
                // The flush is also an RCM rebind barrier: the armed
                // monitor lines were chosen through now-stale
                // translations, and after a page migration the publisher
                // writes a different physical line. Marking both sides
                // dirty forces a pointer re-read, which re-arms each
                // monitor on the freshly translated line.
                self.rcm_in_dirty = true;
                self.rcm_out_dirty = true;
            }
            regs::FAULT_RESOLVE => {
                self.irq_outstanding = false;
                for ch in &mut self.channels {
                    if matches!(ch.state, ChState::WaitFault) {
                        ch.state = ChState::Translate;
                        ch.walk = None;
                    }
                }
            }
            regs::BACKOFF => {
                self.backoff = value;
                self.backoff_cons = value;
                self.backoff_prod = value;
                self.raw_regs.insert(off, value);
            }
            regs::WATCHDOG => {
                self.watchdog_cycles = value;
                self.cons_progress_at = ctx.cycle;
                self.prod_progress_at = ctx.cycle;
                self.raw_regs.insert(off, value);
            }
            regs::ERROR_STATUS => self.clear_error(ctx),
            regs::EPOCH_FENCE => {
                // Monotonic: a smaller fence value is ignored, and the
                // fence survives disable — a stale engine waking late can
                // never re-run (or republish indices for) an old binding.
                let fence = value.max(self.min_epoch);
                self.min_epoch = fence;
                self.raw_regs.insert(off, fence);
                if self.enabled && self.bound_epoch < fence {
                    self.raise_error(ctx, regs::ERR_STALE_EPOCH);
                }
            }
            _ => {
                self.raw_regs.insert(off, value);
                if self.enabled && Self::is_config_reg(off) {
                    // A descriptor register changed under a running
                    // engine: its cached geometry is no longer
                    // trustworthy. Stop before touching memory with it.
                    self.raise_error(ctx, regs::ERR_BAD_DESCRIPTOR);
                }
            }
        }
    }

    fn on_mmio_read(&self, pa: u64) -> u64 {
        let off = pa - self.mmio_base;
        match off {
            regs::CONSUMED => self.counters.consumed.get(),
            regs::PRODUCED => self.counters.produced.get(),
            regs::ERROR_STATUS => self.error_status,
            regs::WATCHDOG => self.watchdog_cycles,
            _ => self.reg(off),
        }
    }

    fn token(ch: usize, pte: bool) -> u64 {
        (ch as u64) * 4 + u64::from(pte)
    }

    fn route_event(&mut self, ctx: &mut Ctx<'_>, ev: PortEvent) {
        match ev {
            PortEvent::Completed { token } => {
                let ch = (token / 4) as usize;
                let is_pte = token % 4 == 1;
                if is_pte {
                    self.walk_feed(ctx, ch);
                } else {
                    let state = self.channels[ch].state;
                    if let ChState::AccessWait { pa, seg, write } = state {
                        self.complete_segment(ctx, ch, pa, seg, write);
                    }
                }
            }
            PortEvent::Invalidated { line } => {
                if self.rcm_in_line == Some(line) {
                    self.counters.rcm_invalidations.inc();
                    self.rcm_in_dirty = true;
                }
                if self.rcm_out_line == Some(line) {
                    self.rcm_out_dirty = true;
                }
            }
            PortEvent::Downgraded { .. } => {}
        }
    }

    /// Feeds the just-fetched PTE into the channel's walker.
    fn walk_feed(&mut self, ctx: &mut Ctx<'_>, ch_idx: usize) {
        let pte_pa = match self.channels[ch_idx].walk.as_ref().map(|w| w.step()) {
            Some(WalkStep::NeedPte { pa }) => pa,
            _ => return,
        };
        let pte = ctx.mem.read_u64(pte_pa);
        let step = self.channels[ch_idx]
            .walk
            .as_mut()
            .expect("walk in progress")
            .feed(pte);
        match step {
            WalkStep::NeedPte { pa } => {
                self.issue_pte_read(ctx, ch_idx, pa);
            }
            WalkStep::Done {
                va_page,
                pa_page,
                size,
                ..
            } => {
                self.mmu.insert(va_page, pa_page, size);
                self.channels[ch_idx].walk = None;
                self.channels[ch_idx].state = ChState::Translate;
                // Retry the access next advance (same step continues).
                self.advance_channel(ctx, ch_idx);
            }
            WalkStep::Fault => {
                self.mmu.note_fault();
                self.counters.faults.inc();
                let va = self.channels[ch_idx].walk.expect("walk").va();
                self.channels[ch_idx].walk = None;
                self.channels[ch_idx].state = ChState::WaitFault;
                if !self.irq_outstanding {
                    self.irq_outstanding = true;
                    ctx.send(
                        self.irq_target,
                        Msg::Irq {
                            irq: self.irq_num,
                            payload: va,
                        },
                    );
                }
            }
        }
    }

    fn issue_pte_read(&mut self, ctx: &mut Ctx<'_>, ch_idx: usize, pte_pa: u64) {
        match self
            .port
            .request(ctx, pte_pa, false, Self::token(ch_idx, true))
        {
            Outcome::Hit { .. } => {
                // PTE already in the MTE buffer: feed immediately.
                self.channels[ch_idx].state = ChState::WalkWait;
                self.walk_feed(ctx, ch_idx);
            }
            Outcome::Pending => self.channels[ch_idx].state = ChState::WalkWait,
            Outcome::Retry => {
                // Conflicting transaction; retried from Translate next cycle.
                self.channels[ch_idx].state = ChState::Translate;
                self.channels[ch_idx].walk = None;
            }
        }
    }

    fn complete_segment(
        &mut self,
        ctx: &mut Ctx<'_>,
        ch_idx: usize,
        pa: u64,
        seg: usize,
        write: bool,
    ) {
        let finished = {
            let ch = &mut self.channels[ch_idx];
            let off = ch.offset;
            if write {
                ctx.mem.write_bytes(pa, &ch.buf[off..off + seg]);
            } else {
                ctx.mem.read_bytes(pa, &mut ch.buf[off..off + seg]);
            }
            ch.offset += seg;
            ch.last_pa = pa;
            ch.state = ChState::Translate;
            ch.offset >= ch.buf.len()
        };
        if self.channels[ch_idx].transient {
            // Streaming data: give the line back (the engine has no data
            // cache; it bridges, it does not hold).
            self.port.relinquish(ctx, line_of(pa));
        }
        if finished {
            self.channels[ch_idx].done = true;
            return;
        }
        self.advance_channel(ctx, ch_idx);
    }

    /// Pushes a channel forward: translation (TLB or walk), then the port
    /// access for the current line segment.
    fn advance_channel(&mut self, ctx: &mut Ctx<'_>, ch_idx: usize) {
        let (va, write, seg) = {
            let ch = &self.channels[ch_idx];
            let Some(op) = &ch.op else { return };
            if ch.done {
                return;
            }
            match ch.state {
                ChState::Translate => {}
                ChState::AccessHit { at, pa, seg, write } if ctx.cycle >= at => {
                    self.complete_segment(ctx, ch_idx, pa, seg, write);
                    return;
                }
                _ => return,
            }
            let (va0, write) = match op {
                MteOp::Read { va } => (*va, false),
                MteOp::Write { va } => (*va, true),
            };
            let va = va0 + ch.offset as u64;
            let line_rem = (LINE_BYTES - (va % LINE_BYTES)) as usize;
            let seg = line_rem.min(ch.buf.len() - ch.offset);
            (va, write, seg)
        };
        match self.mmu.lookup(va) {
            TlbResult::Hit { pa } => {
                // A whole-line write can skip the DRAM fetch (the WCM
                // write-combines full output lines).
                let full_line = write && seg == LINE_BYTES as usize && pa % LINE_BYTES == 0;
                match self
                    .port
                    .request_opts(ctx, pa, write, Self::token(ch_idx, false), full_line)
                {
                    Outcome::Hit { ready_at } => {
                        self.channels[ch_idx].state = ChState::AccessHit {
                            at: ready_at,
                            pa,
                            seg,
                            write,
                        };
                    }
                    Outcome::Pending => {
                        self.channels[ch_idx].state = ChState::AccessWait { pa, seg, write };
                    }
                    Outcome::Retry => { /* stay in Translate; retry next cycle */ }
                }
            }
            TlbResult::Miss => {
                let walk = self.mmu.begin_walk(va);
                let WalkStep::NeedPte { pa } = walk.step() else {
                    unreachable!("fresh walk always needs a PTE")
                };
                self.channels[ch_idx].walk = Some(walk);
                self.issue_pte_read(ctx, ch_idx, pa);
            }
        }
    }

    /// Arms the input-side RCM on the line of the last pointer read.
    fn arm_rcm_in(&mut self) {
        let line = line_of(self.channels[CH_CONS].last_pa);
        if self.rcm_in_line != Some(line) {
            if let Some(old) = self.rcm_in_line {
                self.port.unpin(old);
            }
            self.port.pin(line);
            self.rcm_in_line = Some(line);
        }
        // Close the arming race: if the line was invalidated (or evicted)
        // between the pointer-read grant and this arm, the writer's signal
        // already passed — mark it pending rather than waiting forever.
        if self.port.state_of(line).is_none() {
            self.rcm_in_dirty = true;
        }
    }

    fn arm_rcm_out(&mut self) {
        let line = line_of(self.channels[CH_PROD].last_pa);
        if self.rcm_out_line != Some(line) {
            if let Some(old) = self.rcm_out_line {
                self.port.unpin(old);
            }
            self.port.pin(line);
            self.rcm_out_line = Some(line);
        }
        if self.port.state_of(line).is_none() {
            self.rcm_out_dirty = true;
        }
    }

    /// True when the input-side RCM has a pending (or missed) signal.
    fn rcm_in_pending(&self) -> bool {
        self.rcm_in_dirty
            || self
                .rcm_in_line
                .is_some_and(|l| self.port.state_of(l).is_none())
    }

    /// True when the output-side RCM has a pending (or missed) signal.
    fn rcm_out_pending(&self) -> bool {
        self.rcm_out_dirty
            || self
                .rcm_out_line
                .is_some_and(|l| self.port.state_of(l).is_none())
    }

    /// Takes one consumer-side backoff window: records it in the
    /// `backoff_window` histogram, then doubles the next window up to
    /// 16× the programmed base (capped exponential; reset to the base
    /// whenever data actually moves). Returns the window's end cycle.
    fn take_cons_backoff(&mut self, cycle: u64) -> u64 {
        let win = self.backoff_cons;
        self.backoff_window.record(win);
        let cap = self.backoff.saturating_mul(16).max(self.backoff);
        self.backoff_cons = win.saturating_mul(2).max(1).min(cap);
        cycle + win
    }

    /// Producer-side twin of [`CohortEngine::take_cons_backoff`].
    fn take_prod_backoff(&mut self, cycle: u64) -> u64 {
        let win = self.backoff_prod;
        self.backoff_window.record(win);
        let cap = self.backoff.saturating_mul(16).max(self.backoff);
        self.backoff_prod = win.saturating_mul(2).max(1).min(cap);
        cycle + win
    }

    /// MTE arbitration (Fig. 6): with a shared MTE an endpoint may only
    /// start a new operation when the other endpoint's is complete;
    /// otherwise one operation per endpoint may be in flight.
    fn mte_free(&self, me: usize) -> bool {
        !self.mte_shared || self.channels[1 - me].idle()
    }

    /// Elements the consumer moves per accelerator data block.
    fn in_chunk_elems(&self) -> u64 {
        (self.accel.descriptor().input_block_bytes as u64 / self.in_q.elem).max(1)
    }

    /// Elements the producer publishes per flush (§4.3: pointer updates at
    /// data-block granularity, bounded by the endpoint's staging buffer —
    /// a hardware FIFO of a few cache lines).
    fn out_chunk_elems(&self) -> u64 {
        let stage_cap = (4 * LINE_BYTES) / self.out_q.elem;
        (self.accel.descriptor().output_block_bytes as u64 / self.out_q.elem)
            .clamp(1, stage_cap.max(1))
    }

    fn step_consumer(&mut self, ctx: &mut Ctx<'_>) {
        match self.cons {
            ConsState::Off => {}
            ConsState::Csr => {
                if self.channels[CH_CONS].idle() && self.mte_free(CH_CONS) {
                    let va = self.reg(regs::CSR_BASE_VA);
                    let len = self.reg(regs::CSR_LEN) as usize;
                    self.channels[CH_CONS].start_read_opts(va, len, true);
                    self.advance_channel(ctx, CH_CONS);
                    self.csr_pending = true;
                    self.cons = ConsState::InitRd; // continues after completion
                }
            }
            ConsState::InitRd => {
                if let Some(buf) = self.channels[CH_CONS].take_done() {
                    if self.csr_pending {
                        self.csr_pending = false;
                        if self.accel.configure(&buf).is_err() {
                            // A bad CSR buffer is user error, not a model
                            // bug: latch it and wait for software.
                            self.raise_error(ctx, regs::ERR_CSR_REJECTED);
                            return;
                        }
                        // fall through to issue the rd read below
                    } else {
                        self.rd = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                        self.cons = ConsState::InitWr;
                        return;
                    }
                }
                if self.channels[CH_CONS].idle() && self.mte_free(CH_CONS) {
                    self.channels[CH_CONS].start_read_opts(self.in_q.rd_va, 8, true);
                    self.advance_channel(ctx, CH_CONS);
                }
            }
            ConsState::InitWr | ConsState::ReadWr => {
                if let Some(buf) = self.channels[CH_CONS].take_done() {
                    self.known_wr = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                    self.arm_rcm_in();
                    self.rcm_in_dirty = false;
                    self.cons = ConsState::Judge;
                    self.step_consumer(ctx);
                } else if self.channels[CH_CONS].idle() && self.mte_free(CH_CONS) {
                    self.channels[CH_CONS].start_read(self.in_q.wr_va, 8);
                    self.advance_channel(ctx, CH_CONS);
                }
            }
            ConsState::Judge => {
                let available = self.known_wr.wrapping_sub(self.rd);
                if available > 0 {
                    if !self.mte_free(CH_CONS) {
                        return; // shared MTE busy with the producer side
                    }
                    let n = self
                        .in_chunk_elems()
                        .min(available)
                        .min(self.in_q.contig(self.rd));
                    let va = self.in_q.slot_va(self.rd);
                    self.channels[CH_CONS].start_read_opts(va, (n * self.in_q.elem) as usize, true);
                    self.advance_channel(ctx, CH_CONS);
                    self.backoff_cons = self.backoff; // progress: reset backoff
                    self.cons = ConsState::Fetch { n };
                } else if self.rcm_in_pending() {
                    // Missed publications while busy: re-read after backoff.
                    self.counters.backoffs.inc();
                    let until = self.take_cons_backoff(ctx.cycle);
                    self.cons = ConsState::Backoff { until };
                } else {
                    self.cons = ConsState::Waiting;
                }
            }
            ConsState::Waiting => {
                if self.rcm_in_pending() {
                    self.counters.backoffs.inc();
                    let until = self.take_cons_backoff(ctx.cycle);
                    self.cons = ConsState::Backoff { until };
                }
            }
            ConsState::Backoff { until } => {
                if ctx.cycle >= until {
                    self.rcm_in_dirty = false;
                    self.cons = ConsState::ReadWr;
                    self.step_consumer(ctx);
                }
            }
            ConsState::Fetch { n } => {
                if let Some(buf) = self.channels[CH_CONS].take_done() {
                    self.channels[CH_CONS].buf = buf; // keep data for feeding
                    self.cons = ConsState::Feed { fed: 0, n };
                }
            }
            ConsState::Feed { fed, n } => {
                let data = std::mem::take(&mut self.channels[CH_CONS].buf);
                let mut fed = fed;
                // A stalled accelerator holds ready low: nothing is fed.
                if fed < data.len() && !self.stalled(ctx.cycle) && self.accel.ready(ctx.cycle) {
                    let word =
                        u64::from_le_bytes(data[fed..fed + 8].try_into().expect("8-byte word"));
                    self.accel.push_word(word);
                    fed += 8;
                }
                if fed >= data.len() {
                    if !self.mte_free(CH_CONS) {
                        self.channels[CH_CONS].buf = data;
                        self.cons = ConsState::Feed { fed, n };
                        return;
                    }
                    self.rd += n;
                    self.counters.consumed.add(n);
                    self.channels[CH_CONS].start_write_opts(
                        self.in_q.rd_va,
                        self.rd.to_le_bytes().to_vec(),
                        true,
                    );
                    self.advance_channel(ctx, CH_CONS);
                    self.cons = ConsState::UpdateRd;
                } else {
                    self.channels[CH_CONS].buf = data;
                    self.cons = ConsState::Feed { fed, n };
                }
            }
            ConsState::UpdateRd => {
                if self.channels[CH_CONS].take_done().is_some() {
                    self.cons = ConsState::Judge;
                    self.step_consumer(ctx);
                }
            }
            ConsState::Halted => {}
        }
    }

    fn step_producer(&mut self, ctx: &mut Ctx<'_>) {
        // Collect accelerator output continuously (up to one word/cycle).
        // An injected accelerator stall holds valid low: no words emerge.
        if self.enabled
            && !matches!(self.prod, ProdState::Halted)
            && !self.stalled(ctx.cycle)
            && self.stage.len() < 4 * LINE_BYTES as usize
        {
            if let Some(w) = self.accel.pop_word(ctx.cycle) {
                self.stage.extend_from_slice(&w.to_le_bytes());
            }
        }
        match self.prod {
            ProdState::Off => {}
            ProdState::InitRd => {
                if let Some(buf) = self.channels[CH_PROD].take_done() {
                    self.known_rd = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                    self.arm_rcm_out();
                    self.rcm_out_dirty = false;
                    self.prod = ProdState::InitWr;
                } else if self.channels[CH_PROD].idle() && self.mte_free(CH_PROD) {
                    self.channels[CH_PROD].start_read(self.out_q.rd_va, 8);
                    self.advance_channel(ctx, CH_PROD);
                }
            }
            ProdState::InitWr => {
                if let Some(buf) = self.channels[CH_PROD].take_done() {
                    self.wr = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                    self.prod = ProdState::Collect;
                } else if self.channels[CH_PROD].idle() && self.mte_free(CH_PROD) {
                    self.channels[CH_PROD].start_read_opts(self.out_q.wr_va, 8, true);
                    self.advance_channel(ctx, CH_PROD);
                }
            }
            ProdState::Collect => {
                let elem = self.out_q.elem as usize;
                let staged_elems = (self.stage.len() / elem) as u64;
                if staged_elems == 0 {
                    return;
                }
                let free = self.out_q.len - self.wr.wrapping_sub(self.known_rd);
                if free == 0 {
                    // Ring full by our view: wait for the consumer to move
                    // its read index (invalidation on the pinned rd line).
                    self.counters.full_stalls.inc();
                    if self.rcm_out_pending() {
                        let until = self.take_prod_backoff(ctx.cycle);
                        self.prod = ProdState::BackoffFull { until };
                    }
                    return;
                }
                let want = self.out_chunk_elems();
                if staged_elems < want && self.accel.output_len() >= 8 {
                    return; // let the data block accumulate
                }
                if !self.mte_free(CH_PROD) {
                    return; // shared MTE busy with the consumer side
                }
                // Pointer updates happen at data-block granularity (§4.3).
                let n = staged_elems
                    .min(want.max(1))
                    .min(free)
                    .min(self.out_q.contig(self.wr));
                let bytes = (n as usize) * elem;
                let data: Vec<u8> = self.stage.drain(..bytes).collect();
                self.channels[CH_PROD].start_write_opts(self.out_q.slot_va(self.wr), data, true);
                self.advance_channel(ctx, CH_PROD);
                self.backoff_prod = self.backoff; // progress: reset backoff
                self.prod = ProdState::WriteData { n };
            }
            ProdState::BackoffFull { until } => {
                if ctx.cycle >= until {
                    self.rcm_out_dirty = false;
                    self.prod = ProdState::ReadRd;
                    self.step_producer_tail(ctx);
                }
            }
            ProdState::ReadRd => self.step_producer_tail(ctx),
            ProdState::WriteData { n } => {
                if self.channels[CH_PROD].take_done().is_some() {
                    // WCM ordering: the data write completed coherently;
                    // wait out the ordering drain, then publish the index.
                    self.prod = ProdState::WcmDrain {
                        n,
                        until: ctx.cycle + self.wcm_turnaround,
                    };
                }
            }
            ProdState::WcmDrain { n, until } => {
                if ctx.cycle >= until && self.mte_free(CH_PROD) {
                    self.wr += n;
                    self.counters.produced.add(n);
                    self.channels[CH_PROD].start_write_opts(
                        self.out_q.wr_va,
                        self.wr.to_le_bytes().to_vec(),
                        true,
                    );
                    self.advance_channel(ctx, CH_PROD);
                    self.prod = ProdState::UpdateWr;
                }
            }
            ProdState::UpdateWr => {
                if self.channels[CH_PROD].take_done().is_some() {
                    self.prod = ProdState::Collect;
                }
            }
            ProdState::Halted => {}
        }
    }

    fn step_producer_tail(&mut self, ctx: &mut Ctx<'_>) {
        // ReadRd state body (shared by the backoff path).
        if let Some(buf) = self.channels[CH_PROD].take_done() {
            self.known_rd = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            self.arm_rcm_out();
            self.rcm_out_dirty = false;
            self.prod = ProdState::Collect;
        } else if self.channels[CH_PROD].idle() && self.mte_free(CH_PROD) {
            self.channels[CH_PROD].start_read(self.out_q.rd_va, 8);
            self.advance_channel(ctx, CH_PROD);
        }
    }

    /// Functional (untimed) translation for the abort drain: TLB hit, or
    /// a page-table walk executed in place with direct PTE reads. Returns
    /// `None` on an unmapped page — the drain skips, it never faults.
    fn translate_now(&mut self, ctx: &Ctx<'_>, va: u64) -> Option<u64> {
        if let TlbResult::Hit { pa } = self.mmu.lookup(va) {
            return Some(pa);
        }
        let mut walk = self.mmu.begin_walk(va);
        let mut step = walk.step();
        loop {
            match step {
                WalkStep::NeedPte { pa } => {
                    let pte = ctx.mem.read_u64(pa);
                    step = walk.feed(pte);
                }
                WalkStep::Done {
                    va_page,
                    pa_page,
                    size,
                    ..
                } => {
                    self.mmu.insert(va_page, pa_page, size);
                    match self.mmu.lookup(va) {
                        TlbResult::Hit { pa } => return Some(pa),
                        TlbResult::Miss => return None,
                    }
                }
                WalkStep::Fault => return None,
            }
        }
    }

    /// The graceful-drain half of a watchdog abort — the quiesce and
    /// checkpoint steps of failover. Runs functionally (the timed
    /// datapath is what hung); data lives in `PhysMem` so every write is
    /// immediately visible, and the data-before-pointer order still
    /// holds. The steps, in order:
    ///
    /// 1. finish the producer's in-flight transaction (a half-written
    ///    data block is rewritten idempotently; a pending index
    ///    publication is completed);
    /// 2. finish the consumer's in-flight feed, so every byte in the
    ///    accelerator's staging ratchet is input the read index covers;
    /// 3. drain the accelerator (in-flight block + staged blocks) and
    ///    flush complete elements into the output ring;
    /// 4. spill datapath residue — the partial input block and output
    ///    that did not fit — to the checkpoint area (if configured) for
    ///    the resuming engine to restore;
    /// 5. republish **both** queue indices from the engine's
    ///    authoritative internal views, covering in-flight `UpdateRd` /
    ///    `UpdateWr` publications that were lost with the datapath.
    ///
    /// Together with the epoch fence this makes migration exactly-once:
    /// memory afterwards accounts for every element precisely once.
    /// Returns elements flushed into the ring.
    fn watchdog_drain(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        // The internal index views are only authoritative once the
        // endpoint's init reads completed; before that, memory already
        // holds the truth and must not be overwritten with zeros.
        let rd_valid = !matches!(
            self.cons,
            ConsState::Off | ConsState::Csr | ConsState::InitRd | ConsState::Halted
        );
        let wr_valid = !matches!(
            self.prod,
            ProdState::Off | ProdState::InitRd | ProdState::InitWr | ProdState::Halted
        );
        match self.prod {
            ProdState::WriteData { .. } => {
                // The data block was (partially) written at slot_va(wr)
                // with wr unpublished. Put it back in front of the stage:
                // the flush below rewrites the same slots with the same
                // bytes, so the completed prefix is rewritten harmlessly.
                let buf = std::mem::take(&mut self.channels[CH_PROD].buf);
                self.stage.splice(0..0, buf);
            }
            ProdState::WcmDrain { n, .. } => {
                // Data fully written, publication pending: finish it.
                self.wr += n;
                self.counters.produced.add(n);
            }
            _ => {}
        }
        let spill_pa = self.reg(regs::SPILL_PA);
        if spill_pa != 0 {
            if let ConsState::Feed { fed, n } = self.cons {
                // Part of this fetch is already in the ratchet; the rest
                // is in the channel buffer. Finish the feed and account
                // it, so the ratchet holds only input the read index
                // covers — the spill below preserves any partial block.
                // Without a spill area the feed is abandoned instead: the
                // read index stays unadvanced and a resuming binding
                // refetches the whole chunk (a resume resets the ratchet,
                // so rescued words could not survive it).
                let data = std::mem::take(&mut self.channels[CH_CONS].buf);
                let mut off = fed;
                while off + 8 <= data.len() {
                    let w = u64::from_le_bytes(data[off..off + 8].try_into().expect("8-byte word"));
                    self.accel.push_word(w);
                    off += 8;
                }
                self.rd += n;
                self.counters.consumed.add(n);
            }
        }
        for w in self.accel.drain_words() {
            self.stage.extend_from_slice(&w.to_le_bytes());
        }
        // Refresh the consumer's published read index so the ring-full
        // check below uses fresh state, not a stale snapshot.
        if self.out_q.len > 0 {
            if let Some(pa) = self.translate_now(ctx, self.out_q.rd_va) {
                self.known_rd = ctx.mem.read_u64(pa);
            }
        }
        let elem = self.out_q.elem.max(8) as usize;
        let mut drained = 0u64;
        while wr_valid && self.stage.len() >= elem {
            if self.out_q.len <= self.wr.wrapping_sub(self.known_rd) {
                break; // ring full: the rest spills below
            }
            let va = self.out_q.slot_va(self.wr);
            let data: Vec<u8> = self.stage.drain(..elem).collect();
            if let Some(pa) = self.translate_now(ctx, va) {
                ctx.mem.write_bytes(pa, &data);
                self.wr += 1;
                drained += 1;
            }
        }
        if drained > 0 {
            self.counters.produced.add(drained);
            self.counters.drained_elems.add(drained);
        }
        if spill_pa != 0 {
            // Checkpoint the residue: the partial input block (already
            // covered by rd — un-consuming is unsound once the producer
            // saw the published index) and output that found no ring
            // space. `[n_in, n_out, in_words…, out_words…]`.
            let residue = self.accel.take_staged_words();
            let leftovers: Vec<u8> = self.stage.drain(..).collect();
            ctx.mem.write_u64(spill_pa, residue.len() as u64);
            ctx.mem
                .write_u64(spill_pa + 8, (leftovers.len() / 8) as u64);
            let mut pa = spill_pa + 16;
            for w in &residue {
                ctx.mem.write_u64(pa, *w);
                pa += 8;
            }
            for chunk in leftovers.chunks_exact(8) {
                ctx.mem
                    .write_u64(pa, u64::from_le_bytes(chunk.try_into().expect("word")));
                pa += 8;
            }
        }
        // Republish both indices: an UpdateRd/UpdateWr that died in
        // flight is functionally completed here, and memory becomes the
        // single source of truth for the checkpoint.
        if rd_valid && self.in_q.len > 0 {
            if let Some(pa) = self.translate_now(ctx, self.in_q.rd_va) {
                ctx.mem.write_u64(pa, self.rd);
            }
        }
        if wr_valid && self.out_q.len > 0 {
            if let Some(pa) = self.translate_now(ctx, self.out_q.wr_va) {
                ctx.mem.write_u64(pa, self.wr);
            }
        }
        drained
    }

    /// The per-direction forward-progress watchdog. "Progress" is a
    /// change in the endpoint's observable signature (state label, element
    /// counter, channel offset); benign waiting states reset the timer. A
    /// budget overrun aborts the in-flight transaction, drains staged
    /// output, and latches the direction's watchdog error bit.
    fn check_watchdog(&mut self, ctx: &mut Ctx<'_>) {
        if self.watchdog_cycles == 0 || self.error_status != 0 {
            return;
        }
        // A fail-stopped datapath makes no state benign: even an idle
        // wait is a wedge once the engine is dead, so the dead-man's
        // handle always fires within one budget of the kill.
        let dead = self.killed();
        let cons_sig = (
            self.cons.label(),
            self.counters.consumed.get(),
            self.channels[CH_CONS].offset,
        );
        let cons_benign = !dead
            && matches!(
                self.cons,
                ConsState::Off | ConsState::Waiting | ConsState::Halted
            );
        if cons_benign || cons_sig != self.cons_sig {
            self.cons_sig = cons_sig;
            self.cons_progress_at = ctx.cycle;
        }
        let prod_sig = (
            self.prod.label(),
            self.counters.produced.get(),
            self.channels[CH_PROD].offset,
            self.stage.len(),
        );
        let prod_benign = !dead
            && (matches!(self.prod, ProdState::Off | ProdState::Halted)
                || (matches!(self.prod, ProdState::Collect)
                    && self.stage.len() < self.out_q.elem as usize));
        if prod_benign || prod_sig != self.prod_sig {
            self.prod_sig = prod_sig;
            self.prod_progress_at = ctx.cycle;
        }
        let cons_tripped = ctx.cycle.saturating_sub(self.cons_progress_at) > self.watchdog_cycles;
        let prod_tripped = ctx.cycle.saturating_sub(self.prod_progress_at) > self.watchdog_cycles;
        if !cons_tripped && !prod_tripped {
            return;
        }
        self.counters.watchdog_trips.inc();
        if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
            trace.instant(
                self.tid,
                "fault",
                "watchdog_trip",
                ctx.cycle,
                vec![
                    ("cons", self.cons.label().into()),
                    ("prod", self.prod.label().into()),
                ],
            );
        }
        self.watchdog_drain(ctx);
        let mut bits = 0;
        if cons_tripped {
            bits |= regs::ERR_WATCHDOG_CONS;
        }
        if prod_tripped {
            bits |= regs::ERR_WATCHDOG_PROD;
        }
        if dead {
            bits |= regs::ERR_ENGINE_DEAD;
            if let Some(at) = self.dead_since {
                self.failover_detect.record(ctx.cycle.saturating_sub(at));
            }
        }
        self.raise_error(ctx, bits);
    }
}

impl ConsState {
    fn label(&self) -> &'static str {
        match self {
            ConsState::Off => "cons:Off",
            ConsState::Csr => "cons:Csr",
            ConsState::InitRd => "cons:InitRd",
            ConsState::InitWr => "cons:InitWr",
            ConsState::Judge => "cons:Judge",
            ConsState::Waiting => "cons:Waiting",
            ConsState::Backoff { .. } => "cons:Backoff",
            ConsState::ReadWr => "cons:ReadWr",
            ConsState::Fetch { .. } => "cons:Fetch",
            ConsState::Feed { .. } => "cons:Feed",
            ConsState::UpdateRd => "cons:UpdateRd",
            ConsState::Halted => "cons:Halted",
        }
    }
}

impl ProdState {
    fn label(&self) -> &'static str {
        match self {
            ProdState::Off => "prod:Off",
            ProdState::InitRd => "prod:InitRd",
            ProdState::InitWr => "prod:InitWr",
            ProdState::Collect => "prod:Collect",
            ProdState::BackoffFull { .. } => "prod:BackoffFull",
            ProdState::ReadRd => "prod:ReadRd",
            ProdState::WriteData { .. } => "prod:WriteData",
            ProdState::WcmDrain { .. } => "prod:WcmDrain",
            ProdState::UpdateWr => "prod:UpdateWr",
            ProdState::Halted => "prod:Halted",
        }
    }
}

impl CohortEngine {
    /// Emits state-residency spans when the consumer/producer state
    /// machines changed label this step, and advances the enter stamps.
    fn trace_state_spans(&mut self, cycle: u64, prev_cons: &'static str, prev_prod: &'static str) {
        let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) else {
            // Keep the stamps fresh so spans are correct once enabled.
            if self.cons.label() != prev_cons {
                self.cons_since = cycle;
            }
            if self.prod.label() != prev_prod {
                self.prod_since = cycle;
            }
            return;
        };
        if self.cons.label() != prev_cons {
            trace.complete(
                self.tid,
                "engine",
                prev_cons,
                self.cons_since,
                cycle.saturating_sub(self.cons_since).max(1),
                vec![("next", self.cons.label().into())],
            );
            self.cons_since = cycle;
        }
        if self.prod.label() != prev_prod {
            trace.complete(
                self.tid,
                "engine",
                prev_prod,
                self.prod_since,
                cycle.saturating_sub(self.prod_since).max(1),
                vec![("next", self.prod.label().into())],
            );
            self.prod_since = cycle;
        }
    }
}

impl Component for CohortEngine {
    fn name(&self) -> &str {
        "engine"
    }

    // Scope by engine index, not component slot: slot numbers depend on
    // how many components precede the engines in build order, while the
    // engine index is the stable hardware identity ([`set_engine_index`]
    // runs before the engine joins the SoC). Two engines therefore get
    // `engine#0` / `engine#1` regardless of mesh assembly order, and a
    // shard sweep's per-engine stats line up across configurations.
    fn scope(&self, _id: CompId) -> String {
        format!("engine#{}", self.engine_index)
    }

    fn attach(&mut self, obs: &Observability) {
        let c = &self.counters;
        for (name, counter) in [
            ("consumed", &c.consumed),
            ("produced", &c.produced),
            ("rcm_invalidations", &c.rcm_invalidations),
            ("backoffs", &c.backoffs),
            ("faults", &c.faults),
            ("full_stalls", &c.full_stalls),
            ("tlb_hits", &c.tlb_hits),
            ("tlb_misses", &c.tlb_misses),
            ("watchdog_trips", &c.watchdog_trips),
            ("error_irqs", &c.error_irqs),
            ("drained_elems", &c.drained_elems),
            ("resumes", &c.resumes),
            ("rebinds", &c.rebinds),
        ] {
            obs.adopt_counter(name, counter);
        }
        obs.adopt_histogram("in_queue_occupancy", &self.in_occupancy);
        obs.adopt_histogram("out_queue_occupancy", &self.out_occupancy);
        obs.adopt_histogram("backoff_window", &self.backoff_window);
        obs.adopt_histogram("error_irq_latency", &self.error_irq_latency);
        obs.adopt_histogram("failover_detect", &self.failover_detect);
        obs.adopt_histogram("failover_rebind", &self.failover_rebind);
        obs.adopt_histogram("failover_resume", &self.failover_resume);
        self.port.port_counters().register(obs, "mte");
        self.trace = Some(obs.trace.clone());
        self.tid = obs.tid;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let dead = self.killed();
        while let Some(env) = ctx.recv() {
            match &env.msg {
                m if CoherentPort::wants(m) => {
                    // Service the coherence protocol either way (the port
                    // must keep answering the directory), but a dead
                    // datapath drops the completions on the floor.
                    let events = self.port.handle(&env, ctx);
                    if !dead {
                        for ev in events {
                            self.route_event(ctx, ev);
                        }
                    }
                }
                Msg::MmioWrite { pa, value, tag } => {
                    let (pa, value, tag) = (*pa, *value, *tag);
                    self.on_mmio_write(ctx, pa, value);
                    ctx.send_delayed(env.src, Msg::MmioWriteResp { tag }, self.mmio_latency);
                }
                Msg::MmioRead { pa, tag } => {
                    let value = self.on_mmio_read(*pa);
                    ctx.send_delayed(
                        env.src,
                        Msg::MmioReadResp { tag: *tag, value },
                        self.mmio_latency,
                    );
                }
                other => panic!("engine received unexpected message {other:?}"),
            }
        }
        if !self.enabled {
            return;
        }
        if dead {
            // Fail-stop: the datapath is frozen solid — no channel
            // advance, no accelerator cycle, no endpoint steps. Only the
            // register file (serviced above) and the watchdog survive,
            // and the watchdog is what detects the wedge.
            if self.dead_since.is_none() {
                self.dead_since = Some(ctx.cycle);
                if let Some(trace) = self.trace.as_ref().filter(|t| t.is_enabled()) {
                    trace.instant(self.tid, "fault", "fail_stop", ctx.cycle, vec![]);
                }
            }
            self.check_watchdog(ctx);
            return;
        }
        // Advance hit-path channel completions.
        for i in 0..2 {
            self.advance_channel(ctx, i);
        }
        // An injected stall freezes the accelerator pipeline entirely: no
        // launches, no retirements, valid/ready both held low.
        if !self.stalled(ctx.cycle) {
            self.accel.step(ctx.cycle);
        }
        let (prev_cons, prev_prod) = (self.cons.label(), self.prod.label());
        self.step_consumer(ctx);
        self.step_producer(ctx);
        self.check_watchdog(ctx);
        self.trace_state_spans(ctx.cycle, prev_cons, prev_prod);
        if let Some((t0, base)) = self.resume_watch {
            if self.counters.produced.get() > base {
                self.failover_resume.record(ctx.cycle.saturating_sub(t0));
                self.resume_watch = None;
            }
        }
        // Mirror the MMU's plain counters into the registry-backed cells
        // and sample queue occupancy as seen by the engine.
        let m = self.mmu.counters();
        self.counters.tlb_hits.set(m.hits);
        self.counters.tlb_misses.set(m.misses);
        self.in_occupancy
            .record(self.known_wr.saturating_sub(self.rd));
        self.out_occupancy
            .record(self.wr.saturating_sub(self.known_rd));
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        if !self.enabled {
            // A disabled engine services only MMIO, and MMIO arrives as
            // messages — delivery already forces a stepped cycle.
            return u64::MAX;
        }
        let dead = self.killed();
        let mut k = if dead {
            if self.dead_since.is_none() {
                return 1; // the next step latches dead_since and traces it
            }
            u64::MAX // frozen datapath: only the watchdog (below) can act
        } else {
            // Per-channel bound: only the translate/retry loop and a
            // scheduled hit completion act on their own — walks, misses
            // and faults resolve via port messages, whose delivery forces
            // a stepped cycle anyway.
            let chan = |i: usize| -> u64 {
                let ch = &self.channels[i];
                if ch.op.is_none() || ch.done {
                    return u64::MAX; // nothing in flight / endpoint's move
                }
                match ch.state {
                    ChState::Translate => 1, // issues or retries every cycle
                    ChState::AccessHit { at, .. } => at.saturating_sub(now),
                    ChState::WalkWait | ChState::WaitFault | ChState::AccessWait { .. } => u64::MAX,
                }
            };
            // An endpoint mid-transfer is frozen until its channel either
            // completes (`done`, consumed next step) or frees up.
            let actionable = |i: usize| self.channels[i].op.is_none() || self.channels[i].done;
            let cons = match self.cons {
                ConsState::Off | ConsState::Halted => u64::MAX,
                ConsState::Waiting => {
                    if self.rcm_in_pending() {
                        1
                    } else {
                        // Wakes only when the pinned rd line is touched,
                        // and invalidations arrive as port messages.
                        u64::MAX
                    }
                }
                ConsState::Backoff { until } => until.saturating_sub(now),
                ConsState::Feed { fed, .. } => {
                    if fed < self.channels[CH_CONS].buf.len() {
                        if self.stalled(now) {
                            // Frozen feed; the un-stall edge is a fault
                            // window the SoC injector term bounds.
                            u64::MAX
                        } else if self.accel.ready(now) {
                            1 // a word goes in this coming cycle
                        } else {
                            // Back-pressured mid-chunk: ready rises when
                            // the in-flight block retires.
                            self.accel.next_event(now)
                        }
                    } else {
                        1 // finalise: publish the read index
                    }
                }
                ConsState::Csr
                | ConsState::InitRd
                | ConsState::InitWr
                | ConsState::ReadWr
                | ConsState::Fetch { .. }
                | ConsState::UpdateRd => {
                    if actionable(CH_CONS) {
                        1
                    } else {
                        u64::MAX
                    }
                }
                ConsState::Judge => 1,
            };
            let prod = match self.prod {
                ProdState::Off | ProdState::Halted => u64::MAX,
                ProdState::Collect => {
                    // A full element acts (or counts a full-stall) every
                    // cycle; a partial one waits on accelerator output,
                    // which the accel bound below covers.
                    if self.stage.len() >= self.out_q.elem as usize {
                        1
                    } else {
                        u64::MAX
                    }
                }
                ProdState::BackoffFull { until } | ProdState::WcmDrain { until, .. } => {
                    until.saturating_sub(now)
                }
                ProdState::InitRd
                | ProdState::InitWr
                | ProdState::ReadRd
                | ProdState::WriteData { .. }
                | ProdState::UpdateWr => {
                    if actionable(CH_PROD) {
                        1
                    } else {
                        u64::MAX
                    }
                }
            };
            let accel = if self.stalled(now) {
                // A stalled pipeline is frozen solid; the un-stall edge
                // is a fault window the SoC injector term bounds.
                u64::MAX
            } else {
                self.accel.next_event(now)
            };
            chan(CH_CONS)
                .min(chan(CH_PROD))
                .min(cons)
                .min(prod)
                .min(accel)
        };
        if self.watchdog_cycles != 0 && self.error_status == 0 {
            // Bound the skip to the trip cycle of any non-benign endpoint
            // (benign sides reset their timer at every stepped cycle and
            // can never trip). Benign-ness mirrors `check_watchdog`.
            let cons_benign = !dead
                && matches!(
                    self.cons,
                    ConsState::Off | ConsState::Waiting | ConsState::Halted
                );
            let prod_benign = !dead
                && (matches!(self.prod, ProdState::Off | ProdState::Halted)
                    || (matches!(self.prod, ProdState::Collect)
                        && self.stage.len() < self.out_q.elem as usize));
            if !cons_benign {
                k = k.min((self.cons_progress_at + self.watchdog_cycles + 1).saturating_sub(now));
            }
            if !prod_benign {
                k = k.min((self.prod_progress_at + self.watchdog_cycles + 1).saturating_sub(now));
            }
        }
        k.max(1)
    }

    fn fast_forward(&mut self, skipped: u64) {
        // Reconcile the per-cycle occupancy samples the skipped steps
        // would have taken; the disabled and dead paths return before
        // sampling, so they reconcile nothing.
        if !self.enabled || self.killed() {
            return;
        }
        self.in_occupancy
            .record_n(self.known_wr.saturating_sub(self.rd), skipped);
        self.out_occupancy
            .record_n(self.wr.saturating_sub(self.known_rd), skipped);
    }

    fn is_idle(&self) -> bool {
        if !self.enabled {
            return true;
        }
        if self.killed() && self.error_status == 0 {
            // Dead but not yet detected: keep cycles flowing so the
            // dead-man's handle can fire.
            return false;
        }
        // A halted engine is quiescent: it does nothing until software
        // clears ERROR_STATUS, regardless of residual staged data.
        let halted =
            matches!(self.cons, ConsState::Halted) && matches!(self.prod, ProdState::Halted);
        self.channels.iter().all(Channel::idle)
            && self.port.is_idle()
            && (halted
                || (matches!(self.cons, ConsState::Waiting | ConsState::Off)
                    && matches!(self.prod, ProdState::Collect | ProdState::Off)
                    && !self.rcm_in_pending()
                    && self.stage.len() < self.out_q.elem as usize
                    && self.accel.is_idle(0)))
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let m = self.mmu.counters();
        vec![
            ("consumed".into(), c.consumed.get()),
            ("produced".into(), c.produced.get()),
            ("rcm_invalidations".into(), c.rcm_invalidations.get()),
            ("backoffs".into(), c.backoffs.get()),
            ("faults".into(), c.faults.get()),
            ("full_stalls".into(), c.full_stalls.get()),
            ("tlb_hits".into(), m.hits),
            ("tlb_misses".into(), m.misses),
            ("tlb_flushes".into(), m.flushes),
            ("watchdog_trips".into(), c.watchdog_trips.get()),
            ("error_irqs".into(), c.error_irqs.get()),
            ("drained_elems".into(), c.drained_elems.get()),
            ("resumes".into(), c.resumes.get()),
            ("rebinds".into(), c.rebinds.get()),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
