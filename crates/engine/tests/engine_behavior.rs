//! Focused behavioural tests of the Cohort engine as a hardware component:
//! registration, CSR delivery, queue-coherent streaming, disable/flush, and
//! counter semantics — driven by hand-built core programs rather than the
//! full benchmark harness.

use cohort_accel::nullfifo::NullFifo;
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_engine::CohortEngine;
use cohort_os::addrspace::{AddressSpace, MapPolicy};
use cohort_os::driver::regs;
use cohort_os::frame::FrameAllocator;
use cohort_os::CohortDriver;
use cohort_queue::QueueLayout;
use cohort_sim::component::TileCoord;
use cohort_sim::config::SocConfig;
use cohort_sim::core::{HandlerAction, InOrderCore, IrqHandler};
use cohort_sim::directory::Directory;
use cohort_sim::faultinject::{FaultState, FOREVER};
use cohort_sim::program::{Op, Program};
use cohort_sim::soc::Soc;

const ENGINE_MMIO: u64 = 0x1000_0000;
const IRQ: u32 = 7;

struct Rig {
    soc: Soc,
    core: cohort_sim::component::CompId,
    engine: cohort_sim::component::CompId,
    space: AddressSpace,
    frames: FrameAllocator,
    driver: CohortDriver,
}

fn rig(accel: Box<dyn cohort_accel::Accelerator>) -> Rig {
    let cfg = SocConfig::default();
    let mut soc = Soc::new(cfg.clone());
    let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
    let mut frames = FrameAllocator::new(0x8000_0000, 0x9000_0000);
    let space = AddressSpace::new(&mut frames, MapPolicy::Eager);
    let mut core = InOrderCore::new(dir, &cfg, Program::new());
    core.set_translator(Box::new(space.translator()));
    let core = soc.add_component(TileCoord::new(0, 1), Box::new(core));
    let engine = CohortEngine::new(dir, &cfg, ENGINE_MMIO, core, IRQ, accel);
    let engine = soc.add_component(TileCoord::new(1, 0), Box::new(engine));
    soc.map_mmio(ENGINE_MMIO..ENGINE_MMIO + regs::BANK_BYTES, engine);
    Rig {
        soc,
        core,
        engine,
        space,
        frames,
        driver: CohortDriver::new(ENGINE_MMIO, IRQ),
    }
}

impl Rig {
    fn alloc_queue(&mut self, elem: u32, len: u32) -> QueueLayout {
        let bytes = QueueLayout::standard(0, elem, len).region_bytes;
        let va = self
            .space
            .malloc(&mut self.soc.mem, &mut self.frames, bytes, 64);
        QueueLayout::standard(va, elem, len)
    }

    fn load(&mut self, p: Program) {
        self.soc
            .component_mut::<InOrderCore>(self.core)
            .unwrap()
            .load_program(p);
    }

    fn run(&mut self) {
        let out = self.soc.run(10_000_000);
        let core = self.soc.component::<InOrderCore>(self.core).unwrap();
        assert!(
            core.is_done(),
            "program stuck: quiescent={} cycle={}",
            out.quiescent,
            out.cycle
        );
    }

    fn engine_counter(&self, name: &str) -> u64 {
        let e = self.soc.component::<CohortEngine>(self.engine).unwrap();
        match name {
            "consumed" => e.engine_counters().consumed.get(),
            "produced" => e.engine_counters().produced.get(),
            "rcm" => e.engine_counters().rcm_invalidations.get(),
            "tlb_flushes" => e.mmu_counters().flushes,
            "tlb_misses" => e.mmu_counters().misses,
            "backoffs" => e.engine_counters().backoffs.get(),
            "watchdog_trips" => e.engine_counters().watchdog_trips.get(),
            "error_irqs" => e.engine_counters().error_irqs.get(),
            "resumes" => e.engine_counters().resumes.get(),
            other => panic!("unknown counter {other}"),
        }
    }

    fn error_status(&self) -> u64 {
        self.soc
            .component::<CohortEngine>(self.engine)
            .unwrap()
            .error_status()
    }

    /// Absorbs the engine's error IRQ without kernel-side action, so tests
    /// can inspect the halted engine directly.
    fn install_noop_error_handler(&mut self) {
        let core = self.soc.component_mut::<InOrderCore>(self.core).unwrap();
        core.register_irq_handler(
            IRQ + regs::ERROR_IRQ_OFFSET,
            IrqHandler {
                entry_cycles: 10,
                entry_insts: 5,
                action: HandlerAction::Custom(Box::new(|_, _, _| Vec::new())),
            },
        );
    }
}

/// The driver's register-programming sequence, but with one register
/// overridden — the hand-rolled path for feeding the engine a descriptor
/// the (validating) driver would refuse to write.
fn raw_register_program(
    root: u64,
    in_q: &QueueLayout,
    out_q: &QueueLayout,
    override_reg: (u64, u64),
) -> Program {
    let i = &in_q.descriptor;
    let o = &out_q.descriptor;
    let mut p = Program::new();
    for (off, value) in [
        (regs::IN_WR_VA, i.write_index_va),
        (regs::IN_RD_VA, i.read_index_va),
        (regs::IN_BASE_VA, i.base_va),
        (regs::IN_ELEM, u64::from(i.element_bytes)),
        (regs::IN_LEN, u64::from(i.length)),
        (regs::OUT_WR_VA, o.write_index_va),
        (regs::OUT_RD_VA, o.read_index_va),
        (regs::OUT_BASE_VA, o.base_va),
        (regs::OUT_ELEM, u64::from(o.element_bytes)),
        (regs::OUT_LEN, u64::from(o.length)),
        (regs::PT_ROOT_PA, root),
        (regs::BACKOFF, 32),
        (regs::ENABLE, 1),
    ] {
        let value = if off == override_reg.0 {
            override_reg.1
        } else {
            value
        };
        p.push(Op::MmioStore {
            pa: ENGINE_MMIO + off,
            value,
        });
    }
    p
}

fn stream_program(
    driver: &CohortDriver,
    root: u64,
    in_q: &QueueLayout,
    out_q: &QueueLayout,
    words: &[u64],
    out_words: u64,
) -> Program {
    let mut p = driver.register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    for (i, &w) in words.iter().enumerate() {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i as u64),
            value: w,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: words.len() as u64,
    });
    for j in 0..out_words {
        p.push(Op::WaitGe {
            va: out_q.descriptor.write_index_va,
            value: j + 1,
        });
        p.push(Op::Load {
            va: out_q.descriptor.element_va(j),
            record: true,
        });
    }
    p.push(Op::Store {
        va: out_q.descriptor.read_index_va,
        value: out_words,
    });
    p.push(Op::Fence);
    p.append(driver.unregister_ops());
    p
}

#[test]
fn null_accelerator_streams_words_in_order() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 32);
    let out_q = rig.alloc_queue(8, 32);
    let words: Vec<u64> = (100..132).collect();
    let root = rig.space.root_pa();
    let p = stream_program(&rig.driver, root, &in_q, &out_q, &words, 32);
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &words[..]);
    assert_eq!(rig.engine_counter("consumed"), 32);
    assert_eq!(rig.engine_counter("produced"), 32);
}

#[test]
fn sha_engine_digest_is_correct() {
    let mut rig = rig(Box::new(Sha256Accel::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 4);
    let words: Vec<u64> = (0..8u64).map(|i| i * 0x0101_0101).collect();
    let root = rig.space.root_pa();
    let p = stream_program(&rig.driver, root, &in_q, &out_q, &words, 4);
    rig.load(p);
    rig.run();
    let mut block = [0u8; 64];
    for (i, w) in words.iter().enumerate() {
        block[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
    }
    let expect: Vec<u64> = sha256_raw_block(&block)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &expect[..]);
}

#[test]
fn csr_is_delivered_before_data() {
    // Null FIFO accepts any CSR; the point is that a CSR read happens and
    // the stream still works.
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    let csr_va = rig.space.malloc(&mut rig.soc.mem, &mut rig.frames, 16, 64);
    let pa = rig.space.translate(&rig.soc.mem, csr_va).unwrap();
    rig.soc.mem.write_bytes(pa, b"sixteen byte cfg");
    let root = rig.space.root_pa();
    let mut p = rig.driver.register_ops(
        root,
        &in_q.descriptor,
        &out_q.descriptor,
        Some((csr_va, 16)),
        32,
    );
    for i in 0..8u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 8,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 8,
    });
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    assert_eq!(rig.engine_counter("produced"), 8);
}

#[test]
fn wraparound_ring_reuses_slots() {
    // Push 3 rounds through a tiny 8-deep ring: indices wrap twice.
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    let root = rig.space.root_pa();
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    let mut expect = Vec::new();
    for round in 0..3u64 {
        for i in 0..8u64 {
            let idx = round * 8 + i;
            let value = 0xbeef_0000 + idx;
            expect.push(value);
            p.push(Op::Store {
                va: in_q.descriptor.element_va(idx),
                value,
            });
        }
        p.push(Op::Fence);
        p.push(Op::Store {
            va: in_q.descriptor.write_index_va,
            value: (round + 1) * 8,
        });
        for j in 0..8u64 {
            let idx = round * 8 + j;
            p.push(Op::WaitGe {
                va: out_q.descriptor.write_index_va,
                value: idx + 1,
            });
            p.push(Op::Load {
                va: out_q.descriptor.element_va(idx),
                record: true,
            });
        }
        p.push(Op::Store {
            va: out_q.descriptor.read_index_va,
            value: (round + 1) * 8,
        });
        p.push(Op::Fence);
    }
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &expect[..]);
    assert_eq!(rig.engine_counter("consumed"), 24);
}

#[test]
fn tlb_flush_mid_stream_is_transparent() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 16);
    let out_q = rig.alloc_queue(8, 16);
    let root = rig.space.root_pa();
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    for i in 0..8u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 8,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 8,
    });
    // MMU-notifier shootdown between the two halves.
    p.append(rig.driver.tlb_flush_ops());
    for i in 8..16u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 16,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 16,
    });
    for j in 0..16u64 {
        p.push(Op::Load {
            va: out_q.descriptor.element_va(j),
            record: true,
        });
    }
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    let expect: Vec<u64> = (0..16).collect();
    assert_eq!(core.recorded(), &expect[..]);
    assert!(rig.engine_counter("tlb_flushes") >= 1);
    // The flush forces fresh walks afterwards.
    assert!(rig.engine_counter("tlb_misses") >= 2);
}

#[test]
fn disable_then_reenable_runs_again() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    let root = rig.space.root_pa();
    // First session.
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    for i in 0..4u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i + 1,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 4,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 4,
    });
    p.append(rig.driver.unregister_ops());
    // Second session on fresh queues.
    let in2 = rig.alloc_queue(8, 8);
    let out2 = rig.alloc_queue(8, 8);
    let mut p2 = rig
        .driver
        .register_ops(root, &in2.descriptor, &out2.descriptor, None, 32);
    for i in 0..4u64 {
        p2.push(Op::Store {
            va: in2.descriptor.element_va(i),
            value: i + 100,
        });
    }
    p2.push(Op::Fence);
    p2.push(Op::Store {
        va: in2.descriptor.write_index_va,
        value: 4,
    });
    p2.push(Op::WaitGe {
        va: out2.descriptor.write_index_va,
        value: 4,
    });
    for j in 0..4u64 {
        p2.push(Op::Load {
            va: out2.descriptor.element_va(j),
            record: true,
        });
    }
    p2.append(rig.driver.unregister_ops());
    p.append(p2);
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &[100, 101, 102, 103]);
    assert_eq!(rig.engine_counter("consumed"), 8, "both sessions consumed");
}

#[test]
fn engine_reports_status_over_mmio() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    let root = rig.space.root_pa();
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    for i in 0..8u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 8,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 8,
    });
    p.push(Op::MmioLoad {
        pa: ENGINE_MMIO + regs::CONSUMED,
        record: true,
    });
    p.push(Op::MmioLoad {
        pa: ENGINE_MMIO + regs::PRODUCED,
        record: true,
    });
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &[8, 8]);
}

#[test]
fn bad_descriptor_sets_sticky_error_instead_of_panicking() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    rig.install_noop_error_handler();
    let root = rig.space.root_pa();
    // A length of 48 is not a power of two: the engine must refuse it at
    // configure time, halt, and latch the sticky bit — never touch memory.
    let mut p = raw_register_program(root, &in_q, &out_q, (regs::IN_LEN, 48));
    p.push(Op::MmioLoad {
        pa: ENGINE_MMIO + regs::ERROR_STATUS,
        record: true,
    });
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(core.recorded(), &[regs::ERR_BAD_DESCRIPTOR]);
    assert_eq!(rig.engine_counter("error_irqs"), 1);
    assert_eq!(
        rig.engine_counter("consumed"),
        0,
        "no memory traffic on a bad config"
    );
}

#[test]
fn error_status_write_resumes_engine_after_software_fix() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    rig.install_noop_error_handler();
    let root = rig.space.root_pa();
    // Enable with a broken input length: engine halts with the sticky bit.
    let mut p = raw_register_program(root, &in_q, &out_q, (regs::IN_LEN, 48));
    // Kernel repair path: fix the register, then clear ERROR_STATUS. The
    // clear re-runs the enable sequence against in-memory queue state.
    p.push(Op::MmioStore {
        pa: ENGINE_MMIO + regs::IN_LEN,
        value: 8,
    });
    p.push(Op::MmioStore {
        pa: ENGINE_MMIO + regs::ERROR_STATUS,
        value: 0,
    });
    for i in 0..4u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i + 1,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 4,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 4,
    });
    for j in 0..4u64 {
        p.push(Op::Load {
            va: out_q.descriptor.element_va(j),
            record: true,
        });
    }
    p.push(Op::MmioLoad {
        pa: ENGINE_MMIO + regs::ERROR_STATUS,
        record: true,
    });
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(
        core.recorded(),
        &[1, 2, 3, 4, 0],
        "stream works after resume, status clear"
    );
    assert_eq!(rig.engine_counter("resumes"), 1);
}

#[test]
fn watchdog_trips_on_stalled_accelerator() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    rig.install_noop_error_handler();
    // Wedge the accelerator for the whole run.
    let state = FaultState::default();
    state.stall_accel(FOREVER);
    rig.soc
        .component_mut::<CohortEngine>(rig.engine)
        .unwrap()
        .set_fault_state(state);
    let root = rig.space.root_pa();
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 32);
    p.append(rig.driver.watchdog_ops(3_000));
    for i in 0..8u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 8,
    });
    // No WaitGe: the output never comes. The watchdog must detect the
    // wedge, halt the engine and let the SoC quiesce — no deadlock.
    rig.load(p);
    rig.run();
    assert_eq!(rig.engine_counter("watchdog_trips"), 1);
    assert_ne!(
        rig.error_status() & regs::ERR_WATCHDOG_CONS,
        0,
        "consumer flagged"
    );
    assert_eq!(rig.engine_counter("error_irqs"), 1);
}

#[test]
fn backoff_grows_exponentially_while_starved() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let in_q = rig.alloc_queue(8, 8);
    let out_q = rig.alloc_queue(8, 8);
    let root = rig.space.root_pa();
    // Base window 16, then ~20k cycles with an empty input queue: a fixed
    // window would re-poll ~1200 times; the capped exponential window
    // (16 -> 256) stays far below that.
    let mut p = rig
        .driver
        .register_ops(root, &in_q.descriptor, &out_q.descriptor, None, 16);
    p.push(Op::Alu(1));
    p.push(Op::KernelCost {
        cycles: 20_000,
        insts: 10,
    });
    for i in 0..4u64 {
        p.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: i + 7,
        });
    }
    p.push(Op::Fence);
    p.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: 4,
    });
    p.push(Op::WaitGe {
        va: out_q.descriptor.write_index_va,
        value: 4,
    });
    for j in 0..4u64 {
        p.push(Op::Load {
            va: out_q.descriptor.element_va(j),
            record: true,
        });
    }
    p.append(rig.driver.unregister_ops());
    rig.load(p);
    rig.run();
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert_eq!(
        core.recorded(),
        &[7, 8, 9, 10],
        "stream still correct after deep backoff"
    );
    let backoffs = rig.engine_counter("backoffs");
    assert!(backoffs > 0, "the starved engine must have backed off");
    assert!(
        backoffs < 600,
        "exponential growth: got {backoffs} polls, fixed would be ~1200"
    );
    assert!(
        rig.soc.stats_json().contains("backoff_window"),
        "window histogram registered in stats"
    );
}

/// Deterministic splitmix64 generator for the epoch property loops
/// (mirrors `tests/proptests.rs`: fixed seed, reproducible case set).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

#[test]
fn epoch_fence_rejects_every_stale_configure() {
    // Property: for ANY fence F and ANY binding epoch e < F, enabling the
    // engine latches ERR_STALE_EPOCH and the binding never runs — even
    // after a later attempt to lower the fence (it is monotonic). This is
    // the exactly-once half of queue migration: a stale engine waking
    // late can never republish indices for a migrated queue.
    let mut rng = Rng(0xEF0C_FE4C_E500_0001);
    for case in 0..64u32 {
        let fence = rng.range(2, 1 << 40);
        let stale = rng.range(0, fence);
        let rollback = rng.range(0, fence);
        let mut rig = rig(Box::new(NullFifo::new()));
        rig.install_noop_error_handler();
        let in_q = rig.alloc_queue(8, 16);
        let out_q = rig.alloc_queue(8, 16);
        let root = rig.space.root_pa();
        let mut p = Program::new();
        p.push(Op::MmioStore {
            pa: ENGINE_MMIO + regs::EPOCH_FENCE,
            value: fence,
        });
        // A smaller later write must not lower the fence.
        p.push(Op::MmioStore {
            pa: ENGINE_MMIO + regs::EPOCH_FENCE,
            value: rollback,
        });
        p.append(rig.driver.register_ops(
            root,
            &in_q.descriptor.with_epoch(stale),
            &out_q.descriptor.with_epoch(stale),
            None,
            32,
        ));
        p.append(rig.driver.unregister_ops());
        rig.load(p);
        rig.run();
        assert_ne!(
            rig.error_status() & regs::ERR_STALE_EPOCH,
            0,
            "case {case}: fence {fence}, stale epoch {stale} must be rejected"
        );
        assert_eq!(
            rig.engine_counter("consumed"),
            0,
            "a fenced-out binding must never run"
        );
    }
}

#[test]
fn epoch_at_or_above_fence_is_accepted() {
    // Dual property: any epoch >= the fence enables cleanly and streams.
    let mut rng = Rng(0xEF0C_ACCE_0000_0002);
    for case in 0..16u32 {
        let fence = rng.range(1, 1 << 40);
        let epoch = rng.range(fence, fence + (1 << 20));
        let mut rig = rig(Box::new(NullFifo::new()));
        let in_q = rig.alloc_queue(8, 16);
        let out_q = rig.alloc_queue(8, 16);
        let root = rig.space.root_pa();
        let mut p = Program::new();
        p.push(Op::MmioStore {
            pa: ENGINE_MMIO + regs::EPOCH_FENCE,
            value: fence,
        });
        p.append(rig.driver.register_ops(
            root,
            &in_q.descriptor.with_epoch(epoch),
            &out_q.descriptor.with_epoch(epoch),
            None,
            32,
        ));
        for i in 0..4u64 {
            p.push(Op::Store {
                va: in_q.descriptor.element_va(i),
                value: 50 + i,
            });
        }
        p.push(Op::Fence);
        p.push(Op::Store {
            va: in_q.descriptor.write_index_va,
            value: 4,
        });
        p.push(Op::WaitGe {
            va: out_q.descriptor.write_index_va,
            value: 4,
        });
        p.append(rig.driver.unregister_ops());
        rig.load(p);
        rig.run();
        assert_eq!(
            rig.error_status(),
            0,
            "case {case}: epoch {epoch} >= fence {fence} is valid"
        );
        assert_eq!(
            rig.engine_counter("consumed"),
            4,
            "the binding streams normally"
        );
    }
}
