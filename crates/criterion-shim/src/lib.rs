//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build must work fully offline, so instead of pulling criterion from
//! crates.io the benches link against this shim. It implements the same
//! surface (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros) with a straightforward
//! calibrate-then-sample wall-clock harness:
//!
//! * each benchmark is warmed up, then the iteration count is calibrated so
//!   one sample takes at least `TARGET_SAMPLE` (10 ms);
//! * `sample_size` samples are collected and the median per-iteration time
//!   is reported, together with derived throughput when a [`Throughput`]
//!   was configured.
//!
//! Output is one line per benchmark:
//! `group/id  time: 123.4 ns/iter  thrpt: 162.1 Melem/s  (n=10)`.

use std::time::{Duration, Instant};

/// Minimum measured duration of one sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Per-sample throughput annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `group/function/parameter` for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing context passed to the closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            // Grow geometrically towards the target sample duration.
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale * 1.2) as u64).clamp(iters + 1, iters * 16)
            };
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate numbers.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut line = format!(
            "{}/{id}  time: {}  (n={})",
            self.name,
            fmt_time(b.ns_per_iter),
            self.sample_size
        );
        if let Some(t) = self.throughput {
            line.push_str(&format!("  thrpt: {}", fmt_throughput(t, b.ns_per_iter)));
        }
        println!("{line}");
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

fn fmt_throughput(t: Throughput, ns_per_iter: f64) -> String {
    let per_sec = |n: u64| n as f64 / (ns_per_iter / 1e9);
    match t {
        Throughput::Elements(n) => format!("{:.1} Melem/s", per_sec(n) / 1e6),
        Throughput::Bytes(n) => format!("{:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a set of [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: 2,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_runs_and_formats() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1)).sample_size(2);
        g.bench_with_input(BenchmarkId::new("id", 3), &3, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(12.0).contains("ns"));
        assert!(fmt_time(12_000.0).contains("s/iter"));
        assert!(fmt_time(12_000_000.0).contains("ms"));
    }
}
