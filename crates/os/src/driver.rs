//! The Cohort kernel driver model (paper §4.4).
//!
//! A *single* driver supports all Cohort-enabled accelerators. It exposes
//! two syscalls — `cohort_register` and `cohort_unregister` — which this
//! model expands into the exact MMIO programming sequences a core executes
//! (so registration cost is measured, not assumed), plus the MMU-notifier
//! TLB shootdown and the page-fault interrupt handler.
//!
//! The [`regs`] module is the uapi: the engine's uncached configuration
//! register map, shared between the driver (writer) and the engine
//! implementation in `cohort-engine` (reader).

use crate::addrspace::AddressSpace;
use crate::frame::FrameAllocator;
use std::sync::{Arc, Mutex};
use cohort_sim::core::{HandlerAction, InOrderCore, IrqHandler};
use cohort_sim::mem::PhysMem;
use cohort_sim::program::{Op, Program};
use cohort_queue::{DescriptorError, QueueDescriptor};
use std::collections::HashMap;

/// The Cohort engine's uncached configuration register map: byte offsets
/// from the engine's MMIO base, each register 8 bytes (paper §4.2: the
/// uncached registers are the only MMIO component of Cohort).
pub mod regs {
    /// Write 1 to enable the engine, 0 to disable.
    pub const ENABLE: u64 = 0x00;
    /// Input queue: write-index virtual address.
    pub const IN_WR_VA: u64 = 0x08;
    /// Input queue: read-index virtual address.
    pub const IN_RD_VA: u64 = 0x10;
    /// Input queue: data base virtual address.
    pub const IN_BASE_VA: u64 = 0x18;
    /// Input queue: element size in bytes.
    pub const IN_ELEM: u64 = 0x20;
    /// Input queue: length in elements.
    pub const IN_LEN: u64 = 0x28;
    /// Output queue: write-index virtual address.
    pub const OUT_WR_VA: u64 = 0x30;
    /// Output queue: read-index virtual address.
    pub const OUT_RD_VA: u64 = 0x38;
    /// Output queue: data base virtual address.
    pub const OUT_BASE_VA: u64 = 0x40;
    /// Output queue: element size in bytes.
    pub const OUT_ELEM: u64 = 0x48;
    /// Output queue: length in elements.
    pub const OUT_LEN: u64 = 0x50;
    /// Physical address of the process's Sv39 root table.
    pub const PT_ROOT_PA: u64 = 0x58;
    /// Reader-coherency-manager backoff window in cycles (§4.2.3).
    pub const BACKOFF: u64 = 0x60;
    /// Write any value to flush the engine TLB (MMU notifier path).
    pub const TLB_FLUSH: u64 = 0x68;
    /// Write to resolve an outstanding page fault: value 0 tells the
    /// walker to retry its own walk; any other value is a PTE-installed
    /// acknowledgement (§4.2.4 describes both registers).
    pub const FAULT_RESOLVE: u64 = 0x70;
    /// CSR configuration buffer: virtual address (0 = none).
    pub const CSR_BASE_VA: u64 = 0x78;
    /// CSR configuration buffer: length in bytes.
    pub const CSR_LEN: u64 = 0x80;
    /// Read-only: elements consumed from the input queue.
    pub const CONSUMED: u64 = 0x88;
    /// Read-only: elements produced into the output queue.
    pub const PRODUCED: u64 = 0x90;
    /// Sticky error-status register. Reads return the accumulated
    /// [`ERR_BAD_DESCRIPTOR`]/[`ERR_WATCHDOG_CONS`]/… bits; any write
    /// clears them and resumes a halted engine (re-reading the queue
    /// indices from memory, so software may fix state first).
    pub const ERROR_STATUS: u64 = 0x98;
    /// Watchdog budget in cycles: if an enabled endpoint makes no forward
    /// progress for this many cycles the engine aborts the in-flight
    /// transaction, drains staged data and raises the error interrupt.
    /// 0 (the reset value) disables the watchdog.
    pub const WATCHDOG: u64 = 0xA0;
    /// Size of the register bank in bytes.
    pub const BANK_BYTES: u64 = 0x100;

    // The error/watchdog registers must land inside the bank.
    const _: () = assert!(ERROR_STATUS < BANK_BYTES);
    const _: () = assert!(WATCHDOG < BANK_BYTES);

    /// [`ERROR_STATUS`] bit: a configuration register failed validation
    /// (bad geometry, or a config write while enabled).
    pub const ERR_BAD_DESCRIPTOR: u64 = 1 << 0;
    /// [`ERROR_STATUS`] bit: the consumer endpoint tripped the watchdog.
    pub const ERR_WATCHDOG_CONS: u64 = 1 << 1;
    /// [`ERROR_STATUS`] bit: the producer endpoint tripped the watchdog.
    pub const ERR_WATCHDOG_PROD: u64 = 1 << 2;
    /// [`ERROR_STATUS`] bit: the accelerator rejected its CSR buffer.
    pub const ERR_CSR_REJECTED: u64 = 1 << 3;

    /// The error interrupt line is the engine's page-fault line plus this
    /// offset, so the two handlers stay distinct per engine.
    pub const ERROR_IRQ_OFFSET: u32 = 32;
}

/// Cost model for the modelled syscalls, in cycles/instructions. These
/// stand in for trap entry, fd lookup and driver bookkeeping of the real
/// kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallCost {
    /// Cycles consumed before the driver's MMIO writes begin.
    pub cycles: u64,
    /// Instructions retired by the kernel path.
    pub insts: u64,
}

impl Default for SyscallCost {
    fn default() -> Self {
        Self { cycles: 700, insts: 450 }
    }
}

/// Shared kernel memory-management state: one address space + frame pool
/// visible to every fault handler (engine interrupt path and core path).
pub type SharedVm = Arc<Mutex<(AddressSpace, FrameAllocator)>>;

/// A software recovery path run (with functional memory access) when the
/// engine's error retries are exhausted — the graceful-degradation hook.
pub type SoftwareFallback = Box<dyn FnMut(&mut PhysMem) + Send>;

/// The Cohort driver: knows where one engine's registers live and which
/// interrupt line it raises.
#[derive(Debug, Clone)]
pub struct CohortDriver {
    mmio_base: u64,
    irq: u32,
    cost: SyscallCost,
}

impl CohortDriver {
    /// Creates a driver for the engine whose register bank starts at
    /// `mmio_base` and which raises interrupt `irq`.
    pub fn new(mmio_base: u64, irq: u32) -> Self {
        Self { mmio_base, irq, cost: SyscallCost::default() }
    }

    /// Overrides the syscall cost model.
    pub fn with_cost(mut self, cost: SyscallCost) -> Self {
        self.cost = cost;
        self
    }

    /// The engine's register bank base.
    pub fn mmio_base(&self) -> u64 {
        self.mmio_base
    }

    /// The engine's interrupt number.
    pub fn irq(&self) -> u32 {
        self.irq
    }

    fn reg(&self, offset: u64) -> u64 {
        self.mmio_base + offset
    }

    /// Expands `cohort_register(acc_id, in, out)` into the program the
    /// calling core executes: kernel entry cost, the descriptor writes,
    /// the page-table root, optional CSR buffer, backoff, then enable.
    ///
    /// # Panics
    /// Panics if a descriptor fails validation — the driver is the
    /// enforcement point (§4.4: "user space may not touch Cohort's
    /// configuration registers").
    pub fn register_ops(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Program {
        input.validate().expect("input descriptor invalid");
        output.validate().expect("output descriptor invalid");
        self.build_register(root_pa, input, output, csr, backoff)
    }

    /// Fallible form of [`CohortDriver::register_ops`]: returns the
    /// violated invariant instead of panicking, for callers that want to
    /// surface `cohort_register` failure as an errno rather than a crash.
    ///
    /// # Errors
    /// Returns the first [`DescriptorError`] found in either descriptor.
    pub fn try_register_ops(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Result<Program, DescriptorError> {
        input.validate()?;
        output.validate()?;
        Ok(self.build_register(root_pa, input, output, csr, backoff))
    }

    fn build_register(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost { cycles: self.cost.cycles, insts: self.cost.insts });
        let writes = [
            (regs::IN_WR_VA, input.write_index_va),
            (regs::IN_RD_VA, input.read_index_va),
            (regs::IN_BASE_VA, input.base_va),
            (regs::IN_ELEM, u64::from(input.element_bytes)),
            (regs::IN_LEN, u64::from(input.length)),
            (regs::OUT_WR_VA, output.write_index_va),
            (regs::OUT_RD_VA, output.read_index_va),
            (regs::OUT_BASE_VA, output.base_va),
            (regs::OUT_ELEM, u64::from(output.element_bytes)),
            (regs::OUT_LEN, u64::from(output.length)),
            (regs::PT_ROOT_PA, root_pa),
            (regs::BACKOFF, backoff),
            (regs::CSR_BASE_VA, csr.map_or(0, |(va, _)| va)),
            (regs::CSR_LEN, csr.map_or(0, |(_, len)| len)),
            (regs::ENABLE, 1),
        ];
        for (off, value) in writes {
            p.push(Op::MmioStore { pa: self.reg(off), value });
        }
        p
    }

    /// Expands `cohort_unregister`: disable the engine, flush its TLB
    /// (resource teardown, §4.4), plus kernel exit cost.
    pub fn unregister_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: self.cost.cycles / 2,
            insts: self.cost.insts / 2,
        });
        p.push(Op::MmioStore { pa: self.reg(regs::ENABLE), value: 0 });
        p.push(Op::MmioStore { pa: self.reg(regs::TLB_FLUSH), value: 1 });
        p
    }

    /// The MMU-notifier path: a TLB shootdown reaching this engine
    /// (invoked by the kernel when mappings of a registered process
    /// change).
    pub fn tlb_flush_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost { cycles: 80, insts: 60 });
        p.push(Op::MmioStore { pa: self.reg(regs::TLB_FLUSH), value: 1 });
        p
    }

    /// Arms (or, with 0, disarms) the engine's forward-progress watchdog.
    /// Deliberately cheap: one register write, usable while enabled.
    pub fn watchdog_ops(&self, cycles: u64) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost { cycles: 40, insts: 30 });
        p.push(Op::MmioStore { pa: self.reg(regs::WATCHDOG), value: cycles });
        p
    }

    /// Installs the demand-paging machinery on `core`: the engine's
    /// page-fault interrupt handler (map the page, poke the resolve
    /// register; §4.2.4/§4.4) and the kernel's fault path for the core's
    /// own accesses. Both share one view of the address space and frame
    /// pool, exactly like the real kernel's mm.
    pub fn install_fault_handler(&self, core: &mut InOrderCore, vm: SharedVm) {
        self.install_fault_machinery(core, vm, None);
    }

    /// [`CohortDriver::install_fault_handler`] with a swap backing store:
    /// when a freshly mapped page has stashed contents (a fault-injection
    /// storm paged it out), the handler copies them into the new frame —
    /// the model of a page-in from swap. Required for storm recovery to be
    /// data-lossless.
    pub fn install_fault_handler_with_swap(
        &self,
        core: &mut InOrderCore,
        vm: SharedVm,
        swap: SwapStore,
    ) {
        self.install_fault_machinery(core, vm, Some(swap));
    }

    fn install_fault_machinery(
        &self,
        core: &mut InOrderCore,
        vm: SharedVm,
        swap: Option<SwapStore>,
    ) {
        let resolve_reg = self.reg(regs::FAULT_RESOLVE);
        let engine_vm = Arc::clone(&vm);
        let engine_swap = swap.clone();
        core.register_irq_handler(
            self.irq,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, faulting_va| {
                    fault_in(mem, &engine_vm, engine_swap.as_ref(), faulting_va);
                    Some((resolve_reg, 0))
                })),
            },
        );
        core.set_fault_hook(Box::new(move |mem, va| {
            fault_in(mem, &vm, swap.as_ref(), va);
            true
        }));
    }

    /// Installs the error-interrupt handler on `core`: on each engine
    /// error IRQ the kernel clears [`regs::ERROR_STATUS`] (which resumes
    /// the engine from the in-memory queue indices) up to `max_retries`
    /// times; past that it runs `fallback` — the software-only queue path
    /// of §4.4's graceful-degradation contract — and disables the engine.
    pub fn install_error_handler(
        &self,
        core: &mut InOrderCore,
        max_retries: u64,
        mut fallback: Option<SoftwareFallback>,
    ) {
        let status_reg = self.reg(regs::ERROR_STATUS);
        let enable_reg = self.reg(regs::ENABLE);
        let mut tries = 0u64;
        core.register_irq_handler(
            self.irq + regs::ERROR_IRQ_OFFSET,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, _error_bits| {
                    if tries < max_retries {
                        tries += 1;
                        Some((status_reg, 0))
                    } else {
                        if let Some(f) = fallback.as_mut() {
                            f(mem);
                        }
                        Some((enable_reg, 0))
                    }
                })),
            },
        );
    }

    /// Creates the shared kernel view of a process's memory management
    /// state used by [`CohortDriver::install_fault_handler`].
    pub fn shared_vm(space: AddressSpace, frames: FrameAllocator) -> SharedVm {
        Arc::new(Mutex::new((space, frames)))
    }
}

/// Evicted-page backing store for fault-injection storms: page contents
/// keyed by page-aligned VA. The storm stashes bytes here before unmapping;
/// the swap-aware fault handler restores them on the next touch.
pub type SwapStore = Arc<Mutex<HashMap<u64, Vec<u8>>>>;

/// Creates an empty [`SwapStore`].
pub fn swap_store() -> SwapStore {
    Arc::new(Mutex::new(HashMap::new()))
}

/// The shared kernel fault path: map the page if unmapped, then page-in
/// stashed contents from `swap` if the page had been evicted with state.
/// Public so software fallback paths (graceful degradation after engine
/// errors) can fault pages in exactly like the interrupt handlers do.
pub fn fault_in(mem: &mut PhysMem, vm: &SharedVm, swap: Option<&SwapStore>, va: u64) {
    use crate::sv39::PAGE_BYTES;
    let mut g = vm.lock().expect("vm lock");
    let (space, frames) = &mut *g;
    if space.translate(mem, va).is_none() {
        space.handle_fault(mem, frames, va);
        if let Some(swap) = swap {
            let page_va = va & !(PAGE_BYTES - 1);
            if let Some(bytes) = swap.lock().expect("swap lock").remove(&page_va) {
                let pa = space.translate(mem, page_va).expect("page just mapped");
                mem.write_bytes(pa, &bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_queue::QueueLayout;

    fn descs() -> (QueueDescriptor, QueueDescriptor) {
        (
            QueueLayout::standard(0x10_0000, 8, 64).descriptor,
            QueueLayout::standard(0x20_0000, 8, 64).descriptor,
        )
    }

    #[test]
    fn register_program_writes_all_registers() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (i, o) = descs();
        let p = d.register_ops(0x100_0000, &i, &o, Some((0x30_0000, 17)), 32);
        let stores: Vec<_> = p
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::MmioStore { pa, value } => Some((*pa, *value)),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 15);
        assert_eq!(
            stores.last(),
            Some(&(0x4000_0000 + regs::ENABLE, 1)),
            "enable must be the final write"
        );
        assert!(stores.contains(&(0x4000_0000 + regs::IN_WR_VA, i.write_index_va)));
        assert!(stores.contains(&(0x4000_0000 + regs::CSR_LEN, 17)));
        assert!(matches!(p.ops()[0], Op::KernelCost { .. }), "syscall entry first");
    }

    #[test]
    fn unregister_disables_and_flushes() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let p = d.unregister_ops();
        assert!(p
            .ops()
            .iter()
            .any(|op| matches!(op, Op::MmioStore { pa, value: 0 } if *pa == 0x4000_0000)));
        assert!(p
            .ops()
            .iter()
            .any(|op| matches!(op, Op::MmioStore { pa, .. } if *pa == 0x4000_0000 + regs::TLB_FLUSH)));
    }

    #[test]
    #[should_panic(expected = "input descriptor invalid")]
    fn register_validates_descriptors() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (mut i, o) = descs();
        i.length = 0;
        let _ = d.register_ops(0, &i, &o, None, 0);
    }

    #[test]
    fn try_register_returns_error_not_panic() {
        use cohort_queue::DescriptorError;
        let d = CohortDriver::new(0x4000_0000, 5);
        let (i, mut o) = descs();
        assert!(d.try_register_ops(0x100_0000, &i, &o, None, 32).is_ok());
        o.length = 48; // not a power of two
        assert_eq!(
            d.try_register_ops(0x100_0000, &i, &o, None, 32),
            Err(DescriptorError::NotPowerOfTwo(48))
        );
    }

    #[test]
    fn watchdog_program_writes_register() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let p = d.watchdog_ops(50_000);
        assert!(p.ops().iter().any(|op| matches!(
            op,
            Op::MmioStore { pa, value: 50_000 } if *pa == 0x4000_0000 + regs::WATCHDOG
        )));
    }

    #[test]
    fn error_register_offsets_are_inside_the_bank() {
        // Bank-bounds checks live as `const` assertions in the regs module.
        assert_ne!(regs::ERROR_STATUS, regs::PRODUCED);
        // The four sticky bits are distinct one-hot values.
        let bits = [
            regs::ERR_BAD_DESCRIPTOR,
            regs::ERR_WATCHDOG_CONS,
            regs::ERR_WATCHDOG_PROD,
            regs::ERR_CSR_REJECTED,
        ];
        for (n, b) in bits.iter().enumerate() {
            assert_eq!(b.count_ones(), 1);
            for later in &bits[n + 1..] {
                assert_ne!(b, later);
            }
        }
    }
}
