//! The Cohort kernel driver model (paper §4.4).
//!
//! A *single* driver supports all Cohort-enabled accelerators. It exposes
//! two syscalls — `cohort_register` and `cohort_unregister` — which this
//! model expands into the exact MMIO programming sequences a core executes
//! (so registration cost is measured, not assumed), plus the MMU-notifier
//! TLB shootdown and the page-fault interrupt handler.
//!
//! The [`regs`] module is the uapi: the engine's uncached configuration
//! register map, shared between the driver (writer) and the engine
//! implementation in `cohort-engine` (reader).

use crate::addrspace::AddressSpace;
use crate::frame::FrameAllocator;
use std::sync::{Arc, Mutex};
use cohort_sim::core::{HandlerAction, InOrderCore, IrqHandler};
use cohort_sim::program::{Op, Program};
use cohort_queue::QueueDescriptor;

/// The Cohort engine's uncached configuration register map: byte offsets
/// from the engine's MMIO base, each register 8 bytes (paper §4.2: the
/// uncached registers are the only MMIO component of Cohort).
pub mod regs {
    /// Write 1 to enable the engine, 0 to disable.
    pub const ENABLE: u64 = 0x00;
    /// Input queue: write-index virtual address.
    pub const IN_WR_VA: u64 = 0x08;
    /// Input queue: read-index virtual address.
    pub const IN_RD_VA: u64 = 0x10;
    /// Input queue: data base virtual address.
    pub const IN_BASE_VA: u64 = 0x18;
    /// Input queue: element size in bytes.
    pub const IN_ELEM: u64 = 0x20;
    /// Input queue: length in elements.
    pub const IN_LEN: u64 = 0x28;
    /// Output queue: write-index virtual address.
    pub const OUT_WR_VA: u64 = 0x30;
    /// Output queue: read-index virtual address.
    pub const OUT_RD_VA: u64 = 0x38;
    /// Output queue: data base virtual address.
    pub const OUT_BASE_VA: u64 = 0x40;
    /// Output queue: element size in bytes.
    pub const OUT_ELEM: u64 = 0x48;
    /// Output queue: length in elements.
    pub const OUT_LEN: u64 = 0x50;
    /// Physical address of the process's Sv39 root table.
    pub const PT_ROOT_PA: u64 = 0x58;
    /// Reader-coherency-manager backoff window in cycles (§4.2.3).
    pub const BACKOFF: u64 = 0x60;
    /// Write any value to flush the engine TLB (MMU notifier path).
    pub const TLB_FLUSH: u64 = 0x68;
    /// Write to resolve an outstanding page fault: value 0 tells the
    /// walker to retry its own walk; any other value is a PTE-installed
    /// acknowledgement (§4.2.4 describes both registers).
    pub const FAULT_RESOLVE: u64 = 0x70;
    /// CSR configuration buffer: virtual address (0 = none).
    pub const CSR_BASE_VA: u64 = 0x78;
    /// CSR configuration buffer: length in bytes.
    pub const CSR_LEN: u64 = 0x80;
    /// Read-only: elements consumed from the input queue.
    pub const CONSUMED: u64 = 0x88;
    /// Read-only: elements produced into the output queue.
    pub const PRODUCED: u64 = 0x90;
    /// Size of the register bank in bytes.
    pub const BANK_BYTES: u64 = 0x100;
}

/// Cost model for the modelled syscalls, in cycles/instructions. These
/// stand in for trap entry, fd lookup and driver bookkeeping of the real
/// kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallCost {
    /// Cycles consumed before the driver's MMIO writes begin.
    pub cycles: u64,
    /// Instructions retired by the kernel path.
    pub insts: u64,
}

impl Default for SyscallCost {
    fn default() -> Self {
        Self { cycles: 700, insts: 450 }
    }
}

/// Shared kernel memory-management state: one address space + frame pool
/// visible to every fault handler (engine interrupt path and core path).
pub type SharedVm = Arc<Mutex<(AddressSpace, FrameAllocator)>>;

/// The Cohort driver: knows where one engine's registers live and which
/// interrupt line it raises.
#[derive(Debug, Clone)]
pub struct CohortDriver {
    mmio_base: u64,
    irq: u32,
    cost: SyscallCost,
}

impl CohortDriver {
    /// Creates a driver for the engine whose register bank starts at
    /// `mmio_base` and which raises interrupt `irq`.
    pub fn new(mmio_base: u64, irq: u32) -> Self {
        Self { mmio_base, irq, cost: SyscallCost::default() }
    }

    /// Overrides the syscall cost model.
    pub fn with_cost(mut self, cost: SyscallCost) -> Self {
        self.cost = cost;
        self
    }

    /// The engine's register bank base.
    pub fn mmio_base(&self) -> u64 {
        self.mmio_base
    }

    /// The engine's interrupt number.
    pub fn irq(&self) -> u32 {
        self.irq
    }

    fn reg(&self, offset: u64) -> u64 {
        self.mmio_base + offset
    }

    /// Expands `cohort_register(acc_id, in, out)` into the program the
    /// calling core executes: kernel entry cost, the descriptor writes,
    /// the page-table root, optional CSR buffer, backoff, then enable.
    ///
    /// # Panics
    /// Panics if a descriptor fails validation — the driver is the
    /// enforcement point (§4.4: "user space may not touch Cohort's
    /// configuration registers").
    pub fn register_ops(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Program {
        input.validate().expect("input descriptor invalid");
        output.validate().expect("output descriptor invalid");
        let mut p = Program::new();
        p.push(Op::KernelCost { cycles: self.cost.cycles, insts: self.cost.insts });
        let writes = [
            (regs::IN_WR_VA, input.write_index_va),
            (regs::IN_RD_VA, input.read_index_va),
            (regs::IN_BASE_VA, input.base_va),
            (regs::IN_ELEM, u64::from(input.element_bytes)),
            (regs::IN_LEN, u64::from(input.length)),
            (regs::OUT_WR_VA, output.write_index_va),
            (regs::OUT_RD_VA, output.read_index_va),
            (regs::OUT_BASE_VA, output.base_va),
            (regs::OUT_ELEM, u64::from(output.element_bytes)),
            (regs::OUT_LEN, u64::from(output.length)),
            (regs::PT_ROOT_PA, root_pa),
            (regs::BACKOFF, backoff),
            (regs::CSR_BASE_VA, csr.map_or(0, |(va, _)| va)),
            (regs::CSR_LEN, csr.map_or(0, |(_, len)| len)),
            (regs::ENABLE, 1),
        ];
        for (off, value) in writes {
            p.push(Op::MmioStore { pa: self.reg(off), value });
        }
        p
    }

    /// Expands `cohort_unregister`: disable the engine, flush its TLB
    /// (resource teardown, §4.4), plus kernel exit cost.
    pub fn unregister_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: self.cost.cycles / 2,
            insts: self.cost.insts / 2,
        });
        p.push(Op::MmioStore { pa: self.reg(regs::ENABLE), value: 0 });
        p.push(Op::MmioStore { pa: self.reg(regs::TLB_FLUSH), value: 1 });
        p
    }

    /// The MMU-notifier path: a TLB shootdown reaching this engine
    /// (invoked by the kernel when mappings of a registered process
    /// change).
    pub fn tlb_flush_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost { cycles: 80, insts: 60 });
        p.push(Op::MmioStore { pa: self.reg(regs::TLB_FLUSH), value: 1 });
        p
    }

    /// Installs the demand-paging machinery on `core`: the engine's
    /// page-fault interrupt handler (map the page, poke the resolve
    /// register; §4.2.4/§4.4) and the kernel's fault path for the core's
    /// own accesses. Both share one view of the address space and frame
    /// pool, exactly like the real kernel's mm.
    pub fn install_fault_handler(&self, core: &mut InOrderCore, vm: SharedVm) {
        let resolve_reg = self.reg(regs::FAULT_RESOLVE);
        let engine_vm = Arc::clone(&vm);
        core.register_irq_handler(
            self.irq,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, faulting_va| {
                    let mut g = engine_vm.lock().expect("vm lock");
                    let (space, frames) = &mut *g;
                    if space.translate(mem, faulting_va).is_none() {
                        space.handle_fault(mem, frames, faulting_va);
                    }
                    Some((resolve_reg, 0))
                })),
            },
        );
        core.set_fault_hook(Box::new(move |mem, va| {
            let mut g = vm.lock().expect("vm lock");
            let (space, frames) = &mut *g;
            if space.translate(mem, va).is_none() {
                space.handle_fault(mem, frames, va);
            }
            true
        }));
    }

    /// Creates the shared kernel view of a process's memory management
    /// state used by [`CohortDriver::install_fault_handler`].
    pub fn shared_vm(space: AddressSpace, frames: FrameAllocator) -> SharedVm {
        Arc::new(Mutex::new((space, frames)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_queue::QueueLayout;

    fn descs() -> (QueueDescriptor, QueueDescriptor) {
        (
            QueueLayout::standard(0x10_0000, 8, 64).descriptor,
            QueueLayout::standard(0x20_0000, 8, 64).descriptor,
        )
    }

    #[test]
    fn register_program_writes_all_registers() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (i, o) = descs();
        let p = d.register_ops(0x100_0000, &i, &o, Some((0x30_0000, 17)), 32);
        let stores: Vec<_> = p
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::MmioStore { pa, value } => Some((*pa, *value)),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 15);
        assert_eq!(
            stores.last(),
            Some(&(0x4000_0000 + regs::ENABLE, 1)),
            "enable must be the final write"
        );
        assert!(stores.contains(&(0x4000_0000 + regs::IN_WR_VA, i.write_index_va)));
        assert!(stores.contains(&(0x4000_0000 + regs::CSR_LEN, 17)));
        assert!(matches!(p.ops()[0], Op::KernelCost { .. }), "syscall entry first");
    }

    #[test]
    fn unregister_disables_and_flushes() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let p = d.unregister_ops();
        assert!(p
            .ops()
            .iter()
            .any(|op| matches!(op, Op::MmioStore { pa, value: 0 } if *pa == 0x4000_0000)));
        assert!(p
            .ops()
            .iter()
            .any(|op| matches!(op, Op::MmioStore { pa, .. } if *pa == 0x4000_0000 + regs::TLB_FLUSH)));
    }

    #[test]
    #[should_panic(expected = "input descriptor invalid")]
    fn register_validates_descriptors() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (mut i, o) = descs();
        i.length = 0;
        let _ = d.register_ops(0, &i, &o, None, 0);
    }
}
