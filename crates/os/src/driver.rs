//! The Cohort kernel driver model (paper §4.4).
//!
//! A *single* driver supports all Cohort-enabled accelerators. It exposes
//! two syscalls — `cohort_register` and `cohort_unregister` — which this
//! model expands into the exact MMIO programming sequences a core executes
//! (so registration cost is measured, not assumed), plus the MMU-notifier
//! TLB shootdown and the page-fault interrupt handler.
//!
//! The [`regs`] module is the uapi: the engine's uncached configuration
//! register map, shared between the driver (writer) and the engine
//! implementation in `cohort-engine` (reader).

use crate::addrspace::AddressSpace;
use crate::frame::FrameAllocator;
use cohort_queue::{DescriptorError, QueueDescriptor};
use cohort_sim::core::{HandlerAction, InOrderCore, IrqHandler};
use cohort_sim::mem::MemAccess;
use cohort_sim::program::{Op, Program};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The Cohort engine's uncached configuration register map: byte offsets
/// from the engine's MMIO base, each register 8 bytes (paper §4.2: the
/// uncached registers are the only MMIO component of Cohort).
pub mod regs {
    /// Write 1 to enable the engine, 0 to disable.
    pub const ENABLE: u64 = 0x00;
    /// Input queue: write-index virtual address.
    pub const IN_WR_VA: u64 = 0x08;
    /// Input queue: read-index virtual address.
    pub const IN_RD_VA: u64 = 0x10;
    /// Input queue: data base virtual address.
    pub const IN_BASE_VA: u64 = 0x18;
    /// Input queue: element size in bytes.
    pub const IN_ELEM: u64 = 0x20;
    /// Input queue: length in elements.
    pub const IN_LEN: u64 = 0x28;
    /// Output queue: write-index virtual address.
    pub const OUT_WR_VA: u64 = 0x30;
    /// Output queue: read-index virtual address.
    pub const OUT_RD_VA: u64 = 0x38;
    /// Output queue: data base virtual address.
    pub const OUT_BASE_VA: u64 = 0x40;
    /// Output queue: element size in bytes.
    pub const OUT_ELEM: u64 = 0x48;
    /// Output queue: length in elements.
    pub const OUT_LEN: u64 = 0x50;
    /// Physical address of the process's Sv39 root table.
    pub const PT_ROOT_PA: u64 = 0x58;
    /// Reader-coherency-manager backoff window in cycles (§4.2.3).
    pub const BACKOFF: u64 = 0x60;
    /// Write any value to flush the engine TLB (MMU notifier path).
    pub const TLB_FLUSH: u64 = 0x68;
    /// Write to resolve an outstanding page fault: value 0 tells the
    /// walker to retry its own walk; any other value is a PTE-installed
    /// acknowledgement (§4.2.4 describes both registers).
    pub const FAULT_RESOLVE: u64 = 0x70;
    /// CSR configuration buffer: virtual address (0 = none).
    pub const CSR_BASE_VA: u64 = 0x78;
    /// CSR configuration buffer: length in bytes.
    pub const CSR_LEN: u64 = 0x80;
    /// Read-only: elements consumed from the input queue.
    pub const CONSUMED: u64 = 0x88;
    /// Read-only: elements produced into the output queue.
    pub const PRODUCED: u64 = 0x90;
    /// Sticky error-status register. Reads return the accumulated
    /// [`ERR_BAD_DESCRIPTOR`]/[`ERR_WATCHDOG_CONS`]/… bits; any write
    /// clears them and resumes a halted engine (re-reading the queue
    /// indices from memory, so software may fix state first).
    pub const ERROR_STATUS: u64 = 0x98;
    /// Watchdog budget in cycles: if an enabled endpoint makes no forward
    /// progress for this many cycles the engine aborts the in-flight
    /// transaction, drains staged data and raises the error interrupt.
    /// 0 (the reset value) disables the watchdog.
    pub const WATCHDOG: u64 = 0xA0;
    /// Input queue: binding epoch/generation of the descriptor.
    pub const IN_EPOCH: u64 = 0xA8;
    /// Output queue: binding epoch/generation of the descriptor.
    pub const OUT_EPOCH: u64 = 0xB0;
    /// Epoch fence: writing `e` forbids the engine from ever running a
    /// binding whose epoch is below `e`. The fence is monotonic (writes
    /// with a smaller value are ignored) and survives disable, so a
    /// stale engine that wakes late can never republish queue indices —
    /// the exactly-once half of queue migration.
    pub const EPOCH_FENCE: u64 = 0xB8;
    /// Failover timestamp scratch register: the orchestrator stamps the
    /// detection cycle here before enabling a spare engine, so the spare
    /// can publish detect→rebind→first-element latency histograms.
    pub const FAILOVER_T0: u64 = 0xC0;
    /// Physical address of the engine's checkpoint spill area (0 = none).
    /// The watchdog abort path spills datapath residue there — the
    /// partial input block whose elements the read index already covers,
    /// plus output words that did not fit in a full ring — as
    /// `[n_in, n_out, in_words…, out_words…]`. A spare enabled with
    /// [`FAILOVER_T0`] set restores (and consumes) the spill, so those
    /// elements are delivered exactly once. One page is ample.
    pub const SPILL_PA: u64 = 0xC8;
    /// Size of the register bank in bytes.
    pub const BANK_BYTES: u64 = 0x100;

    // The error/watchdog/failover registers must land inside the bank.
    const _: () = assert!(ERROR_STATUS < BANK_BYTES);
    const _: () = assert!(WATCHDOG < BANK_BYTES);
    const _: () = assert!(IN_EPOCH < BANK_BYTES);
    const _: () = assert!(OUT_EPOCH < BANK_BYTES);
    const _: () = assert!(EPOCH_FENCE < BANK_BYTES);
    const _: () = assert!(FAILOVER_T0 < BANK_BYTES);
    const _: () = assert!(SPILL_PA < BANK_BYTES);

    /// [`ERROR_STATUS`] bit: a configuration register failed validation
    /// (bad geometry, or a config write while enabled).
    pub const ERR_BAD_DESCRIPTOR: u64 = 1 << 0;
    /// [`ERROR_STATUS`] bit: the consumer endpoint tripped the watchdog.
    pub const ERR_WATCHDOG_CONS: u64 = 1 << 1;
    /// [`ERROR_STATUS`] bit: the producer endpoint tripped the watchdog.
    pub const ERR_WATCHDOG_PROD: u64 = 1 << 2;
    /// [`ERROR_STATUS`] bit: the accelerator rejected its CSR buffer.
    pub const ERR_CSR_REJECTED: u64 = 1 << 3;
    /// [`ERROR_STATUS`] bit: the engine datapath is fail-stopped (the
    /// dead-man's handle tripped with a frozen datapath). Recovery must
    /// migrate the queues; clearing [`ERROR_STATUS`] cannot revive it.
    pub const ERR_ENGINE_DEAD: u64 = 1 << 4;
    /// [`ERROR_STATUS`] bit: a configure/enable carried a queue-binding
    /// epoch older than the engine's [`EPOCH_FENCE`] — a stale binding
    /// fenced out after queue migration.
    pub const ERR_STALE_EPOCH: u64 = 1 << 5;

    /// The error interrupt line is the engine's page-fault line plus this
    /// offset, so the two handlers stay distinct per engine.
    pub const ERROR_IRQ_OFFSET: u32 = 32;
}

/// Cost model for the modelled syscalls, in cycles/instructions. These
/// stand in for trap entry, fd lookup and driver bookkeeping of the real
/// kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallCost {
    /// Cycles consumed before the driver's MMIO writes begin.
    pub cycles: u64,
    /// Instructions retired by the kernel path.
    pub insts: u64,
}

impl Default for SyscallCost {
    fn default() -> Self {
        Self {
            cycles: 700,
            insts: 450,
        }
    }
}

/// Shared kernel memory-management state: one address space + frame pool
/// visible to every fault handler (engine interrupt path and core path).
pub type SharedVm = Arc<Mutex<(AddressSpace, FrameAllocator)>>;

/// A software recovery path run (with functional memory access) when the
/// engine's error retries are exhausted — the graceful-degradation hook.
pub type SoftwareFallback = Box<dyn FnMut(&mut dyn MemAccess) + Send>;

/// A forward-progress probe polled by the error handler: returns a value
/// that strictly grows while the engine moves elements (e.g. consumed +
/// produced + drained). Used to reset the bounded-retry budget after a
/// recovery demonstrably succeeded.
pub type ProgressProbe = Box<dyn FnMut() -> u64 + Send>;

/// Everything the failover orchestrator needs to migrate a victim
/// engine's queues onto a spare: the spare's driver, the process state
/// (page-table root, shared VM for checkpoint index reads), the original
/// descriptors, and the spare's runtime knobs.
pub struct FailoverConfig {
    /// Driver of the healthy spare engine to rebind onto.
    pub spare: CohortDriver,
    /// Shared kernel VM view, used to translate the index VAs when
    /// checkpointing authoritative queue state from coherent memory.
    pub vm: SharedVm,
    /// Physical address of the process's page-table root.
    pub root_pa: u64,
    /// The victim's input-queue descriptor (epoch is bumped on migration).
    pub input: QueueDescriptor,
    /// The victim's output-queue descriptor.
    pub output: QueueDescriptor,
    /// Optional CSR configuration buffer `(va, len)`.
    pub csr: Option<(u64, u64)>,
    /// RCM backoff window for the spare.
    pub backoff: u64,
    /// Watchdog budget for the spare (0 = leave disarmed).
    pub watchdog: u64,
    /// Physical address of the victim's checkpoint spill area (0 = none).
    /// The spare's [`regs::SPILL_PA`] is pointed here so it restores the
    /// victim's spilled datapath residue on its failover enable.
    pub spill_pa: u64,
}

/// Reads a queue's authoritative `(write, read)` indices from coherent
/// memory through the shared kernel VM — the checkpoint step of failover.
///
/// # Panics
/// Panics if an index VA is unmapped: registration faulted them in, so an
/// unmapped index during failover is kernel-state corruption.
pub fn read_queue_indices(
    mem: &mut dyn MemAccess,
    vm: &SharedVm,
    q: &QueueDescriptor,
) -> (u64, u64) {
    let mut g = vm.lock().expect("vm lock");
    let (space, _) = &mut *g;
    let wr_pa = space
        .translate(mem, q.write_index_va)
        .expect("write index mapped");
    let rd_pa = space
        .translate(mem, q.read_index_va)
        .expect("read index mapped");
    (mem.read_u64(wr_pa), mem.read_u64(rd_pa))
}

/// The Cohort driver: knows where one engine's registers live and which
/// interrupt line it raises.
#[derive(Debug, Clone)]
pub struct CohortDriver {
    mmio_base: u64,
    irq: u32,
    cost: SyscallCost,
}

impl CohortDriver {
    /// Creates a driver for the engine whose register bank starts at
    /// `mmio_base` and which raises interrupt `irq`.
    pub fn new(mmio_base: u64, irq: u32) -> Self {
        Self {
            mmio_base,
            irq,
            cost: SyscallCost::default(),
        }
    }

    /// Overrides the syscall cost model.
    pub fn with_cost(mut self, cost: SyscallCost) -> Self {
        self.cost = cost;
        self
    }

    /// The engine's register bank base.
    pub fn mmio_base(&self) -> u64 {
        self.mmio_base
    }

    /// The engine's interrupt number.
    pub fn irq(&self) -> u32 {
        self.irq
    }

    fn reg(&self, offset: u64) -> u64 {
        self.mmio_base + offset
    }

    /// Expands `cohort_register(acc_id, in, out)` into the program the
    /// calling core executes: kernel entry cost, the descriptor writes,
    /// the page-table root, optional CSR buffer, backoff, then enable.
    ///
    /// # Panics
    /// Panics if a descriptor fails validation — the driver is the
    /// enforcement point (§4.4: "user space may not touch Cohort's
    /// configuration registers").
    pub fn register_ops(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Program {
        input.validate().expect("input descriptor invalid");
        output.validate().expect("output descriptor invalid");
        self.build_register(root_pa, input, output, csr, backoff)
    }

    /// Fallible form of [`CohortDriver::register_ops`]: returns the
    /// violated invariant instead of panicking, for callers that want to
    /// surface `cohort_register` failure as an errno rather than a crash.
    ///
    /// # Errors
    /// Returns the first [`DescriptorError`] found in either descriptor.
    pub fn try_register_ops(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Result<Program, DescriptorError> {
        input.validate()?;
        output.validate()?;
        Ok(self.build_register(root_pa, input, output, csr, backoff))
    }

    fn build_register(
        &self,
        root_pa: u64,
        input: &QueueDescriptor,
        output: &QueueDescriptor,
        csr: Option<(u64, u64)>,
        backoff: u64,
    ) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: self.cost.cycles,
            insts: self.cost.insts,
        });
        // The epoch registers reset to zero, so a zero-epoch binding (the
        // common, never-migrated case) skips the two writes.
        for (off, epoch) in [
            (regs::IN_EPOCH, input.epoch),
            (regs::OUT_EPOCH, output.epoch),
        ] {
            if epoch != 0 {
                p.push(Op::MmioStore {
                    pa: self.reg(off),
                    value: epoch,
                });
            }
        }
        let writes = [
            (regs::IN_WR_VA, input.write_index_va),
            (regs::IN_RD_VA, input.read_index_va),
            (regs::IN_BASE_VA, input.base_va),
            (regs::IN_ELEM, u64::from(input.element_bytes)),
            (regs::IN_LEN, u64::from(input.length)),
            (regs::OUT_WR_VA, output.write_index_va),
            (regs::OUT_RD_VA, output.read_index_va),
            (regs::OUT_BASE_VA, output.base_va),
            (regs::OUT_ELEM, u64::from(output.element_bytes)),
            (regs::OUT_LEN, u64::from(output.length)),
            (regs::PT_ROOT_PA, root_pa),
            (regs::BACKOFF, backoff),
            (regs::CSR_BASE_VA, csr.map_or(0, |(va, _)| va)),
            (regs::CSR_LEN, csr.map_or(0, |(_, len)| len)),
            (regs::ENABLE, 1),
        ];
        for (off, value) in writes {
            p.push(Op::MmioStore {
                pa: self.reg(off),
                value,
            });
        }
        p
    }

    /// Expands `cohort_unregister`: disable the engine, flush its TLB
    /// (resource teardown, §4.4), plus kernel exit cost.
    pub fn unregister_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: self.cost.cycles / 2,
            insts: self.cost.insts / 2,
        });
        p.push(Op::MmioStore {
            pa: self.reg(regs::ENABLE),
            value: 0,
        });
        p.push(Op::MmioStore {
            pa: self.reg(regs::TLB_FLUSH),
            value: 1,
        });
        p
    }

    /// The MMU-notifier path: a TLB shootdown reaching this engine
    /// (invoked by the kernel when mappings of a registered process
    /// change).
    pub fn tlb_flush_ops(&self) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: 80,
            insts: 60,
        });
        p.push(Op::MmioStore {
            pa: self.reg(regs::TLB_FLUSH),
            value: 1,
        });
        p
    }

    /// Arms (or, with 0, disarms) the engine's forward-progress watchdog.
    /// Deliberately cheap: one register write, usable while enabled.
    pub fn watchdog_ops(&self, cycles: u64) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: 40,
            insts: 30,
        });
        p.push(Op::MmioStore {
            pa: self.reg(regs::WATCHDOG),
            value: cycles,
        });
        p
    }

    /// Points the engine's checkpoint spill area ([`regs::SPILL_PA`]) at
    /// physical address `pa`. Armed before faults so the watchdog abort
    /// path can spill datapath residue for exactly-once migration.
    pub fn spill_ops(&self, pa: u64) -> Program {
        let mut p = Program::new();
        p.push(Op::KernelCost {
            cycles: 40,
            insts: 30,
        });
        p.push(Op::MmioStore {
            pa: self.reg(regs::SPILL_PA),
            value: pa,
        });
        p
    }

    /// Installs the demand-paging machinery on `core`: the engine's
    /// page-fault interrupt handler (map the page, poke the resolve
    /// register; §4.2.4/§4.4) and the kernel's fault path for the core's
    /// own accesses. Both share one view of the address space and frame
    /// pool, exactly like the real kernel's mm.
    pub fn install_fault_handler(&self, core: &mut InOrderCore, vm: SharedVm) {
        self.install_fault_machinery(core, vm, None);
    }

    /// [`CohortDriver::install_fault_handler`] with a swap backing store:
    /// when a freshly mapped page has stashed contents (a fault-injection
    /// storm paged it out), the handler copies them into the new frame —
    /// the model of a page-in from swap. Required for storm recovery to be
    /// data-lossless.
    pub fn install_fault_handler_with_swap(
        &self,
        core: &mut InOrderCore,
        vm: SharedVm,
        swap: SwapStore,
    ) {
        self.install_fault_machinery(core, vm, Some(swap));
    }

    fn install_fault_machinery(
        &self,
        core: &mut InOrderCore,
        vm: SharedVm,
        swap: Option<SwapStore>,
    ) {
        let resolve_reg = self.reg(regs::FAULT_RESOLVE);
        let engine_vm = Arc::clone(&vm);
        let engine_swap = swap.clone();
        core.register_irq_handler(
            self.irq,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, faulting_va, _cycle| {
                    fault_in(mem, &engine_vm, engine_swap.as_ref(), faulting_va);
                    vec![(resolve_reg, 0)]
                })),
            },
        );
        core.set_fault_hook(Box::new(move |mem, va| {
            fault_in(mem, &vm, swap.as_ref(), va);
            true
        }));
    }

    /// Installs the error-interrupt handler on `core`: on each engine
    /// error IRQ the kernel clears [`regs::ERROR_STATUS`] (which resumes
    /// the engine from the in-memory queue indices) up to `max_retries`
    /// times; past that it runs `fallback` — the software-only queue path
    /// of §4.4's graceful-degradation contract — and disables the engine.
    pub fn install_error_handler(
        &self,
        core: &mut InOrderCore,
        max_retries: u64,
        fallback: Option<SoftwareFallback>,
    ) {
        self.install_error_handler_with_probe(core, max_retries, fallback, None);
    }

    /// [`CohortDriver::install_error_handler`] with a forward-progress
    /// probe (typically the engine's consumed+produced+drained element
    /// total). When the probe shows the engine made progress since the
    /// previous error IRQ, the previous recovery *worked* and the retry
    /// counter resets — so a later, unrelated fault gets the full retry
    /// budget instead of inheriting exhausted state.
    pub fn install_error_handler_with_probe(
        &self,
        core: &mut InOrderCore,
        max_retries: u64,
        mut fallback: Option<SoftwareFallback>,
        mut progress: Option<ProgressProbe>,
    ) {
        let status_reg = self.reg(regs::ERROR_STATUS);
        let enable_reg = self.reg(regs::ENABLE);
        let mut tries = 0u64;
        let mut last_progress: Option<u64> = None;
        core.register_irq_handler(
            self.irq + regs::ERROR_IRQ_OFFSET,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, _error_bits, _cycle| {
                    if let Some(p) = progress.as_mut() {
                        let now = p();
                        if last_progress.is_some_and(|prev| now > prev) {
                            // The engine moved elements since the last
                            // incident: that recovery succeeded, so this
                            // fault is a new one with a fresh budget.
                            tries = 0;
                        }
                        last_progress = Some(now);
                    }
                    if tries < max_retries {
                        tries += 1;
                        vec![(status_reg, 0)]
                    } else {
                        if let Some(f) = fallback.as_mut() {
                            f(mem);
                        }
                        vec![(enable_reg, 0)]
                    }
                })),
            },
        );
    }

    /// Installs the failover orchestrator on `core` for this (victim)
    /// engine's error IRQ. A recoverable error is retried in place by
    /// clearing [`regs::ERROR_STATUS`]. An IRQ carrying
    /// [`regs::ERR_ENGINE_DEAD`] runs the migration state machine
    /// (Detect → Quiesce → Checkpoint → Rebind → Resume):
    ///
    /// 1. **Quiesce**: the victim's watchdog already aborted and drained
    ///    staged elements to memory before raising the IRQ; the handler
    ///    disables the victim and writes an [`regs::EPOCH_FENCE`] so the
    ///    old binding can never republish indices.
    /// 2. **Checkpoint**: re-read the authoritative read/write indices
    ///    from coherent memory and sanity-check them — memory, not the
    ///    dead engine, is the source of truth.
    /// 3. **Rebind**: re-register the same descriptors, stamped with a
    ///    bumped epoch, on the spare engine, and stamp
    ///    [`regs::FAILOVER_T0`] with the detection cycle so the spare
    ///    publishes rebind/first-element latency histograms.
    /// 4. **Resume**: enable the spare; it re-reads the indices from
    ///    memory and continues with no lost or duplicated elements.
    pub fn install_failover_handler(&self, core: &mut InOrderCore, mut cfg: FailoverConfig) {
        let status_reg = self.reg(regs::ERROR_STATUS);
        let victim_enable = self.reg(regs::ENABLE);
        let victim_fence = self.reg(regs::EPOCH_FENCE);
        let mut next_epoch = cfg.input.epoch.max(cfg.output.epoch) + 1;
        core.register_irq_handler(
            self.irq + regs::ERROR_IRQ_OFFSET,
            IrqHandler {
                entry_cycles: 400,
                entry_insts: 300,
                action: HandlerAction::Custom(Box::new(move |mem, error_bits, cycle| {
                    if error_bits & regs::ERR_ENGINE_DEAD == 0 {
                        // Recoverable class: clear and retry in place.
                        return vec![(status_reg, 0)];
                    }
                    // Checkpoint: the indices in coherent memory are the
                    // authoritative queue state (the watchdog drain
                    // republished everything the victim had staged).
                    let (in_wr, in_rd) = read_queue_indices(mem, &cfg.vm, &cfg.input);
                    let (out_wr, out_rd) = read_queue_indices(mem, &cfg.vm, &cfg.output);
                    for (q, wr, rd) in [(&cfg.input, in_wr, in_rd), (&cfg.output, out_wr, out_rd)] {
                        assert!(
                            wr.wrapping_sub(rd) <= u64::from(q.length),
                            "checkpointed indices inconsistent: wr={wr} rd={rd} len={}",
                            q.length
                        );
                    }
                    let epoch = next_epoch;
                    next_epoch += 1;
                    cfg.input = cfg.input.with_epoch(epoch);
                    cfg.output = cfg.output.with_epoch(epoch);
                    let s = &cfg.spare;
                    let mut writes = vec![
                        // Quiesce + fence the victim.
                        (victim_enable, 0),
                        (victim_fence, epoch),
                        // Rebind on the spare.
                        (s.reg(regs::IN_WR_VA), cfg.input.write_index_va),
                        (s.reg(regs::IN_RD_VA), cfg.input.read_index_va),
                        (s.reg(regs::IN_BASE_VA), cfg.input.base_va),
                        (s.reg(regs::IN_ELEM), u64::from(cfg.input.element_bytes)),
                        (s.reg(regs::IN_LEN), u64::from(cfg.input.length)),
                        (s.reg(regs::OUT_WR_VA), cfg.output.write_index_va),
                        (s.reg(regs::OUT_RD_VA), cfg.output.read_index_va),
                        (s.reg(regs::OUT_BASE_VA), cfg.output.base_va),
                        (s.reg(regs::OUT_ELEM), u64::from(cfg.output.element_bytes)),
                        (s.reg(regs::OUT_LEN), u64::from(cfg.output.length)),
                        (s.reg(regs::PT_ROOT_PA), cfg.root_pa),
                        (s.reg(regs::BACKOFF), cfg.backoff),
                        (s.reg(regs::CSR_BASE_VA), cfg.csr.map_or(0, |(va, _)| va)),
                        (s.reg(regs::CSR_LEN), cfg.csr.map_or(0, |(_, len)| len)),
                        (s.reg(regs::IN_EPOCH), epoch),
                        (s.reg(regs::OUT_EPOCH), epoch),
                        (s.reg(regs::SPILL_PA), cfg.spill_pa),
                        (s.reg(regs::FAILOVER_T0), cycle),
                    ];
                    if cfg.watchdog > 0 {
                        writes.push((s.reg(regs::WATCHDOG), cfg.watchdog));
                    }
                    // Resume: enable is the final write.
                    writes.push((s.reg(regs::ENABLE), 1));
                    writes
                })),
            },
        );
    }

    /// Creates the shared kernel view of a process's memory management
    /// state used by [`CohortDriver::install_fault_handler`].
    pub fn shared_vm(space: AddressSpace, frames: FrameAllocator) -> SharedVm {
        Arc::new(Mutex::new((space, frames)))
    }
}

/// Shard placement policy: how a [`ShardPool`] steers the next queue
/// element (or element run) onto one of its engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Static round-robin: shard `i`, `i+1`, … regardless of load.
    #[default]
    RoundRobin,
    /// Steer to the shard whose in-queue occupancy mirror is lowest
    /// (ties break toward the lowest shard index, keeping placement
    /// deterministic). With uniform element weights this degenerates to
    /// round-robin; under skewed weights it is greedy least-loaded.
    OccupancyAware,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::RoundRobin => write!(f, "rr"),
            Placement::OccupancyAware => write!(f, "occupancy"),
        }
    }
}

impl std::str::FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rr" | "round-robin" => Ok(Placement::RoundRobin),
            "occupancy" | "occ" => Ok(Placement::OccupancyAware),
            other => Err(format!("unknown placement '{other}' (use rr|occupancy)")),
        }
    }
}

/// Why a [`ShardPool`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// Zero shards requested.
    NoShards,
    /// More shards (plus reserved spares) than the SoC has engines.
    NotEnoughEngines {
        /// Shards requested.
        requested: usize,
        /// Engines the pool may draw on.
        engines: usize,
        /// Engines held back as failover spares.
        spares: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "shard pool needs at least one shard"),
            ShardError::NotEnoughEngines {
                requested,
                engines,
                spares,
            } => write!(
                f,
                "{requested} shard(s) + {spares} spare(s) exceed the {engines} configured engine(s)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// One placement decision of a [`ShardPool`]: the element run's global
/// sequence number and the shard it was steered onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Position in the logical stream, in placement order. The
    /// sequence-tagged merge (`cohort_queue::merge`) releases results in
    /// exactly this order.
    pub seq: u64,
    /// Index of the chosen shard within the pool.
    pub shard: usize,
}

/// A driver-level queue sharder: binds one logical SPSC stream onto N
/// physical engines, one driver (and one in/out queue pair) per shard.
///
/// Work is split at queue-element granularity: each [`ShardPool::place`]
/// call assigns the next element run to a shard under the configured
/// [`Placement`] policy and tags it with a global sequence number. Within
/// a shard, elements stay FIFO (the shard is an ordinary SPSC stream);
/// across shards the consumer restores the logical order with the
/// sequence-tagged merge in `cohort_queue::merge`.
///
/// The pool maintains a *software occupancy mirror* per shard — weight
/// placed minus weight completed — which is what the occupancy-aware
/// policy steers on. The mirror deliberately tracks the driver's view,
/// not the engine's registers: reading `CONSUMED` over MMIO on every
/// placement would cost more than the imbalance it avoids. Tests compare
/// the mirror against `CohortEngine::in_queue_occupancy` ground truth.
///
/// Failover composes per shard: a killed shard's queues migrate onto a
/// spare through the existing epoch-fenced path
/// ([`CohortDriver::install_failover_handler`]); the pool itself holds no
/// engine state, so a rebind needs no pool surgery.
#[derive(Debug, Clone)]
pub struct ShardPool {
    drivers: Vec<CohortDriver>,
    policy: Placement,
    /// Weight placed but not yet completed, per shard.
    occupancy: Vec<u64>,
    /// Total weight ever placed, per shard (for post-run diagnostics).
    placed_weight: Vec<u64>,
    /// Element runs placed, per shard.
    placed_runs: Vec<u64>,
    rr_next: usize,
    next_seq: u64,
}

impl ShardPool {
    /// Binds the first `shards` of `engines` onto a new pool, holding
    /// back `spares` engines (from the tail of the list) for failover.
    ///
    /// # Errors
    /// [`ShardError::NoShards`] when `shards` is zero,
    /// [`ShardError::NotEnoughEngines`] when `shards + spares` exceeds
    /// the available engine count — the clean-rejection contract the CLI
    /// surfaces instead of a panic.
    pub fn bind(
        engines: &[CohortDriver],
        shards: usize,
        spares: usize,
        policy: Placement,
    ) -> Result<Self, ShardError> {
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        if shards + spares > engines.len() {
            return Err(ShardError::NotEnoughEngines {
                requested: shards,
                engines: engines.len(),
                spares,
            });
        }
        Ok(Self {
            drivers: engines[..shards].to_vec(),
            policy,
            occupancy: vec![0; shards],
            placed_weight: vec![0; shards],
            placed_runs: vec![0; shards],
            rr_next: 0,
            next_seq: 0,
        })
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.drivers.len()
    }

    /// The placement policy.
    pub fn policy(&self) -> Placement {
        self.policy
    }

    /// The driver bound to shard `i`.
    pub fn driver(&self, shard: usize) -> &CohortDriver {
        &self.drivers[shard]
    }

    /// Steers the next element run (of `weight` queue elements) onto a
    /// shard, charges the weight to that shard's occupancy mirror and
    /// returns the sequence-tagged assignment.
    pub fn place(&mut self, weight: u64) -> ShardAssignment {
        let shard = match self.policy {
            Placement::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.drivers.len();
                s
            }
            Placement::OccupancyAware => self
                .occupancy
                .iter()
                .enumerate()
                .min_by_key(|&(i, &occ)| (occ, i))
                .map(|(i, _)| i)
                .expect("pool has at least one shard"),
        };
        self.occupancy[shard] += weight;
        self.placed_weight[shard] += weight;
        self.placed_runs[shard] += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        ShardAssignment { seq, shard }
    }

    /// Credits `weight` completed (popped) elements back to shard
    /// `shard`'s occupancy mirror.
    ///
    /// Completing more weight than was placed is accounting corruption
    /// (a double credit or a mis-attributed shard): debug builds assert;
    /// release builds clamp at zero so a long chaos run degrades to
    /// skewed placement rather than an underflow panic.
    pub fn complete(&mut self, shard: usize, weight: u64) {
        debug_assert!(
            self.occupancy[shard] >= weight,
            "occupancy underflow on shard {shard}: completing {weight} with only {} outstanding",
            self.occupancy[shard]
        );
        self.occupancy[shard] = self.occupancy[shard].saturating_sub(weight);
    }

    /// Shard `shard`'s occupancy mirror: weight placed minus completed.
    pub fn occupancy(&self, shard: usize) -> u64 {
        self.occupancy[shard]
    }

    /// Total weight ever placed on shard `shard`.
    pub fn placed_weight(&self, shard: usize) -> u64 {
        self.placed_weight[shard]
    }

    /// Element runs ever placed on shard `shard`.
    pub fn placed_runs(&self, shard: usize) -> u64 {
        self.placed_runs[shard]
    }
}

/// Evicted-page store for fault-injection storms: the *parked frame* of
/// each evicted page, keyed by page-aligned VA. Eviction is a translation
/// drop, not a relocation — the frame keeps holding the page, and the
/// swap-aware fault handler maps the same frame back in on the next touch.
///
/// Parking the frame (rather than snapshotting its bytes) is what makes
/// storms lossless against agents that race the shootdown: an engine
/// channel mid-DMA or a core store-buffer entry holds a pre-translated
/// physical address and keeps writing the old frame during the flush
/// window. With a byte snapshot those late writes would be silently
/// rolled back on page-in — observed as a consumer spinning forever on a
/// write index that went backwards.
pub type SwapStore = Arc<Mutex<HashMap<u64, u64>>>;

/// Creates an empty [`SwapStore`].
pub fn swap_store() -> SwapStore {
    Arc::new(Mutex::new(HashMap::new()))
}

/// The shared kernel fault path: remap the parked frame if `swap` holds
/// one for this page (a storm eviction coming back), else demand-map a
/// fresh zero frame. Public so software fallback paths (graceful
/// degradation after engine errors) can fault pages in exactly like the
/// interrupt handlers do.
pub fn fault_in(mem: &mut dyn MemAccess, vm: &SharedVm, swap: Option<&SwapStore>, va: u64) {
    use crate::sv39::PAGE_BYTES;
    let mut g = vm.lock().expect("vm lock");
    let (space, frames) = &mut *g;
    if space.translate(mem, va).is_some() {
        return;
    }
    let page_va = va & !(PAGE_BYTES - 1);
    let parked = swap.and_then(|s| s.lock().expect("swap lock").remove(&page_va));
    match parked {
        Some(pa) => space.map_page(mem, frames, page_va, pa),
        None => {
            space.handle_fault(mem, frames, va);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_queue::QueueLayout;

    fn descs() -> (QueueDescriptor, QueueDescriptor) {
        (
            QueueLayout::standard(0x10_0000, 8, 64).descriptor,
            QueueLayout::standard(0x20_0000, 8, 64).descriptor,
        )
    }

    #[test]
    fn register_program_writes_all_registers() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (i, o) = descs();
        let (i, o) = (i.with_epoch(3), o.with_epoch(3));
        let p = d.register_ops(0x100_0000, &i, &o, Some((0x30_0000, 17)), 32);
        let stores: Vec<_> = p
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::MmioStore { pa, value } => Some((*pa, *value)),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 17);
        assert_eq!(
            stores.last(),
            Some(&(0x4000_0000 + regs::ENABLE, 1)),
            "enable must be the final write"
        );
        assert!(stores.contains(&(0x4000_0000 + regs::IN_WR_VA, i.write_index_va)));
        assert!(stores.contains(&(0x4000_0000 + regs::CSR_LEN, 17)));
        assert!(stores.contains(&(0x4000_0000 + regs::IN_EPOCH, 3)));
        assert!(stores.contains(&(0x4000_0000 + regs::OUT_EPOCH, 3)));
        assert!(
            matches!(p.ops()[0], Op::KernelCost { .. }),
            "syscall entry first"
        );

        // A zero-epoch (never-migrated) binding skips the epoch writes:
        // the registers reset to zero, and the common registration path
        // stays cycle-identical to a pre-epoch driver.
        let (i0, o0) = descs();
        let p0 = d.register_ops(0x100_0000, &i0, &o0, Some((0x30_0000, 17)), 32);
        let mmio0 = p0
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::MmioStore { .. }))
            .count();
        assert_eq!(mmio0, 15, "no epoch writes for an epoch-0 binding");
    }

    #[test]
    fn unregister_disables_and_flushes() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let p = d.unregister_ops();
        assert!(p
            .ops()
            .iter()
            .any(|op| matches!(op, Op::MmioStore { pa, value: 0 } if *pa == 0x4000_0000)));
        assert!(p.ops().iter().any(
            |op| matches!(op, Op::MmioStore { pa, .. } if *pa == 0x4000_0000 + regs::TLB_FLUSH)
        ));
    }

    #[test]
    #[should_panic(expected = "input descriptor invalid")]
    fn register_validates_descriptors() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let (mut i, o) = descs();
        i.length = 0;
        let _ = d.register_ops(0, &i, &o, None, 0);
    }

    #[test]
    fn try_register_returns_error_not_panic() {
        use cohort_queue::DescriptorError;
        let d = CohortDriver::new(0x4000_0000, 5);
        let (i, mut o) = descs();
        assert!(d.try_register_ops(0x100_0000, &i, &o, None, 32).is_ok());
        o.length = 48; // not a power of two
        assert_eq!(
            d.try_register_ops(0x100_0000, &i, &o, None, 32),
            Err(DescriptorError::NotPowerOfTwo(48))
        );
    }

    #[test]
    fn watchdog_program_writes_register() {
        let d = CohortDriver::new(0x4000_0000, 5);
        let p = d.watchdog_ops(50_000);
        assert!(p.ops().iter().any(|op| matches!(
            op,
            Op::MmioStore { pa, value: 50_000 } if *pa == 0x4000_0000 + regs::WATCHDOG
        )));
    }

    fn pool_drivers(n: usize) -> Vec<CohortDriver> {
        (0..n)
            .map(|i| CohortDriver::new(0x4000_0000 + (i as u64) * 0x1_0000, 5 + i as u32))
            .collect()
    }

    #[test]
    fn shard_pool_rejects_zero_and_oversubscription() {
        let engines = pool_drivers(4);
        assert_eq!(
            ShardPool::bind(&engines, 0, 0, Placement::RoundRobin).err(),
            Some(ShardError::NoShards)
        );
        assert_eq!(
            ShardPool::bind(&engines, 4, 1, Placement::RoundRobin).err(),
            Some(ShardError::NotEnoughEngines {
                requested: 4,
                engines: 4,
                spares: 1,
            })
        );
        assert!(ShardPool::bind(&engines, 3, 1, Placement::RoundRobin).is_ok());
    }

    #[test]
    fn round_robin_cycles_and_tags_sequences() {
        let engines = pool_drivers(3);
        let mut pool = ShardPool::bind(&engines, 3, 0, Placement::RoundRobin).unwrap();
        let picks: Vec<_> = (0..6).map(|_| pool.place(2)).collect();
        let shards: Vec<_> = picks.iter().map(|a| a.shard).collect();
        let seqs: Vec<_> = picks.iter().map(|a| a.seq).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.occupancy(0), 4);
        pool.complete(0, 2);
        assert_eq!(pool.occupancy(0), 2);
        assert_eq!(pool.placed_weight(0), 4, "completion keeps totals");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "occupancy underflow"))]
    fn complete_catches_occupancy_underflow() {
        // Crediting more weight than a shard has outstanding is accounting
        // corruption: debug builds assert (this test), release builds
        // clamp at zero instead of wrapping.
        let engines = pool_drivers(2);
        let mut pool = ShardPool::bind(&engines, 2, 0, Placement::RoundRobin).unwrap();
        pool.place(3); // shard 0 now carries 3
        pool.complete(0, 5);
        // Only reached without debug assertions: clamped, not wrapped.
        assert_eq!(pool.occupancy(0), 0);
    }

    #[test]
    fn occupancy_aware_balances_skewed_weights() {
        // Skewed runs: one heavy run then many light ones. Round-robin
        // blindly stacks further work on the heavy shard; the
        // occupancy-aware policy routes around it.
        let weights = [16u64, 1, 1, 1, 1, 1, 1, 1];
        let makespan = |policy: Placement| {
            let engines = pool_drivers(2);
            let mut pool = ShardPool::bind(&engines, 2, 0, policy).unwrap();
            for &w in &weights {
                pool.place(w);
            }
            (0..2).map(|s| pool.placed_weight(s)).max().unwrap()
        };
        let rr = makespan(Placement::RoundRobin);
        let occ = makespan(Placement::OccupancyAware);
        assert_eq!(rr, 19, "rr alternates: 16+1+1+1 vs 1+1+1+1");
        assert_eq!(occ, 16, "occupancy leaves the heavy shard alone");
        assert!(occ < rr);
    }

    #[test]
    fn occupancy_aware_ties_break_deterministically() {
        let engines = pool_drivers(3);
        let mut pool = ShardPool::bind(&engines, 3, 0, Placement::OccupancyAware).unwrap();
        // Equal weights: all shards tie in turn, lowest index wins, so
        // the policy degenerates to round-robin exactly.
        let shards: Vec<_> = (0..6).map(|_| pool.place(1).shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn shard_pool_binds_prefix_of_engine_list() {
        let engines = pool_drivers(4);
        let pool = ShardPool::bind(&engines, 2, 1, Placement::RoundRobin).unwrap();
        assert_eq!(pool.shards(), 2);
        assert_eq!(pool.driver(0).mmio_base(), engines[0].mmio_base());
        assert_eq!(pool.driver(1).mmio_base(), engines[1].mmio_base());
    }

    #[test]
    fn placement_parses_and_prints() {
        assert_eq!("rr".parse::<Placement>().unwrap(), Placement::RoundRobin);
        assert_eq!(
            "occupancy".parse::<Placement>().unwrap(),
            Placement::OccupancyAware
        );
        assert!("xyzzy".parse::<Placement>().is_err());
        assert_eq!(Placement::OccupancyAware.to_string(), "occupancy");
    }

    #[test]
    fn error_register_offsets_are_inside_the_bank() {
        // Bank-bounds checks live as `const` assertions in the regs module.
        assert_ne!(regs::ERROR_STATUS, regs::PRODUCED);
        // The sticky bits are distinct one-hot values.
        let bits = [
            regs::ERR_BAD_DESCRIPTOR,
            regs::ERR_WATCHDOG_CONS,
            regs::ERR_WATCHDOG_PROD,
            regs::ERR_CSR_REJECTED,
            regs::ERR_ENGINE_DEAD,
            regs::ERR_STALE_EPOCH,
        ];
        for (n, b) in bits.iter().enumerate() {
            assert_eq!(b.count_ones(), 1);
            for later in &bits[n + 1..] {
                assert_ne!(b, later);
            }
        }
    }
}
