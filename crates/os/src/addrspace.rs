//! Per-process virtual address spaces.
//!
//! Cohort's headline programmability claim is that "queues are allocatable
//! with malloc" (§4.2.4): no special allocation routines, no pinning, no
//! physical addressing in user space. [`AddressSpace`] models exactly that:
//! a bump `malloc` over the process's virtual range, backed by Sv39 tables
//! built in guest memory, with eager or demand (lazy) mapping and optional
//! 2 MiB huge pages.

use crate::frame::FrameAllocator;
use crate::sv39::{self, pte_flags, PageSize, PAGE_BYTES};
use cohort_sim::mem::MemAccess;
use cohort_sim::translate::Translator;

/// Mapping policy for freshly allocated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapPolicy {
    /// Map every page at allocation time (no engine page faults).
    #[default]
    Eager,
    /// Leave pages unmapped; the Cohort page-fault path maps on demand.
    Lazy,
    /// Back allocations with 2 MiB huge pages (paper §4.1: the Cohort MMU
    /// transparently benefits).
    HugePages,
}

/// A process's virtual address space and its Sv39 tables.
///
/// `Clone` produces a handle onto the *same* page tables (they live in
/// guest memory); callers must not allocate through diverged clones.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    root_pa: u64,
    brk: u64,
    policy: MapPolicy,
}

impl AddressSpace {
    /// Default base of the `malloc` arena.
    pub const HEAP_BASE: u64 = 0x0000_0040_0000_0000 >> 9; // 0x2000_0000

    /// Creates an address space with a fresh root table.
    pub fn new(frames: &mut FrameAllocator, policy: MapPolicy) -> Self {
        let root_pa = frames.alloc();
        Self {
            root_pa,
            brk: Self::HEAP_BASE,
            policy,
        }
    }

    /// Physical address of the root page table (the engine's `PT_ROOT`).
    pub fn root_pa(&self) -> u64 {
        self.root_pa
    }

    /// The configured mapping policy.
    pub fn policy(&self) -> MapPolicy {
        self.policy
    }

    /// Maps one 4 KiB page `va -> pa`.
    pub fn map_page(
        &mut self,
        mem: &mut dyn MemAccess,
        frames: &mut FrameAllocator,
        va: u64,
        pa: u64,
    ) {
        sv39::map(
            mem,
            self.root_pa,
            va,
            pa,
            PageSize::Base,
            pte_flags::DATA,
            || frames.alloc(),
        );
    }

    /// Maps one 2 MiB huge page `va -> pa`.
    pub fn map_huge(
        &mut self,
        mem: &mut dyn MemAccess,
        frames: &mut FrameAllocator,
        va: u64,
        pa: u64,
    ) {
        sv39::map(
            mem,
            self.root_pa,
            va,
            pa,
            PageSize::Mega,
            pte_flags::DATA,
            || frames.alloc(),
        );
    }

    /// Allocates `bytes` of heap, aligned to `align` (power of two), and
    /// backs it according to the policy. Returns the virtual address.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn malloc(
        &mut self,
        mem: &mut dyn MemAccess,
        frames: &mut FrameAllocator,
        bytes: u64,
        align: u64,
    ) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let va = self.brk.div_ceil(align) * align;
        self.brk = va + bytes;
        match self.policy {
            MapPolicy::Eager => {
                let start = va / PAGE_BYTES * PAGE_BYTES;
                let end = (va + bytes).div_ceil(PAGE_BYTES) * PAGE_BYTES;
                let mut page = start;
                while page < end {
                    if sv39::walk(mem, self.root_pa, page).is_none() {
                        let pa = frames.alloc();
                        self.map_page(mem, frames, page, pa);
                    }
                    page += PAGE_BYTES;
                }
            }
            MapPolicy::Lazy => { /* mapped by the fault handler */ }
            MapPolicy::HugePages => {
                let huge = PageSize::Mega.bytes();
                let start = va / huge * huge;
                let end = (va + bytes).div_ceil(huge) * huge;
                let mut page = start;
                while page < end {
                    if sv39::walk(mem, self.root_pa, page).is_none() {
                        let pa = frames.alloc_aligned(huge / PAGE_BYTES, huge);
                        self.map_huge(mem, frames, page, pa);
                    }
                    page += huge;
                }
            }
        }
        va
    }

    /// Resolves a demand fault at `va`: maps the containing 4 KiB page.
    /// Returns the new physical page. (The driver's fault handler calls
    /// this, then pokes the engine's resolve register.)
    pub fn handle_fault(
        &mut self,
        mem: &mut dyn MemAccess,
        frames: &mut FrameAllocator,
        va: u64,
    ) -> u64 {
        let page_va = va / PAGE_BYTES * PAGE_BYTES;
        let pa = frames.alloc();
        self.map_page(mem, frames, page_va, pa);
        pa
    }

    /// Functionally translates `va`.
    pub fn translate(&self, mem: &dyn MemAccess, va: u64) -> Option<u64> {
        sv39::walk(mem, self.root_pa, va).map(|r| r.pa)
    }

    /// Removes the mapping containing `va` (an `munmap`-style operation
    /// that must be paired with an engine TLB flush via the MMU notifier).
    pub fn unmap(&mut self, mem: &mut dyn MemAccess, va: u64) -> bool {
        sv39::unmap(mem, self.root_pa, va)
    }

    /// Maps the physical pages backing `[src_va, src_va + bytes)` of
    /// `other` into this address space (shared memory / `mmap` of the same
    /// object — the substrate of the paper's §4.5 inter-process queues).
    /// Returns the corresponding VA in this space.
    ///
    /// # Panics
    /// Panics if any source page is unmapped, or if the source range is
    /// not page aligned in a way that can be aliased page-by-page.
    pub fn map_shared(
        &mut self,
        mem: &mut dyn MemAccess,
        frames: &mut FrameAllocator,
        other: &AddressSpace,
        src_va: u64,
        bytes: u64,
    ) -> u64 {
        let page_off = src_va % PAGE_BYTES;
        let first_page = src_va - page_off;
        let end = (src_va + bytes).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let n_pages = (end - first_page) / PAGE_BYTES;
        // Reserve a page-aligned VA window in this space.
        let dst_base = {
            let va = self.brk.div_ceil(PAGE_BYTES) * PAGE_BYTES;
            self.brk = va + n_pages * PAGE_BYTES;
            va
        };
        for i in 0..n_pages {
            let pa = other
                .translate(mem, first_page + i * PAGE_BYTES)
                .unwrap_or_else(|| panic!("map_shared: source page {i} unmapped"));
            self.map_page(mem, frames, dst_base + i * PAGE_BYTES, pa);
        }
        dst_base + page_off
    }

    /// A cheap, `Send` translator handle for core-side accesses.
    pub fn translator(&self) -> SpaceTranslator {
        SpaceTranslator {
            root_pa: self.root_pa,
        }
    }
}

/// Translator walking a fixed root table (for [`cohort_sim::core`] cores).
#[derive(Debug, Clone, Copy)]
pub struct SpaceTranslator {
    root_pa: u64,
}

impl Translator for SpaceTranslator {
    fn translate(&self, mem: &dyn MemAccess, va: u64) -> Option<u64> {
        sv39::walk(mem, self.root_pa, va).map(|r| r.pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_sim::mem::PhysMem;

    fn setup() -> (PhysMem, FrameAllocator) {
        (PhysMem::new(), FrameAllocator::new(0x100_0000, 0x4000_0000))
    }

    #[test]
    fn eager_malloc_is_mapped() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::Eager);
        let va = space.malloc(&mut mem, &mut frames, 10_000, 64);
        for off in [0u64, 4096, 9999] {
            assert!(space.translate(&mem, va + off).is_some(), "offset {off}");
        }
    }

    #[test]
    fn lazy_malloc_faults_then_maps() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::Lazy);
        let va = space.malloc(&mut mem, &mut frames, 4096, 4096);
        assert!(space.translate(&mem, va).is_none(), "lazy: unmapped");
        space.handle_fault(&mut mem, &mut frames, va + 100);
        assert!(space.translate(&mem, va).is_some());
    }

    #[test]
    fn huge_pages_are_megapages() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::HugePages);
        let va = space.malloc(&mut mem, &mut frames, 3 << 20, 64);
        let r = sv39::walk(&mem, space.root_pa(), va).expect("mapped");
        assert_eq!(r.size, PageSize::Mega);
        assert_eq!(r.levels, 2);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::Eager);
        let a = space.malloc(&mut mem, &mut frames, 100, 64);
        let b = space.malloc(&mut mem, &mut frames, 100, 64);
        assert!(b >= a + 100);
        // Writing through one VA must not alias the other.
        let pa_a = space.translate(&mem, a).unwrap();
        let pa_b = space.translate(&mem, b).unwrap();
        mem.write_u64(pa_a, 1);
        mem.write_u64(pa_b, 2);
        assert_eq!(mem.read_u64(pa_a), 1);
    }

    #[test]
    fn translator_handle_walks() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::Eager);
        let va = space.malloc(&mut mem, &mut frames, 64, 64);
        let t = space.translator();
        assert_eq!(t.translate(&mem, va), space.translate(&mem, va));
    }

    #[test]
    fn unmap_revokes_translation() {
        let (mut mem, mut frames) = setup();
        let mut space = AddressSpace::new(&mut frames, MapPolicy::Eager);
        let va = space.malloc(&mut mem, &mut frames, 4096, 4096);
        assert!(space.unmap(&mut mem, va));
        assert!(space.translate(&mem, va).is_none());
    }
}
