//! Physical frame allocation for guest DRAM.

use crate::sv39::PAGE_BYTES;

/// A bump allocator over a physical address range, 4 KiB granular.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
    end: u64,
}

impl FrameAllocator {
    /// Manages frames in `[start, end)`.
    ///
    /// # Panics
    /// Panics unless both bounds are page aligned and the range is
    /// non-empty.
    pub fn new(start: u64, end: u64) -> Self {
        assert_eq!(start % PAGE_BYTES, 0, "start must be page aligned");
        assert_eq!(end % PAGE_BYTES, 0, "end must be page aligned");
        assert!(start < end, "empty frame range");
        Self { next: start, end }
    }

    /// Allocates one zero-initialised-by-construction frame (guest memory
    /// reads as zero before first write).
    ///
    /// # Panics
    /// Panics when physical memory is exhausted.
    pub fn alloc(&mut self) -> u64 {
        self.alloc_contig(1)
    }

    /// Allocates `n` physically contiguous frames, returning the first.
    ///
    /// # Panics
    /// Panics when physical memory is exhausted.
    pub fn alloc_contig(&mut self, n: u64) -> u64 {
        let pa = self.next;
        let bytes = n * PAGE_BYTES;
        assert!(self.next + bytes <= self.end, "out of physical frames");
        self.next += bytes;
        pa
    }

    /// Allocates frames aligned to `align` bytes (for superpages).
    ///
    /// # Panics
    /// Panics if `align` is not a power-of-two multiple of the page size,
    /// or when memory is exhausted.
    pub fn alloc_aligned(&mut self, n: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two() && align >= PAGE_BYTES);
        self.next = self.next.div_ceil(align) * align;
        self.alloc_contig(n)
    }

    /// Frames remaining.
    pub fn frames_left(&self) -> u64 {
        (self.end - self.next) / PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocation() {
        let mut f = FrameAllocator::new(0x10_0000, 0x20_0000);
        let a = f.alloc();
        let b = f.alloc();
        assert_eq!(b, a + PAGE_BYTES);
        assert_eq!(f.frames_left(), 256 - 2);
    }

    #[test]
    fn contiguous_block() {
        let mut f = FrameAllocator::new(0x10_0000, 0x20_0000);
        let a = f.alloc_contig(4);
        let b = f.alloc();
        assert_eq!(b, a + 4 * PAGE_BYTES);
    }

    #[test]
    fn aligned_allocation() {
        let mut f = FrameAllocator::new(0x10_0000, 0x4000_0000);
        let _ = f.alloc();
        let huge = f.alloc_aligned(512, 1 << 21);
        assert_eq!(huge % (1 << 21), 0);
    }

    #[test]
    #[should_panic(expected = "out of physical frames")]
    fn exhaustion_panics() {
        let mut f = FrameAllocator::new(0x1000, 0x3000);
        f.alloc();
        f.alloc();
        f.alloc();
    }
}
