//! The device MMU model (paper §4.2.4).
//!
//! "The Cohort MMU features a TLB and page table walker to maximise its
//! independence from the cores in the SoC." This module provides the
//! ISA-native (Sv39) MMU used by both the Cohort engine and the MAPLE
//! baseline unit: a small fully-associative TLB with LRU replacement and
//! superpage entries, plus an incremental walk state machine. The owning
//! component drives the walk by issuing *timed, coherent* reads of each
//! PTE (so walks cost real cycles and real coherence traffic) and feeding
//! the values back.

use crate::sv39::{self, PageSize};

/// One TLB entry.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    va_base: u64,
    pa_base: u64,
    size: PageSize,
    lru: u64,
}

/// TLB lookup result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbResult {
    /// Translation found.
    Hit {
        /// Translated physical address.
        pa: u64,
    },
    /// Walk required.
    Miss,
}

/// Counters for the MMU.
#[derive(Debug, Default, Clone)]
pub struct MmuCounters {
    /// TLB hits.
    pub hits: u64,
    /// TLB misses (walks started).
    pub misses: u64,
    /// Page faults raised.
    pub faults: u64,
    /// TLB flushes (MMU-notifier shootdowns).
    pub flushes: u64,
}

/// A fully-associative, LRU TLB with a page-table-walk state machine.
#[derive(Debug)]
pub struct DeviceMmu {
    entries: Vec<Option<TlbEntry>>,
    tick: u64,
    root_pa: Option<u64>,
    counters: MmuCounters,
}

impl DeviceMmu {
    /// Creates an MMU with `entries` TLB slots (paper: 16).
    pub fn new(entries: usize) -> Self {
        Self {
            entries: vec![None; entries.max(1)],
            tick: 0,
            root_pa: None,
            counters: MmuCounters::default(),
        }
    }

    /// Sets the page-table root (the driver writes this at registration).
    pub fn set_root(&mut self, root_pa: u64) {
        self.root_pa = Some(root_pa);
        self.flush();
        self.counters.flushes -= 1; // set_root's flush is not a shootdown
    }

    /// The configured root, if any.
    pub fn root_pa(&self) -> Option<u64> {
        self.root_pa
    }

    /// Flushes the whole TLB (MMU-notifier shootdown, §4.4).
    pub fn flush(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.counters.flushes += 1;
    }

    /// Counter snapshot.
    pub fn counters(&self) -> &MmuCounters {
        &self.counters
    }

    /// Looks up `va`; a hit refreshes LRU.
    pub fn lookup(&mut self, va: u64) -> TlbResult {
        self.tick += 1;
        let tick = self.tick;
        for e in self.entries.iter_mut().flatten() {
            let bytes = e.size.bytes();
            if va >= e.va_base && va < e.va_base + bytes {
                e.lru = tick;
                self.counters.hits += 1;
                return TlbResult::Hit {
                    pa: e.pa_base + (va - e.va_base),
                };
            }
        }
        self.counters.misses += 1;
        TlbResult::Miss
    }

    /// Inserts a translation (after a successful walk, or directly by the
    /// OS through the "write the PTE into the TLB" fault-resolution
    /// register, §4.2.4).
    pub fn insert(&mut self, va: u64, pa: u64, size: PageSize) {
        self.tick += 1;
        let bytes = size.bytes();
        let entry = TlbEntry {
            va_base: va / bytes * bytes,
            pa_base: pa / bytes * bytes,
            size,
            lru: self.tick,
        };
        // Reuse an existing entry for the same page, then a free slot,
        // then evict LRU.
        if let Some(e) = self
            .entries
            .iter_mut()
            .flatten()
            .find(|e| e.va_base == entry.va_base && e.size == entry.size)
        {
            *e = entry;
            return;
        }
        if let Some(slot) = self.entries.iter_mut().find(|s| s.is_none()) {
            *slot = Some(entry);
            return;
        }
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|s| s.as_ref().map_or(u64::MAX, |e| e.lru))
            .expect("nonempty TLB");
        *victim = Some(entry);
    }

    /// Begins a hardware walk for `va`.
    ///
    /// # Panics
    /// Panics if no root has been configured.
    pub fn begin_walk(&mut self, va: u64) -> WalkMachine {
        let root = self.root_pa.expect("MMU root not configured");
        WalkMachine {
            va,
            level: 2,
            table_pa: root,
        }
    }

    /// Records a fault (for counters) — called by the component when a walk
    /// ends in [`WalkStep::Fault`].
    pub fn note_fault(&mut self) {
        self.counters.faults += 1;
    }
}

/// Incremental page-table walk driven by the owning component.
#[derive(Debug, Clone, Copy)]
pub struct WalkMachine {
    va: u64,
    level: u32,
    table_pa: u64,
}

/// What the walk needs or produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStep {
    /// The component must perform a coherent read of this PTE address and
    /// feed the value back via [`WalkMachine::feed`].
    NeedPte {
        /// Physical address of the PTE to read.
        pa: u64,
    },
    /// Walk finished: install `va -> pa` and retry the access.
    Done {
        /// Translated physical address for the faulting access.
        pa: u64,
        /// Page base virtual address.
        va_page: u64,
        /// Page base physical address.
        pa_page: u64,
        /// Page size found.
        size: PageSize,
    },
    /// Page fault: the component raises the Cohort interrupt (§4.4).
    Fault,
}

impl WalkMachine {
    /// The virtual address being walked.
    pub fn va(&self) -> u64 {
        self.va
    }

    /// Address of the next PTE to fetch.
    pub fn step(&self) -> WalkStep {
        WalkStep::NeedPte {
            pa: sv39::pte_addr(self.table_pa, self.va, self.level),
        }
    }

    /// Feeds the fetched PTE value; returns the next step.
    pub fn feed(&mut self, pte: u64) -> WalkStep {
        match sv39::classify_pte(pte) {
            sv39::PteKind::Invalid => WalkStep::Fault,
            sv39::PteKind::Branch { next_table_pa } => {
                if self.level == 0 {
                    return WalkStep::Fault;
                }
                self.level -= 1;
                self.table_pa = next_table_pa;
                self.step()
            }
            sv39::PteKind::Leaf { page_pa, .. } => {
                let size = match self.level {
                    0 => PageSize::Base,
                    1 => PageSize::Mega,
                    2 => PageSize::Giga,
                    _ => unreachable!(),
                };
                if page_pa % size.bytes() != 0 {
                    return WalkStep::Fault;
                }
                let offset = self.va & (size.bytes() - 1);
                WalkStep::Done {
                    pa: page_pa + offset,
                    va_page: self.va & !(size.bytes() - 1),
                    pa_page: page_pa,
                    size,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameAllocator;
    use crate::sv39::pte_flags;
    use cohort_sim::mem::PhysMem;

    fn mapped_space() -> (PhysMem, u64, u64) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(0x100_0000, 0x200_0000);
        let root = frames.alloc();
        let va = 0x4000_0000u64;
        let pa = 0x180_0000u64;
        sv39::map(
            &mut mem,
            root,
            va,
            pa,
            PageSize::Base,
            pte_flags::DATA,
            || frames.alloc(),
        );
        (mem, root, va)
    }

    fn drive_walk(mmu: &mut DeviceMmu, mem: &PhysMem, va: u64) -> WalkStep {
        let mut walk = mmu.begin_walk(va);
        let mut step = walk.step();
        let mut reads = 0;
        loop {
            match step {
                WalkStep::NeedPte { pa } => {
                    reads += 1;
                    assert!(reads <= 3, "walk must terminate in 3 reads");
                    step = walk.feed(mem.read_u64(pa));
                }
                other => return other,
            }
        }
    }

    #[test]
    fn miss_walk_hit_sequence() {
        let (mem, root, va) = mapped_space();
        let mut mmu = DeviceMmu::new(16);
        mmu.set_root(root);
        assert_eq!(mmu.lookup(va), TlbResult::Miss);
        match drive_walk(&mut mmu, &mem, va + 0x123) {
            WalkStep::Done {
                pa,
                va_page,
                pa_page,
                size,
            } => {
                assert_eq!(pa, 0x180_0123);
                mmu.insert(va_page, pa_page, size);
            }
            other => panic!("walk failed: {other:?}"),
        }
        assert_eq!(mmu.lookup(va + 0x456), TlbResult::Hit { pa: 0x180_0456 });
        assert_eq!(mmu.counters().hits, 1);
        assert_eq!(mmu.counters().misses, 1);
    }

    #[test]
    fn unmapped_va_faults() {
        let (mem, root, _) = mapped_space();
        let mut mmu = DeviceMmu::new(16);
        mmu.set_root(root);
        assert_eq!(drive_walk(&mut mmu, &mem, 0xdead_0000), WalkStep::Fault);
    }

    #[test]
    fn flush_drops_entries() {
        let (mem, root, va) = mapped_space();
        let mut mmu = DeviceMmu::new(16);
        mmu.set_root(root);
        if let WalkStep::Done {
            va_page,
            pa_page,
            size,
            ..
        } = drive_walk(&mut mmu, &mem, va)
        {
            mmu.insert(va_page, pa_page, size);
        }
        assert!(matches!(mmu.lookup(va), TlbResult::Hit { .. }));
        mmu.flush();
        assert_eq!(mmu.lookup(va), TlbResult::Miss);
        assert_eq!(mmu.counters().flushes, 1);
    }

    #[test]
    fn lru_eviction_in_small_tlb() {
        let mut mmu = DeviceMmu::new(2);
        mmu.insert(0x1000, 0xa000, PageSize::Base);
        mmu.insert(0x2000, 0xb000, PageSize::Base);
        let _ = mmu.lookup(0x1000); // refresh first
        mmu.insert(0x3000, 0xc000, PageSize::Base); // evicts 0x2000
        assert!(matches!(mmu.lookup(0x1000), TlbResult::Hit { .. }));
        assert_eq!(mmu.lookup(0x2000), TlbResult::Miss);
        assert!(matches!(mmu.lookup(0x3000), TlbResult::Hit { .. }));
    }

    #[test]
    fn superpage_entry_covers_whole_range() {
        let mut mmu = DeviceMmu::new(4);
        mmu.insert(0x4000_0000, 0x8000_0000, PageSize::Mega);
        assert_eq!(
            mmu.lookup(0x4000_0000 + 0x1f_0000),
            TlbResult::Hit {
                pa: 0x8000_0000 + 0x1f_0000
            }
        );
    }
}
