//! A minimal process model: identity plus an address space.

use crate::addrspace::{AddressSpace, MapPolicy};
use crate::frame::FrameAllocator;

/// A guest process.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// The process's virtual address space.
    pub space: AddressSpace,
}

impl Process {
    /// Spawns a process with a fresh address space.
    pub fn spawn(pid: u32, frames: &mut FrameAllocator, policy: MapPolicy) -> Self {
        Self {
            pid,
            space: AddressSpace::new(frames, policy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_have_disjoint_tables() {
        let mut frames = FrameAllocator::new(0x100_0000, 0x200_0000);
        let a = Process::spawn(1, &mut frames, MapPolicy::Eager);
        let b = Process::spawn(2, &mut frames, MapPolicy::Eager);
        assert_ne!(a.space.root_pa(), b.space.root_pa());
    }
}
