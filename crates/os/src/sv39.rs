//! RISC-V Sv39 page tables (privileged spec §4.4).
//!
//! Three levels of 512-entry tables; 4 KiB leaf pages at level 0, 2 MiB
//! megapages at level 1, 1 GiB gigapages at level 2. Page tables are real
//! data structures written into the simulated physical memory, so the
//! Cohort engine's modelled page-table walker reads the same bytes the OS
//! wrote.

use cohort_sim::mem::MemAccess;

/// Bytes per 4 KiB page.
pub const PAGE_BYTES: u64 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Entries per table.
pub const ENTRIES: u64 = 512;

/// PTE permission/status bits.
pub mod pte_flags {
    /// Valid.
    pub const V: u64 = 1 << 0;
    /// Readable.
    pub const R: u64 = 1 << 1;
    /// Writable.
    pub const W: u64 = 1 << 2;
    /// Executable.
    pub const X: u64 = 1 << 3;
    /// User accessible.
    pub const U: u64 = 1 << 4;
    /// Accessed.
    pub const A: u64 = 1 << 6;
    /// Dirty.
    pub const D: u64 = 1 << 7;
    /// Read/write user data, pre-accessed (the common mapping here).
    pub const DATA: u64 = V | R | W | U | A | D;
}

/// Page size of a mapping level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB leaf at level 0.
    Base,
    /// 2 MiB megapage at level 1.
    Mega,
    /// 1 GiB gigapage at level 2.
    Giga,
}

impl PageSize {
    /// The level at which this page size is a leaf (0, 1, 2).
    pub fn level(self) -> u32 {
        match self {
            PageSize::Base => 0,
            PageSize::Mega => 1,
            PageSize::Giga => 2,
        }
    }

    /// Bytes covered by one page of this size.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base => 1 << 12,
            PageSize::Mega => 1 << 21,
            PageSize::Giga => 1 << 30,
        }
    }
}

/// Virtual page number for `level` (0 = least significant).
#[inline]
pub fn vpn(va: u64, level: u32) -> u64 {
    (va >> (PAGE_SHIFT + 9 * level)) & (ENTRIES - 1)
}

/// Physical address of the PTE for `va` within the table at `table_pa`,
/// walked at `level` (2 = root).
#[inline]
pub fn pte_addr(table_pa: u64, va: u64, level: u32) -> u64 {
    table_pa + vpn(va, level) * 8
}

/// Packs a physical address and flags into a PTE.
#[inline]
pub fn make_pte(pa: u64, flags: u64) -> u64 {
    ((pa >> PAGE_SHIFT) << 10) | flags
}

/// Extracts the physical address from a PTE.
#[inline]
pub fn pte_pa(pte: u64) -> u64 {
    (pte >> 10) << PAGE_SHIFT
}

/// Classification of a PTE during a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteKind {
    /// V bit clear: page fault.
    Invalid,
    /// Valid non-leaf: points at the next-level table.
    Branch {
        /// Physical address of the next table.
        next_table_pa: u64,
    },
    /// Valid leaf at some level.
    Leaf {
        /// Physical base of the page.
        page_pa: u64,
        /// The raw flag bits.
        flags: u64,
    },
}

/// Classifies a raw PTE value.
#[inline]
pub fn classify_pte(pte: u64) -> PteKind {
    if pte & pte_flags::V == 0 {
        PteKind::Invalid
    } else if pte & (pte_flags::R | pte_flags::W | pte_flags::X) == 0 {
        PteKind::Branch {
            next_table_pa: pte_pa(pte),
        }
    } else {
        PteKind::Leaf {
            page_pa: pte_pa(pte),
            flags: pte,
        }
    }
}

/// Result of a successful functional walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Translated physical address.
    pub pa: u64,
    /// Page size of the mapping found.
    pub size: PageSize,
    /// PTE physical addresses touched, root first (1 to 3 entries).
    pub pte_addrs: [u64; 3],
    /// Number of valid entries in `pte_addrs`.
    pub levels: u32,
}

/// Functionally walks the tables rooted at `root_pa` for `va`.
///
/// Returns `None` on any invalid PTE (page fault) or misaligned superpage.
pub fn walk(mem: &dyn MemAccess, root_pa: u64, va: u64) -> Option<WalkResult> {
    let mut table_pa = root_pa;
    let mut pte_addrs = [0u64; 3];
    for (i, level) in (0..3).rev().enumerate() {
        let addr = pte_addr(table_pa, va, level);
        pte_addrs[i] = addr;
        let pte = mem.read_u64(addr);
        match classify_pte(pte) {
            PteKind::Invalid => return None,
            PteKind::Branch { next_table_pa } => {
                if level == 0 {
                    return None; // branch at leaf level is malformed
                }
                table_pa = next_table_pa;
            }
            PteKind::Leaf { page_pa, .. } => {
                let size = match level {
                    0 => PageSize::Base,
                    1 => PageSize::Mega,
                    2 => PageSize::Giga,
                    _ => unreachable!(),
                };
                if page_pa % size.bytes() != 0 {
                    return None; // misaligned superpage
                }
                let offset = va & (size.bytes() - 1);
                return Some(WalkResult {
                    pa: page_pa + offset,
                    size,
                    pte_addrs,
                    levels: (i + 1) as u32,
                });
            }
        }
    }
    None
}

/// Maps `va -> pa` as a page of `size`, allocating intermediate tables via
/// `alloc_table` (which must return a zeroed, page-aligned frame).
///
/// # Panics
/// Panics if `va`/`pa` are not aligned to `size`, or if the walk hits an
/// existing leaf where a branch is needed (conflicting mapping).
pub fn map(
    mem: &mut dyn MemAccess,
    root_pa: u64,
    va: u64,
    pa: u64,
    size: PageSize,
    flags: u64,
    mut alloc_table: impl FnMut() -> u64,
) {
    assert_eq!(va % size.bytes(), 0, "va misaligned for {size:?}");
    assert_eq!(pa % size.bytes(), 0, "pa misaligned for {size:?}");
    let leaf_level = size.level();
    let mut table_pa = root_pa;
    for level in (leaf_level + 1..3).rev() {
        let addr = pte_addr(table_pa, va, level);
        let pte = mem.read_u64(addr);
        match classify_pte(pte) {
            PteKind::Invalid => {
                let next = alloc_table();
                mem.write_u64(addr, make_pte(next, pte_flags::V));
                table_pa = next;
            }
            PteKind::Branch { next_table_pa } => table_pa = next_table_pa,
            PteKind::Leaf { .. } => {
                panic!("conflicting superpage mapping at va {va:#x} level {level}")
            }
        }
    }
    let addr = pte_addr(table_pa, va, leaf_level);
    mem.write_u64(addr, make_pte(pa, flags));
}

/// Removes the mapping covering `va` (any page size). Returns true if a
/// mapping was removed.
pub fn unmap(mem: &mut dyn MemAccess, root_pa: u64, va: u64) -> bool {
    let mut table_pa = root_pa;
    for level in (0..3).rev() {
        let addr = pte_addr(table_pa, va, level);
        let pte = mem.read_u64(addr);
        match classify_pte(pte) {
            PteKind::Invalid => return false,
            PteKind::Branch { next_table_pa } => {
                if level == 0 {
                    return false;
                }
                table_pa = next_table_pa;
            }
            PteKind::Leaf { .. } => {
                mem.write_u64(addr, 0);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_sim::mem::PhysMem;

    struct Bump(u64);
    impl Bump {
        fn alloc(&mut self) -> u64 {
            let pa = self.0;
            self.0 += PAGE_BYTES;
            pa
        }
    }

    #[test]
    fn map_walk_roundtrip_4k() {
        let mut mem = PhysMem::new();
        let mut bump = Bump(0x10_0000);
        let root = bump.alloc();
        map(
            &mut mem,
            root,
            0x4000_1000,
            0x8000_2000,
            PageSize::Base,
            pte_flags::DATA,
            || bump.alloc(),
        );
        let r = walk(&mem, root, 0x4000_1abc).expect("mapped");
        assert_eq!(r.pa, 0x8000_2abc);
        assert_eq!(r.size, PageSize::Base);
        assert_eq!(r.levels, 3, "a 4K walk reads three PTEs");
        assert!(
            walk(&mem, root, 0x4000_2000).is_none(),
            "adjacent page unmapped"
        );
    }

    #[test]
    fn megapage_walk_is_two_levels() {
        let mut mem = PhysMem::new();
        let mut bump = Bump(0x10_0000);
        let root = bump.alloc();
        let va = 2 << 21; // 2 MiB aligned
        let pa = 6 << 21;
        map(
            &mut mem,
            root,
            va,
            pa,
            PageSize::Mega,
            pte_flags::DATA,
            || bump.alloc(),
        );
        let r = walk(&mem, root, va + 0x12_345).expect("mapped");
        assert_eq!(r.pa, pa + 0x12_345);
        assert_eq!(r.size, PageSize::Mega);
        assert_eq!(r.levels, 2, "a 2M walk reads two PTEs");
    }

    #[test]
    fn gigapage_walk_is_one_level() {
        let mut mem = PhysMem::new();
        let mut bump = Bump(0x10_0000);
        let root = bump.alloc();
        let va = 1u64 << 30;
        let pa = 3u64 << 30;
        map(
            &mut mem,
            root,
            va,
            pa,
            PageSize::Giga,
            pte_flags::DATA,
            || bump.alloc(),
        );
        let r = walk(&mem, root, va + 0xdead).expect("mapped");
        assert_eq!(r.pa, pa + 0xdead);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn unmap_invalidates() {
        let mut mem = PhysMem::new();
        let mut bump = Bump(0x10_0000);
        let root = bump.alloc();
        map(
            &mut mem,
            root,
            0x1000,
            0x2000,
            PageSize::Base,
            pte_flags::DATA,
            || bump.alloc(),
        );
        assert!(walk(&mem, root, 0x1000).is_some());
        assert!(unmap(&mut mem, root, 0x1000));
        assert!(walk(&mem, root, 0x1000).is_none());
        assert!(!unmap(&mut mem, root, 0x1000), "already unmapped");
    }

    #[test]
    fn shared_intermediate_tables() {
        let mut mem = PhysMem::new();
        let mut bump = Bump(0x10_0000);
        let root = bump.alloc();
        let before = bump.0;
        map(
            &mut mem,
            root,
            0x1000,
            0x2000,
            PageSize::Base,
            pte_flags::DATA,
            || bump.alloc(),
        );
        let after_first = bump.0;
        map(
            &mut mem,
            root,
            0x2000,
            0x3000,
            PageSize::Base,
            pte_flags::DATA,
            || bump.alloc(),
        );
        assert_eq!(bump.0, after_first, "same 2M region reuses tables");
        assert!(after_first > before);
    }

    #[test]
    fn vpn_extraction() {
        let va = (5u64 << 30) | (17 << 21) | (33 << 12) | 0x7;
        assert_eq!(vpn(va, 2), 5);
        assert_eq!(vpn(va, 1), 17);
        assert_eq!(vpn(va, 0), 33);
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify_pte(0), PteKind::Invalid);
        assert_eq!(
            classify_pte(make_pte(0x5000, pte_flags::V)),
            PteKind::Branch {
                next_table_pa: 0x5000
            }
        );
        match classify_pte(make_pte(0x5000, pte_flags::DATA)) {
            PteKind::Leaf { page_pa, .. } => assert_eq!(page_pa, 0x5000),
            other => panic!("expected leaf, got {other:?}"),
        }
    }
}
