//! # cohort-os — guest operating system model
//!
//! The Cohort paper boots SMP Linux on its FPGA SoC and ships a kernel
//! driver (§4.4) that registers queues, keeps the engine's MMU coherent via
//! MMU notifiers, and resolves the engine's page faults from an interrupt.
//! This crate models that software stack against the simulated SoC:
//!
//! * [`sv39`] — RISC-V Sv39 page-table encoding, building and walking, with
//!   4 KiB, 2 MiB and 1 GiB page support (the paper's huge-page claim,
//!   §4.1);
//! * [`frame`] — a physical frame allocator for guest DRAM;
//! * [`addrspace`] — per-process virtual address spaces with a
//!   `malloc`-style bump allocator (eager or demand-paged) and a
//!   [`cohort_sim::translate::Translator`] for core-side accesses;
//! * [`mmu`] — the device MMU model shared by the Cohort engine and the
//!   MAPLE baseline: a small fully-associative TLB (16 entries, §5) plus an
//!   incremental Sv39 walk state machine the owning component drives with
//!   timed coherent reads;
//! * [`driver`] — the Cohort kernel driver: the engine's register map
//!   (uapi), `cohort_register`/`cohort_unregister` syscall cost models that
//!   expand into MMIO programming sequences, TLB-shootdown (MMU notifier)
//!   flushes, and the page-fault interrupt handler.

pub mod addrspace;
pub mod driver;
pub mod frame;
pub mod mmu;
pub mod process;
pub mod sv39;

pub use addrspace::AddressSpace;
pub use driver::{CohortDriver, Placement, ShardAssignment, ShardError, ShardPool};
pub use frame::FrameAllocator;
pub use process::Process;
