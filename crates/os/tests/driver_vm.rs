//! Tests of the driver's shared-VM demand paging across both fault paths.

use cohort_os::addrspace::{AddressSpace, MapPolicy};
use cohort_os::driver::CohortDriver;
use cohort_os::frame::FrameAllocator;
use cohort_sim::mem::PhysMem;

#[test]
fn shared_vm_maps_exactly_once_across_paths() {
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(0x100_0000, 0x200_0000);
    let mut space = AddressSpace::new(&mut frames, MapPolicy::Lazy);
    let va = space.malloc(&mut mem, &mut frames, 4096, 4096);
    let vm = CohortDriver::shared_vm(space, frames);

    // Engine-path fault resolution.
    {
        let mut g = vm.lock().unwrap();
        let (space, frames) = &mut *g;
        assert!(space.translate(&mem, va).is_none());
        space.handle_fault(&mut mem, frames, va);
        let pa1 = space.translate(&mem, va).unwrap();
        // Core-path "fault" on the same page must observe the mapping and
        // not double-allocate.
        if space.translate(&mem, va).is_none() {
            space.handle_fault(&mut mem, frames, va);
        }
        assert_eq!(space.translate(&mem, va).unwrap(), pa1);
    }
}

#[test]
fn fault_handlers_share_one_frame_pool() {
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(0x100_0000, 0x200_0000);
    let mut space = AddressSpace::new(&mut frames, MapPolicy::Lazy);
    let va_a = space.malloc(&mut mem, &mut frames, 4096, 4096);
    let va_b = space.malloc(&mut mem, &mut frames, 4096, 4096);
    let vm = CohortDriver::shared_vm(space, frames);
    let (pa_a, pa_b) = {
        let mut g = vm.lock().unwrap();
        let (space, frames) = &mut *g;
        let a = space.handle_fault(&mut mem, frames, va_a);
        let b = space.handle_fault(&mut mem, frames, va_b);
        (a, b)
    };
    assert_ne!(pa_a, pa_b, "distinct pages come from distinct frames");
}
