//! The "null accelerator": an AXI-Stream FIFO passthrough.
//!
//! The paper demonstrates AXI-Stream functionality using an AXI-Stream FIFO
//! as a null accelerator (§4.3) — data out equals data in, with a small
//! configurable latency. Useful for validating the stream interface and for
//! measuring pure communication overhead (zero-compute ablation).

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};

/// A passthrough FIFO with configurable word size and latency.
#[derive(Debug, Clone)]
pub struct NullFifo {
    block_bytes: usize,
    latency: u64,
}

impl Default for NullFifo {
    fn default() -> Self {
        Self::new()
    }
}

impl NullFifo {
    /// Creates a 64-bit-wide FIFO with a 1-cycle latency.
    pub fn new() -> Self {
        Self {
            block_bytes: 8,
            latency: 1,
        }
    }

    /// Creates a FIFO with a custom width and latency.
    ///
    /// # Panics
    /// Panics if `block_bytes` is zero.
    pub fn with_geometry(block_bytes: usize, latency: u64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        Self {
            block_bytes,
            latency,
        }
    }
}

impl Accelerator for NullFifo {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "nullfifo",
            input_block_bytes: self.block_bytes,
            output_block_bytes: self.block_bytes,
            latency_cycles: self.latency,
        }
    }

    fn configure(&mut self, _csr: &[u8]) -> Result<(), ConfigError> {
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        assert_eq!(
            input.len(),
            self.block_bytes,
            "nullfifo block size mismatch"
        );
        input.to_vec()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough() {
        let mut f = NullFifo::new();
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(f.process_block(&data), data.to_vec());
    }

    #[test]
    fn custom_geometry() {
        let f = NullFifo::with_geometry(16, 3);
        let d = f.descriptor();
        assert_eq!(d.input_block_bytes, 16);
        assert_eq!(d.latency_cycles, 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_block_size_panics() {
        let mut f = NullFifo::new();
        let _ = f.process_block(&[0; 4]);
    }
}
