//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Two layers:
//!
//! * [`Sha256`] — a general streaming hash context (`update`/`finalize`)
//!   plus the [`sha256`] one-shot convenience, usable as an ordinary
//!   software library and as the reference the benchmarks verify against;
//! * [`Sha256Accel`] — the accelerator model matching the paper's
//!   OpenCores-style core: it consumes 512-bit blocks and emits a 256-bit
//!   digest per block with a 66-cycle latency (§6.1). By default each block
//!   is compressed against the initial hash state (raw single-block mode,
//!   which is how the benchmark uses it); a CSR flag selects chained mode
//!   where state carries across blocks.

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};

/// Initial hash values H(0) (§5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants K (§4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Compresses one 512-bit block into `state`.
pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// A streaming SHA-256 context.
///
/// # Example
/// ```
/// use cohort_accel::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(d: &[u8]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_bytes += data.len() as u64;
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything was absorbed into the partial buffer; the
                // tail below must not clobber buf_len.
                return;
            }
        }
        while data.len() >= 64 {
            compress(&mut self.state, data[..64].try_into().expect("64 bytes"));
            data = &data[64..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Pads and produces the 32-byte digest, consuming the context.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_bytes * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is appended without counting toward the message length.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Digest of one raw 512-bit block compressed against the initial state
/// (no padding, no length) — the single-block mode of the RTL core and of
/// the paper's SHA benchmark.
pub fn sha256_raw_block(block: &[u8; 64]) -> [u8; 32] {
    let mut state = H0;
    compress(&mut state, block);
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Operating mode of [`Sha256Accel`], selected through its CSR struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sha256Mode {
    /// Each 512-bit block is compressed against the initial state and a
    /// digest is emitted per block (the paper's benchmark behaviour).
    #[default]
    RawPerBlock,
    /// State chains across blocks; a digest of the running state is
    /// emitted per block (useful for hashing long streams in hardware).
    Chained,
}

/// The SHA-256 accelerator model: 512 bits in, 256 bits out, 66 cycles.
#[derive(Debug, Clone)]
pub struct Sha256Accel {
    mode: Sha256Mode,
    state: [u32; 8],
}

impl Default for Sha256Accel {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256Accel {
    /// Pipeline latency of the modelled RTL core (paper §6.1).
    pub const LATENCY: u64 = 66;

    /// Creates the accelerator in [`Sha256Mode::RawPerBlock`].
    pub fn new() -> Self {
        Self {
            mode: Sha256Mode::default(),
            state: H0,
        }
    }

    /// Creates the accelerator in a specific mode.
    pub fn with_mode(mode: Sha256Mode) -> Self {
        Self { mode, state: H0 }
    }
}

impl Accelerator for Sha256Accel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "sha256",
            input_block_bytes: 64,
            output_block_bytes: 32,
            latency_cycles: Self::LATENCY,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        match csr.first() {
            None | Some(0) => self.mode = Sha256Mode::RawPerBlock,
            Some(1) => self.mode = Sha256Mode::Chained,
            Some(other) => {
                return Err(ConfigError::new(format!("unknown sha256 mode {other}")));
            }
        }
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        let block: &[u8; 64] = input.try_into().expect("sha256 takes 64-byte blocks");
        match self.mode {
            Sha256Mode::RawPerBlock => sha256_raw_block(block).to_vec(),
            Sha256Mode::Chained => {
                compress(&mut self.state, block);
                let mut out = vec![0u8; 32];
                for (i, word) in self.state.iter().enumerate() {
                    out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
                }
                out
            }
        }
    }

    fn reset(&mut self) {
        self.state = H0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 / common test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn raw_block_differs_from_padded() {
        let block = [0x61u8; 64];
        assert_ne!(sha256_raw_block(&block), sha256(&block));
    }

    #[test]
    fn accel_raw_mode_matches_reference() {
        let mut acc = Sha256Accel::new();
        let block = [7u8; 64];
        assert_eq!(acc.process_block(&block), sha256_raw_block(&block).to_vec());
        // Per-block mode is stateless across blocks.
        assert_eq!(acc.process_block(&block), sha256_raw_block(&block).to_vec());
    }

    #[test]
    fn accel_chained_mode_carries_state() {
        let mut acc = Sha256Accel::with_mode(Sha256Mode::Chained);
        let b1 = [1u8; 64];
        let b2 = [2u8; 64];
        let d1 = acc.process_block(&b1);
        let d2 = acc.process_block(&b2);
        assert_ne!(d1, d2);
        // Chained state after both blocks equals a manual double compress.
        let mut state = H0;
        compress(&mut state, &b1);
        compress(&mut state, &b2);
        let expect: Vec<u8> = state.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert_eq!(d2, expect);
        acc.reset();
        assert_eq!(acc.process_block(&b1), d1, "reset restores initial state");
    }

    #[test]
    fn accel_configure_selects_mode() {
        let mut acc = Sha256Accel::new();
        acc.configure(&[1]).unwrap();
        let block = [9u8; 64];
        let d = acc.process_block(&block);
        assert_eq!(
            d,
            sha256_raw_block(&block).to_vec(),
            "first chained block == raw"
        );
        assert!(acc.configure(&[9]).is_err());
    }

    #[test]
    fn descriptor_matches_paper() {
        let acc = Sha256Accel::new();
        let d = acc.descriptor();
        assert_eq!(d.input_block_bytes, 64);
        assert_eq!(d.output_block_bytes, 32);
        assert_eq!(d.latency_cycles, 66);
    }
}
