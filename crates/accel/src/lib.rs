//! # cohort-accel — stream/buffer-in stream/buffer-out accelerators
//!
//! Functional models of the accelerators integrated in the Cohort paper's
//! FPGA prototype (§5.2), implemented from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (the OpenCores SHA-256 core's role);
//! * [`aes128`] — FIPS 197 AES-128 encryption/decryption (the OpenCores
//!   AES-128 core's role), key delivered through a CSR struct;
//! * [`h264`] — an H.264 CAVLC residual entropy encoder (the hardh264
//!   core's role), with Exp-Golomb headers, the full CAVLC VLC tables and a
//!   matching decoder for round-trip testing;
//! * [`stft`] — a fixed-point short-time Fourier transform (mentioned in
//!   §4.3), windowed radix-2 FFT;
//! * [`nullfifo`] — the AXI-Stream FIFO "null accelerator" used to validate
//!   the stream interface;
//! * [`hmac`] and [`aesctr`] — additional SBIO workloads (HMAC-SHA256
//!   message authentication and the AES-CTR stream cipher) built on the
//!   same primitives.
//!
//! All of them implement the [`Accelerator`] trait: blocks of bytes in,
//! bytes out, with a per-block pipeline latency used by the timing wrappers
//! in `cohort-engine` and `cohort-maple`. The [`ratchet`] module provides
//! the width adapters that resize the Cohort endpoints' 64-bit words to each
//! accelerator's native block size (§4.3).
//!
//! ## Example
//!
//! ```
//! use cohort_accel::{Accelerator, sha256::Sha256Accel};
//!
//! let mut acc = Sha256Accel::new();
//! let block = [0u8; 64]; // one 512-bit input block
//! let digest = acc.process_block(&block);
//! assert_eq!(digest.len(), 32);
//! ```

pub mod accelerator;
pub mod aes128;
pub mod aesctr;
pub mod h264;
pub mod hmac;
pub mod nullfifo;
pub mod ratchet;
pub mod sha256;
pub mod stft;
pub mod timing;

pub use accelerator::{AccelDescriptor, Accelerator, ConfigError};
pub use timing::TimedAccel;
