//! AES-128-CTR: the block cipher as a stream cipher (NIST SP 800-38A).
//!
//! A keystream-XOR accelerator is the archetypal stream-in/stream-out
//! Cohort workload: unlike ECB it has internal state (the counter), so it
//! also exercises `reset` semantics and CSR delivery of key **and** IV.
//! Encrypt and decrypt are the same operation.

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};
use crate::aes128::Aes128;

/// Applies AES-128-CTR over `data` in place, starting from `counter`.
/// Returns the counter value after processing (for chaining calls).
pub fn ctr_xor(cipher: &Aes128, counter: &[u8; 16], data: &mut [u8]) -> [u8; 16] {
    let mut ctr = *counter;
    for chunk in data.chunks_mut(16) {
        let keystream = cipher.encrypt_block(&ctr);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        increment_counter(&mut ctr);
    }
    ctr
}

/// Big-endian increment of the 128-bit counter block (§B.1 of SP 800-38A).
pub fn increment_counter(ctr: &mut [u8; 16]) {
    for byte in ctr.iter_mut().rev() {
        *byte = byte.wrapping_add(1);
        if *byte != 0 {
            break;
        }
    }
}

/// The AES-CTR accelerator: 128-bit blocks XORed with the keystream.
///
/// CSR layout: 16 key bytes followed by 16 initial-counter bytes.
#[derive(Debug, Clone)]
pub struct AesCtrAccel {
    cipher: Aes128,
    iv: [u8; 16],
    counter: [u8; 16],
}

impl Default for AesCtrAccel {
    fn default() -> Self {
        Self::new()
    }
}

impl AesCtrAccel {
    /// Same pipeline latency as the ECB core plus the XOR stage.
    pub const LATENCY: u64 = 43;

    /// Creates the accelerator with a zero key and counter.
    pub fn new() -> Self {
        Self {
            cipher: Aes128::new(&[0; 16]),
            iv: [0; 16],
            counter: [0; 16],
        }
    }
}

impl Accelerator for AesCtrAccel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "aes128-ctr",
            input_block_bytes: 16,
            output_block_bytes: 16,
            latency_cycles: Self::LATENCY,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        if csr.len() < 32 {
            return Err(ConfigError::new(format!(
                "AES-CTR CSR needs 16 key + 16 counter bytes, got {}",
                csr.len()
            )));
        }
        self.cipher = Aes128::new(csr[..16].try_into().expect("16B key"));
        self.iv = csr[16..32].try_into().expect("16B counter");
        self.counter = self.iv;
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len(), 16, "aes-ctr takes 16-byte blocks");
        let mut block: [u8; 16] = input.try_into().expect("16B");
        let keystream = self.cipher.encrypt_block(&self.counter);
        for (b, k) in block.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        increment_counter(&mut self.counter);
        block.to_vec()
    }

    fn reset(&mut self) {
        self.counter = self.iv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.5.1 (AES-128 CTR).
    #[test]
    fn sp800_38a_ctr_vectors() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let ctr = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let cipher = Aes128::new(key.as_slice().try_into().unwrap());
        let mut data = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        ctr_xor(&cipher, ctr.as_slice().try_into().unwrap(), &mut data);
        assert_eq!(
            hex(&data),
            "874d6191b620e3261bef6864990db6ce\
             9806f66b7970fdff8617187bb9fffdff\
             5ae4df3edbd5d35e5b4f09020db03eab\
             1e031dda2fbe03d1792170a0f3009cee"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn ctr_is_its_own_inverse() {
        let cipher = Aes128::new(b"self inverse key");
        let ctr = [7u8; 16];
        let original: Vec<u8> = (0..80).collect();
        let mut data = original.clone();
        ctr_xor(&cipher, &ctr, &mut data);
        assert_ne!(data, original);
        ctr_xor(&cipher, &ctr, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        assert_eq!(c, [0u8; 16], "full wraparound");
        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_counter(&mut c);
        assert_eq!(c[15], 0);
        assert_eq!(c[14], 1);
    }

    #[test]
    fn accel_matches_function_and_resets() {
        let mut acc = AesCtrAccel::new();
        let mut csr = b"stream cipher k!".to_vec();
        csr.extend_from_slice(&[9u8; 16]);
        acc.configure(&csr).unwrap();
        let pt = [0x5au8; 16];
        let c1 = acc.process_block(&pt);
        let c2 = acc.process_block(&pt);
        assert_ne!(c1, c2, "counter advances per block");
        acc.reset();
        assert_eq!(acc.process_block(&pt), c1, "reset restores the IV");
        // Cross-check with the bulk function.
        let cipher = Aes128::new(b"stream cipher k!");
        let mut bulk = [0x5au8; 32].to_vec();
        ctr_xor(&cipher, &[9u8; 16], &mut bulk);
        assert_eq!(&bulk[..16], &c1[..]);
        assert_eq!(&bulk[16..], &c2[..]);
    }

    #[test]
    fn accel_rejects_short_csr() {
        let mut acc = AesCtrAccel::new();
        assert!(acc.configure(&[0; 16]).is_err());
    }
}
