//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on the from-scratch SHA-256.
//!
//! Included as an additional SBIO workload: message authentication is the
//! classic companion to the paper's SHA/AES accelerators, and the keyed
//! construction exercises the CSR configuration path (the key arrives in
//! the registration-time CSR struct, like the AES key in §5.2).

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};
use crate::sha256::Sha256;

/// Computes HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let mut h = Sha256::new();
        h.update(key);
        key_block[..32].copy_from_slice(&h.finalize());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// The HMAC accelerator: authenticates each 512-bit block independently
/// under the CSR-configured key (per-block MACs, mirroring the SHA
/// benchmark's per-block digests).
#[derive(Debug, Clone)]
pub struct HmacAccel {
    key: Vec<u8>,
}

impl Default for HmacAccel {
    fn default() -> Self {
        Self::new()
    }
}

impl HmacAccel {
    /// Block latency: two chained SHA compressions plus key scheduling.
    pub const LATENCY: u64 = 140;

    /// Creates the accelerator with an empty key (configure via CSR).
    pub fn new() -> Self {
        Self { key: Vec::new() }
    }
}

impl Accelerator for HmacAccel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "hmac-sha256",
            input_block_bytes: 64,
            output_block_bytes: 32,
            latency_cycles: Self::LATENCY,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        if csr.len() > 64 {
            return Err(ConfigError::new(
                "HMAC CSR keys longer than 64 bytes are not supported",
            ));
        }
        self.key = csr.to_vec();
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len(), 64, "hmac takes 64-byte blocks");
        hmac_sha256(&self.key, input).to_vec()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa x20 key, 0xdd x50 data.
    #[test]
    fn rfc4231_case3() {
        let mac = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_keys_are_hashed_first() {
        let long_key = vec![0x55u8; 100];
        let mac = hmac_sha256(&long_key, b"msg");
        // Equivalent to using SHA256(key) as the key.
        let hashed = {
            let mut h = Sha256::new();
            h.update(&long_key);
            h.finalize()
        };
        assert_eq!(mac, hmac_sha256(&hashed, b"msg"));
    }

    #[test]
    fn accel_matches_function() {
        let mut acc = HmacAccel::new();
        acc.configure(b"a key").unwrap();
        let block = [0x7fu8; 64];
        assert_eq!(
            acc.process_block(&block),
            hmac_sha256(b"a key", &block).to_vec()
        );
        assert!(acc.configure(&[0u8; 65]).is_err());
    }
}
