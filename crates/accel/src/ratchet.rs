//! Ratchet width adapters (paper §4.3).
//!
//! Cohort endpoints move data in 64-bit words; accelerators consume and
//! produce blocks of their own native width (512-bit SHA input, 128-bit AES
//! blocks, ...). The ratchet accumulates incoming words until a full block
//! is available and slices outgoing blocks back into words.

use std::collections::VecDeque;

/// Accumulates bytes until fixed-size blocks can be popped.
#[derive(Debug, Clone)]
pub struct Ratchet {
    block_bytes: usize,
    buf: VecDeque<u8>,
}

impl Ratchet {
    /// Creates a ratchet producing blocks of `block_bytes`.
    ///
    /// # Panics
    /// Panics if `block_bytes` is zero.
    pub fn new(block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "ratchet block size must be positive");
        Self {
            block_bytes,
            buf: VecDeque::new(),
        }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Feeds raw bytes in.
    pub fn push_bytes(&mut self, data: &[u8]) {
        self.buf.extend(data.iter().copied());
    }

    /// Feeds one little-endian 64-bit word in (the endpoint interface
    /// width, paper §5: "producer and consumer endpoint accelerator
    /// interfaces are 64-bit wide").
    pub fn push_word(&mut self, word: u64) {
        self.push_bytes(&word.to_le_bytes());
    }

    /// Pops one full block if available.
    pub fn pop_block(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < self.block_bytes {
            return None;
        }
        Some(self.buf.drain(..self.block_bytes).collect())
    }

    /// Pops one 64-bit word if at least 8 bytes are buffered.
    pub fn pop_word(&mut self) -> Option<u64> {
        if self.buf.len() < 8 {
            return None;
        }
        let bytes: Vec<u8> = self.buf.drain(..8).collect();
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of complete blocks currently available.
    pub fn blocks_available(&self) -> usize {
        self.buf.len() / self.block_bytes
    }

    /// Drains any trailing partial block, zero-padded to a full block;
    /// `None` if the buffer is empty or holds only whole blocks.
    pub fn flush_padded(&mut self) -> Option<Vec<u8>> {
        let rem = self.buf.len() % self.block_bytes;
        if rem == 0 {
            return None;
        }
        let mut block: Vec<u8> = self.buf.drain(..).collect();
        block.resize(block.len() - rem + self.block_bytes, 0);
        Some(block)
    }

    /// Discards all buffered bytes.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_to_sha_block() {
        // 8 pushes of 64 bits build one 512-bit block (paper §5.3).
        let mut r = Ratchet::new(64);
        for i in 0..7u64 {
            r.push_word(i);
            assert!(r.pop_block().is_none());
        }
        r.push_word(7);
        let block = r.pop_block().expect("full block");
        assert_eq!(block.len(), 64);
        assert_eq!(&block[..8], &0u64.to_le_bytes());
        assert_eq!(&block[56..], &7u64.to_le_bytes());
        assert!(r.is_empty());
    }

    #[test]
    fn block_to_words_roundtrip() {
        let mut r = Ratchet::new(32);
        let digest: Vec<u8> = (0..32).collect();
        r.push_bytes(&digest);
        let mut words = Vec::new();
        while let Some(w) = r.pop_word() {
            words.push(w);
        }
        assert_eq!(words.len(), 4, "256-bit digest = 4 pops (paper §5.3)");
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(bytes, digest);
    }

    #[test]
    fn flush_pads_partial_block() {
        let mut r = Ratchet::new(16);
        r.push_bytes(&[1, 2, 3]);
        let block = r.flush_padded().unwrap();
        assert_eq!(block.len(), 16);
        assert_eq!(&block[..3], &[1, 2, 3]);
        assert!(block[3..].iter().all(|&b| b == 0));
        assert!(r.flush_padded().is_none());
    }

    #[test]
    fn blocks_available_counts() {
        let mut r = Ratchet::new(8);
        r.push_bytes(&[0; 20]);
        assert_eq!(r.blocks_available(), 2);
        r.pop_block().unwrap();
        assert_eq!(r.blocks_available(), 1);
        assert_eq!(r.len(), 12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        let _ = Ratchet::new(0);
    }
}
