//! A fixed-point short-time Fourier transform accelerator.
//!
//! The paper mentions a short-time Fourier transform accelerator connected
//! to the Cohort SoC (§4.3, undescribed); this module implements a faithful
//! equivalent: frames of `N` 16-bit PCM samples are Hann-windowed (Q15) and
//! transformed with an in-place radix-2 decimation-in-time FFT using Q14
//! twiddles and per-stage scaling (so the output is `X[k] / N`). The
//! accelerator emits interleaved 16-bit real/imaginary parts for all `N`
//! bins.

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};

/// Q15 one (for window coefficients).
const Q15: i32 = 1 << 15;
/// Q14 one (for twiddles).
const Q14: i32 = 1 << 14;

/// A Hann window of length `n` in Q15.
pub fn hann_q15(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| {
            let x = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos();
            (x * f64::from(Q15)).round() as i32
        })
        .collect()
}

/// In-place fixed-point radix-2 DIT FFT with per-stage 1/2 scaling.
///
/// `re`/`im` hold Q0 integer samples; on return they hold `X[k] / n`.
///
/// # Panics
/// Panics if the lengths differ or are not a power of two.
pub fn fft_fixed(re: &mut [i32], im: &mut [i32]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT size must be a power of two >= 2"
    );
    // Bit-reverse permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let (wr, wi) = (
                    (angle.cos() * f64::from(Q14)).round() as i64,
                    (angle.sin() * f64::from(Q14)).round() as i64,
                );
                let i0 = start + k;
                let i1 = start + k + half;
                let tr = (wr * i64::from(re[i1]) - wi * i64::from(im[i1])) >> 14;
                let ti = (wr * i64::from(im[i1]) + wi * i64::from(re[i1])) >> 14;
                let ur = i64::from(re[i0]);
                let ui = i64::from(im[i0]);
                // Per-stage scaling by 1/2 keeps magnitudes in range.
                re[i0] = ((ur + tr) >> 1) as i32;
                im[i0] = ((ui + ti) >> 1) as i32;
                re[i1] = ((ur - tr) >> 1) as i32;
                im[i1] = ((ui - ti) >> 1) as i32;
            }
        }
        len *= 2;
    }
}

/// Reference double-precision DFT (for tests): returns `X[k]`, unscaled.
pub fn dft_reference(samples: &[f64]) -> Vec<(f64, f64)> {
    let n = samples.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &x) in samples.iter().enumerate() {
                let a = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                re += x * a.cos();
                im += x * a.sin();
            }
            (re, im)
        })
        .collect()
}

/// The STFT accelerator: one frame of `n` i16 samples in, `n` complex i16
/// bins out. A CSR byte toggles the Hann window (1 = on, default).
#[derive(Debug, Clone)]
pub struct StftAccel {
    n: usize,
    window: Vec<i32>,
    windowed: bool,
}

impl Default for StftAccel {
    fn default() -> Self {
        Self::new(256)
    }
}

impl StftAccel {
    /// Creates an STFT accelerator with frame size `n` (power of two).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two `>= 2`.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "frame size must be a power of two"
        );
        Self {
            n,
            window: hann_q15(n),
            windowed: true,
        }
    }

    /// Frame size in samples.
    pub fn frame_size(&self) -> usize {
        self.n
    }
}

impl Accelerator for StftAccel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "stft",
            input_block_bytes: 2 * self.n,
            output_block_bytes: 4 * self.n,
            // A streaming FFT core produces a frame roughly every N cycles.
            latency_cycles: self.n as u64,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        match csr.first() {
            None | Some(1) => self.windowed = true,
            Some(0) => self.windowed = false,
            Some(other) => return Err(ConfigError::new(format!("unknown window flag {other}"))),
        }
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len(), 2 * self.n, "stft frame size mismatch");
        let mut re: Vec<i32> = input
            .chunks_exact(2)
            .map(|c| i32::from(i16::from_le_bytes(c.try_into().expect("2 bytes"))))
            .collect();
        if self.windowed {
            for (x, w) in re.iter_mut().zip(&self.window) {
                *x = (*x * *w) >> 15;
            }
        }
        let mut im = vec![0i32; self.n];
        fft_fixed(&mut re, &mut im);
        let mut out = Vec::with_capacity(4 * self.n);
        for k in 0..self.n {
            out.extend_from_slice(&(re[k].clamp(-32768, 32767) as i16).to_le_bytes());
            out.extend_from_slice(&(im[k].clamp(-32768, 32767) as i16).to_le_bytes());
        }
        out
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 16;
        let mut re = vec![0i32; n];
        let mut im = vec![0i32; n];
        re[0] = 16_384;
        fft_fixed(&mut re, &mut im);
        // X[k] = 16384 for all k; scaled by 1/n -> 1024.
        for k in 0..n {
            assert!((re[k] - 1024).abs() <= 2, "bin {k}: {}", re[k]);
            assert!(im[k].abs() <= 2);
        }
    }

    #[test]
    fn fft_matches_reference_dft() {
        let n = 64;
        let samples: Vec<i32> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                ((2.0 * std::f64::consts::PI * 5.0 * t).sin() * 8000.0) as i32
            })
            .collect();
        let mut re = samples.clone();
        let mut im = vec![0i32; n];
        fft_fixed(&mut re, &mut im);
        let reference = dft_reference(&samples.iter().map(|&x| x as f64).collect::<Vec<_>>());
        for k in 0..n {
            let (er, ei) = (reference[k].0 / n as f64, reference[k].1 / n as f64);
            assert!(
                (f64::from(re[k]) - er).abs() < 16.0,
                "re bin {k}: fixed {} vs ref {er}",
                re[k]
            );
            assert!(
                (f64::from(im[k]) - ei).abs() < 16.0,
                "im bin {k}: fixed {} vs ref {ei}",
                im[k]
            );
        }
    }

    #[test]
    fn sine_concentrates_energy_in_its_bin() {
        let n = 256;
        let mut acc = StftAccel::new(n);
        acc.configure(&[0]).unwrap(); // window off for exact bins
        let bin = 10usize;
        let input: Vec<u8> = (0..n)
            .flat_map(|i| {
                let t = i as f64 / n as f64;
                let s = (2.0 * std::f64::consts::PI * bin as f64 * t).cos() * 16000.0;
                (s as i16).to_le_bytes()
            })
            .collect();
        let out = acc.process_block(&input);
        let mag = |k: usize| {
            let r = i16::from_le_bytes([out[4 * k], out[4 * k + 1]]) as f64;
            let i = i16::from_le_bytes([out[4 * k + 2], out[4 * k + 3]]) as f64;
            (r * r + i * i).sqrt()
        };
        let peak = mag(bin);
        for k in 0..n / 2 {
            if k != bin {
                assert!(
                    mag(k) < peak / 4.0,
                    "bin {k} too strong: {} vs {peak}",
                    mag(k)
                );
            }
        }
    }

    #[test]
    fn hann_window_is_symmetric_and_bounded() {
        let w = hann_q15(128);
        assert_eq!(w[0], 0);
        for i in 0..128 {
            assert!(w[i] >= 0 && w[i] <= Q15);
            if i > 0 {
                assert_eq!(w[i], w[128 - i], "symmetry at {i}");
            }
        }
    }

    #[test]
    fn descriptor_geometry() {
        let acc = StftAccel::new(256);
        let d = acc.descriptor();
        assert_eq!(d.input_block_bytes, 512);
        assert_eq!(d.output_block_bytes, 1024);
    }
}
