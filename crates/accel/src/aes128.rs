//! AES-128 (FIPS 197), implemented from scratch.
//!
//! Provides the block cipher ([`Aes128`]: key expansion, encrypt, decrypt)
//! and the accelerator model [`Aes128Accel`]: 128-bit blocks in, 128-bit
//! ciphertext out, 41-cycle latency (paper §6.1), with the key delivered
//! via the coherent CSR struct at registration time (paper §5.2).

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};

/// The S-box (FIPS 197 figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box, derived from [`SBOX`] at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiplication in GF(2^8) with the AES polynomial 0x11b.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key (FIPS 197 §5.2).
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Self { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let inv = inv_sbox();
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
    }

    /// State layout: column-major (byte `r + 4c` is row r, column c), i.e.
    /// the natural order of the input block.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("col");
            state[c * 4] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[c * 4 + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[c * 4 + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[c * 4 + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("col");
            state[c * 4] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[c * 4 + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[c * 4 + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[c * 4 + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

/// Direction of [`Aes128Accel`], selected by the CSR struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AesDirection {
    /// Encrypt input blocks (the paper's benchmark).
    #[default]
    Encrypt,
    /// Decrypt input blocks.
    Decrypt,
}

/// The AES-128 accelerator: 128-bit blocks, ECB, key via CSR, 41 cycles.
///
/// CSR layout: 16 key bytes, optionally followed by one direction byte
/// (0 = encrypt, 1 = decrypt).
#[derive(Debug, Clone)]
pub struct Aes128Accel {
    cipher: Aes128,
    direction: AesDirection,
}

impl Default for Aes128Accel {
    fn default() -> Self {
        Self::new()
    }
}

impl Aes128Accel {
    /// Pipeline latency of the modelled RTL core (paper §6.1).
    pub const LATENCY: u64 = 41;

    /// Creates the accelerator with an all-zero key (reconfigure via CSR).
    pub fn new() -> Self {
        Self::with_key(&[0u8; 16])
    }

    /// Creates the accelerator with `key`.
    pub fn with_key(key: &[u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
            direction: AesDirection::Encrypt,
        }
    }
}

impl Accelerator for Aes128Accel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "aes128",
            input_block_bytes: 16,
            output_block_bytes: 16,
            latency_cycles: Self::LATENCY,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        if csr.len() < 16 {
            return Err(ConfigError::new(format!(
                "AES CSR needs at least 16 key bytes, got {}",
                csr.len()
            )));
        }
        let key: &[u8; 16] = csr[..16].try_into().expect("16 bytes");
        self.cipher = Aes128::new(key);
        self.direction = match csr.get(16) {
            None | Some(0) => AesDirection::Encrypt,
            Some(1) => AesDirection::Decrypt,
            Some(other) => {
                return Err(ConfigError::new(format!("unknown AES direction {other}")));
            }
        };
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        let block: &[u8; 16] = input.try_into().expect("aes takes 16-byte blocks");
        match self.direction {
            AesDirection::Encrypt => self.cipher.encrypt_block(block).to_vec(),
            AesDirection::Decrypt => self.cipher.decrypt_block(block).to_vec(),
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 197 appendix B.
    #[test]
    fn fips_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(
            hex(&aes.encrypt_block(&pt)),
            "3925841d02dc09fbdc118597196a0b32"
        );
    }

    // FIPS 197 appendix C.1 (AES-128).
    #[test]
    fn fips_appendix_c1() {
        let key: Vec<u8> = (0..16).collect();
        let pt: Vec<u8> = (0..16).map(|i| i * 0x11).collect();
        let aes = Aes128::new(key.as_slice().try_into().unwrap());
        let ct = aes.encrypt_block(pt.as_slice().try_into().unwrap());
        assert_eq!(hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(aes.decrypt_block(&ct).to_vec(), pt);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let aes = Aes128::new(b"sixteen byte key");
        for i in 0..64u8 {
            let block = [i; 16];
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn gmul_basics() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS 197 §4.2 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn accel_csr_key_and_direction() {
        let key = *b"0123456789abcdef";
        let mut enc = Aes128Accel::new();
        enc.configure(&key).unwrap();
        let pt = [0x42u8; 16];
        let ct = enc.process_block(&pt);
        assert_eq!(ct, Aes128::new(&key).encrypt_block(&pt).to_vec());

        let mut dec = Aes128Accel::new();
        let mut csr = key.to_vec();
        csr.push(1);
        dec.configure(&csr).unwrap();
        assert_eq!(dec.process_block(&ct), pt.to_vec());
    }

    #[test]
    fn accel_rejects_short_csr() {
        let mut acc = Aes128Accel::new();
        assert!(acc.configure(&[0u8; 8]).is_err());
        assert!(acc.configure(&[0u8; 16]).is_ok());
    }

    #[test]
    fn descriptor_matches_paper() {
        let d = Aes128Accel::new().descriptor();
        assert_eq!(d.input_block_bytes, 16);
        assert_eq!(d.output_block_bytes, 16);
        assert_eq!(d.latency_cycles, 41);
    }
}
