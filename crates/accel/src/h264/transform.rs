//! The H.264 4x4 integer core transform with the standard's quantization.
//!
//! Forward: `Y = Cf · X · Cfᵀ` (§8.5.12 integer matrix), quantized with the
//! multiplication-factor table `MF` (`Z = (|Y|·MF + f) >> (15 + qp/6)`);
//! dequantized with the `V` table (`W = Z·V << (qp/6)`); inverse transform
//! with the (1, ½) butterflies and the final `(x + 32) >> 6` rounding. This
//! is the genuine standard pipeline, so encode→decode reconstruction error
//! is bounded by the quantization step.

/// Per-position class of a 4x4 coefficient: 0 for (even,even), 1 for
/// (odd,odd), 2 otherwise — the a/b/c pattern of the MF and V tables.
fn pos_class(i: usize) -> usize {
    let (r, c) = (i / 4, i % 4);
    match (r % 2, c % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// Quantization multiplication factors, rows indexed by `qp % 6`,
/// columns by position class (table derived from §8.5.12.3).
const MF: [[i64; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Dequantization scale factors `V`, same indexing.
const V: [[i64; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Forward 4x4 integer transform of a residual block (row-major).
pub fn forward4x4(block: &[i32; 16]) -> [i32; 16] {
    // Cf = [[1,1,1,1],[2,1,-1,-2],[1,-1,-1,1],[1,-2,2,-1]]
    let mut tmp = [0i32; 16];
    for c in 0..4 {
        let x0 = block[c];
        let x1 = block[4 + c];
        let x2 = block[8 + c];
        let x3 = block[12 + c];
        tmp[c] = x0 + x1 + x2 + x3;
        tmp[4 + c] = 2 * x0 + x1 - x2 - 2 * x3;
        tmp[8 + c] = x0 - x1 - x2 + x3;
        tmp[12 + c] = x0 - 2 * x1 + 2 * x2 - x3;
    }
    let mut out = [0i32; 16];
    for r in 0..4 {
        let x0 = tmp[r * 4];
        let x1 = tmp[r * 4 + 1];
        let x2 = tmp[r * 4 + 2];
        let x3 = tmp[r * 4 + 3];
        out[r * 4] = x0 + x1 + x2 + x3;
        out[r * 4 + 1] = 2 * x0 + x1 - x2 - 2 * x3;
        out[r * 4 + 2] = x0 - x1 - x2 + x3;
        out[r * 4 + 3] = x0 - 2 * x1 + 2 * x2 - x3;
    }
    out
}

/// Inverse 4x4 integer transform (takes *dequantized* coefficients).
pub fn inverse4x4(coeffs: &[i32; 16]) -> [i32; 16] {
    let mut tmp = [0i32; 16];
    for c in 0..4 {
        let x0 = coeffs[c];
        let x1 = coeffs[4 + c];
        let x2 = coeffs[8 + c];
        let x3 = coeffs[12 + c];
        let e0 = x0 + x2;
        let e1 = x0 - x2;
        let e2 = (x1 >> 1) - x3;
        let e3 = x1 + (x3 >> 1);
        tmp[c] = e0 + e3;
        tmp[4 + c] = e1 + e2;
        tmp[8 + c] = e1 - e2;
        tmp[12 + c] = e0 - e3;
    }
    let mut out = [0i32; 16];
    for r in 0..4 {
        let x0 = tmp[r * 4];
        let x1 = tmp[r * 4 + 1];
        let x2 = tmp[r * 4 + 2];
        let x3 = tmp[r * 4 + 3];
        let e0 = x0 + x2;
        let e1 = x0 - x2;
        let e2 = (x1 >> 1) - x3;
        let e3 = x1 + (x3 >> 1);
        out[r * 4] = (e0 + e3 + 32) >> 6;
        out[r * 4 + 1] = (e1 + e2 + 32) >> 6;
        out[r * 4 + 2] = (e1 - e2 + 32) >> 6;
        out[r * 4 + 3] = (e0 - e3 + 32) >> 6;
    }
    out
}

/// Quantizes transform coefficients at quality parameter `qp` (0..=51).
///
/// # Panics
/// Panics if `qp > 51`.
pub fn quantize(coeffs: &[i32; 16], qp: u8) -> [i32; 16] {
    assert!(qp <= 51, "qp out of range");
    let qbits = 15 + u32::from(qp) / 6;
    let f: i64 = (1i64 << qbits) / 3; // intra rounding offset
    let mf = &MF[(qp % 6) as usize];
    let mut out = [0i32; 16];
    for (i, (&c, o)) in coeffs.iter().zip(out.iter_mut()).enumerate() {
        let m = mf[pos_class(i)];
        let z = ((i64::from(c.abs()) * m + f) >> qbits) as i32;
        *o = if c < 0 { -z } else { z };
    }
    out
}

/// Dequantizes levels back to transform-domain coefficients.
///
/// # Panics
/// Panics if `qp > 51`.
pub fn dequantize(levels: &[i32; 16], qp: u8) -> [i32; 16] {
    assert!(qp <= 51, "qp out of range");
    let shift = u32::from(qp) / 6;
    let v = &V[(qp % 6) as usize];
    let mut out = [0i32; 16];
    for (i, (&l, o)) in levels.iter().zip(out.iter_mut()).enumerate() {
        *o = ((i64::from(l) * v[pos_class(i)]) << shift) as i32;
    }
    out
}

/// Full reconstruction: quantize, dequantize, inverse-transform.
pub fn reconstruct(residual: &[i32; 16], qp: u8) -> ([i32; 16], [i32; 16]) {
    let y = forward4x4(residual);
    let z = quantize(&y, qp);
    let w = dequantize(&z, qp);
    (z, inverse4x4(&w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_block_transforms_to_dc_coeff() {
        let block = [3i32; 16];
        let fwd = forward4x4(&block);
        assert_eq!(fwd[0], 3 * 16, "DC gain is 16");
        assert!(fwd[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn qp0_reconstruction_is_tight() {
        let block: [i32; 16] = [5, -3, 0, 2, 7, 1, -1, 0, -4, 2, 2, 2, 0, 0, 1, -2];
        let (_z, rec) = reconstruct(&block, 0);
        for (a, b) in block.iter().zip(&rec) {
            assert!((a - b).abs() <= 1, "qp0: {a} vs {b}");
        }
    }

    #[test]
    fn reconstruction_error_grows_with_qp_but_stays_bounded() {
        let block: [i32; 16] = core::array::from_fn(|i| ((i as i32 * 37) % 101) - 50);
        let err = |qp: u8| {
            let (_, rec) = reconstruct(&block, qp);
            block
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap()
        };
        assert!(err(0) <= 1);
        assert!(err(12) <= 8);
        assert!(err(24) <= 32);
        assert!(err(0) <= err(24));
    }

    #[test]
    fn high_qp_zeroes_small_residuals() {
        let block: [i32; 16] = core::array::from_fn(|i| if i == 5 { 2 } else { 0 });
        let y = forward4x4(&block);
        let z = quantize(&y, 40);
        assert!(z.iter().all(|&c| c == 0), "tiny residual vanishes at qp 40");
    }

    #[test]
    fn quant_dequant_sign_symmetry() {
        let block: [i32; 16] = core::array::from_fn(|i| (i as i32 - 8) * 13);
        let neg: [i32; 16] = core::array::from_fn(|i| -block[i]);
        let (zp, _) = reconstruct(&block, 6);
        let (zn, _) = reconstruct(&neg, 6);
        for (a, b) in zp.iter().zip(&zn) {
            assert_eq!(*a, -*b);
        }
    }

    #[test]
    #[should_panic(expected = "qp out of range")]
    fn qp_out_of_range_panics() {
        let _ = quantize(&[0; 16], 52);
    }
}
