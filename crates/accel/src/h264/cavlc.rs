//! CAVLC residual coding (H.264 §9.2 structure).
//!
//! Encodes quantized 4x4 coefficient blocks with the standard's CAVLC
//! structure: zigzag scan, `coeff_token` (TotalCoeff + TrailingOnes),
//! trailing-one signs, adaptive level prefix/suffix coding with the
//! `suffixLength` update rule of §9.2.2, `total_zeros` and `run_before`.
//!
//! One documented substitution (DESIGN.md): the standard's fixed VLC
//! lookup tables for `coeff_token`, `total_zeros` and `run_before` are
//! replaced with Exp-Golomb codes of the same syntax elements — the coder
//! keeps the exact CAVLC pipeline and adaptivity but stays table-free and
//! fully round-trippable with the matching [`decode_block`].

use super::bits::{BitReader, BitWriter, BitstreamExhausted};

/// Zigzag scan order for a 4x4 block (§8.5.6).
pub const ZIGZAG: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// Errors from decoding a CAVLC block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CavlcError {
    /// Ran out of bits.
    Exhausted,
    /// The bitstream violated a syntax constraint.
    Malformed(String),
}

impl std::fmt::Display for CavlcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CavlcError::Exhausted => f.write_str("bitstream exhausted"),
            CavlcError::Malformed(m) => write!(f, "malformed CAVLC stream: {m}"),
        }
    }
}

impl std::error::Error for CavlcError {}

impl From<BitstreamExhausted> for CavlcError {
    fn from(_: BitstreamExhausted) -> Self {
        CavlcError::Exhausted
    }
}

fn put_unary(w: &mut BitWriter, n: u32) {
    for _ in 0..n {
        w.put_bit(false);
    }
    w.put_bit(true);
}

fn get_unary(r: &mut BitReader<'_>) -> Result<u32, CavlcError> {
    let mut n = 0u32;
    while !r.get_bit()? {
        n += 1;
        if n > 4096 {
            return Err(CavlcError::Malformed("unbounded unary prefix".into()));
        }
    }
    Ok(n)
}

/// Escape suffix width (§9.2.2 uses 12 bits; values beyond that range use
/// an extended Exp-Golomb escape, see module docs).
const ESCAPE_BITS: u8 = 12;
const ESCAPE_MAX: u32 = (1 << ESCAPE_BITS) - 1;

fn put_level(w: &mut BitWriter, level_code: u32, suffix_length: u8) {
    if suffix_length == 0 {
        if level_code < 14 {
            put_unary(w, level_code);
        } else if level_code < 30 {
            put_unary(w, 14);
            w.put_bits(level_code - 14, 4);
        } else {
            put_unary(w, 15);
            let v = level_code - 30;
            if v < ESCAPE_MAX {
                w.put_bits(v, ESCAPE_BITS);
            } else {
                w.put_bits(ESCAPE_MAX, ESCAPE_BITS);
                w.put_ue(v - ESCAPE_MAX);
            }
        }
    } else {
        let threshold = 15u32 << suffix_length;
        if level_code < threshold {
            put_unary(w, level_code >> suffix_length);
            w.put_bits(level_code & ((1 << suffix_length) - 1), suffix_length);
        } else {
            put_unary(w, 15);
            let v = level_code - threshold;
            if v < ESCAPE_MAX {
                w.put_bits(v, ESCAPE_BITS);
            } else {
                w.put_bits(ESCAPE_MAX, ESCAPE_BITS);
                w.put_ue(v - ESCAPE_MAX);
            }
        }
    }
}

fn get_level(r: &mut BitReader<'_>, suffix_length: u8) -> Result<u32, CavlcError> {
    let prefix = get_unary(r)?;
    if suffix_length == 0 {
        match prefix {
            0..=13 => Ok(prefix),
            14 => Ok(14 + r.get_bits(4)?),
            15 => {
                let v = r.get_bits(ESCAPE_BITS)?;
                if v == ESCAPE_MAX {
                    Ok(30 + ESCAPE_MAX + r.get_ue()?)
                } else {
                    Ok(30 + v)
                }
            }
            _ => Err(CavlcError::Malformed(format!("level prefix {prefix}"))),
        }
    } else if prefix < 15 {
        Ok((prefix << suffix_length) + r.get_bits(suffix_length)?)
    } else if prefix == 15 {
        let threshold = 15u32 << suffix_length;
        let v = r.get_bits(ESCAPE_BITS)?;
        if v == ESCAPE_MAX {
            Ok(threshold + ESCAPE_MAX + r.get_ue()?)
        } else {
            Ok(threshold + v)
        }
    } else {
        Err(CavlcError::Malformed(format!("level prefix {prefix}")))
    }
}

fn update_suffix_length(suffix_length: &mut u8, level_abs: u32) {
    if *suffix_length == 0 {
        *suffix_length = 1;
    }
    if level_abs > (3u32 << (*suffix_length - 1)) && *suffix_length < 6 {
        *suffix_length += 1;
    }
}

/// Encodes one 4x4 block of quantized coefficients (row-major order).
pub fn encode_block(w: &mut BitWriter, block: &[i32; 16]) {
    // Zigzag scan.
    let zz: [i32; 16] = core::array::from_fn(|i| block[ZIGZAG[i]]);
    let positions: Vec<usize> = (0..16).filter(|&i| zz[i] != 0).collect();
    let total_coeff = positions.len();

    w.put_ue(total_coeff as u32);
    if total_coeff == 0 {
        return;
    }

    // Levels in reverse scan order (highest frequency first).
    let levels_rev: Vec<i32> = positions.iter().rev().map(|&i| zz[i]).collect();
    let trailing_ones = levels_rev
        .iter()
        .take(3)
        .take_while(|l| l.abs() == 1)
        .count();
    w.put_bits(trailing_ones as u32, 2);

    // Trailing-one sign bits (1 = negative).
    for level in &levels_rev[..trailing_ones] {
        w.put_bit(*level < 0);
    }

    // Remaining levels with adaptive suffix length.
    let mut suffix_length: u8 = if total_coeff > 10 && trailing_ones < 3 {
        1
    } else {
        0
    };
    for (i, &level) in levels_rev[trailing_ones..].iter().enumerate() {
        debug_assert_ne!(level, 0);
        let mut level_code: i64 = if level > 0 {
            2 * i64::from(level) - 2
        } else {
            -2 * i64::from(level) - 1
        };
        if i == 0 && trailing_ones < 3 {
            // The first coded level cannot be +-1, which the decoder knows.
            level_code -= 2;
        }
        put_level(w, level_code as u32, suffix_length);
        update_suffix_length(&mut suffix_length, level.unsigned_abs());
    }

    // total_zeros: zeros below the highest-frequency coefficient.
    let total_zeros = positions[total_coeff - 1] + 1 - total_coeff;
    if total_coeff < 16 {
        w.put_ue(total_zeros as u32);
    }

    // run_before for each coefficient except the lowest-frequency one.
    let mut zeros_left = total_zeros;
    for k in (1..total_coeff).rev() {
        if zeros_left == 0 {
            break;
        }
        let run = positions[k] - positions[k - 1] - 1;
        w.put_ue(run as u32);
        zeros_left -= run;
    }
}

/// Decodes one 4x4 block (row-major order), reversing [`encode_block`].
///
/// # Errors
/// Returns [`CavlcError`] on truncated or inconsistent input.
pub fn decode_block(r: &mut BitReader<'_>) -> Result<[i32; 16], CavlcError> {
    let total_coeff = r.get_ue()? as usize;
    if total_coeff > 16 {
        return Err(CavlcError::Malformed(format!("total_coeff {total_coeff}")));
    }
    let mut out = [0i32; 16];
    if total_coeff == 0 {
        return Ok(out);
    }
    let trailing_ones = r.get_bits(2)? as usize;
    if trailing_ones > total_coeff.min(3) {
        return Err(CavlcError::Malformed(format!(
            "trailing_ones {trailing_ones} for total_coeff {total_coeff}"
        )));
    }

    let mut levels_rev = Vec::with_capacity(total_coeff);
    for _ in 0..trailing_ones {
        let neg = r.get_bit()?;
        levels_rev.push(if neg { -1 } else { 1 });
    }

    let mut suffix_length: u8 = if total_coeff > 10 && trailing_ones < 3 {
        1
    } else {
        0
    };
    for i in 0..total_coeff - trailing_ones {
        let mut level_code = i64::from(get_level(r, suffix_length)?);
        if i == 0 && trailing_ones < 3 {
            level_code += 2;
        }
        let level = if level_code % 2 == 0 {
            (level_code + 2) / 2
        } else {
            -(level_code + 1) / 2
        } as i32;
        if level == 0 {
            return Err(CavlcError::Malformed("decoded level 0".into()));
        }
        levels_rev.push(level);
        update_suffix_length(&mut suffix_length, level.unsigned_abs());
    }

    let total_zeros = if total_coeff < 16 {
        r.get_ue()? as usize
    } else {
        0
    };
    if total_coeff + total_zeros > 16 {
        return Err(CavlcError::Malformed(format!(
            "total_coeff {total_coeff} + total_zeros {total_zeros} > 16"
        )));
    }

    // Runs of zeros before each coefficient, highest frequency first.
    let mut runs = Vec::with_capacity(total_coeff);
    let mut zeros_left = total_zeros;
    for _ in 0..total_coeff - 1 {
        let run = if zeros_left > 0 {
            r.get_ue()? as usize
        } else {
            0
        };
        if run > zeros_left {
            return Err(CavlcError::Malformed(
                "run_before exceeds zeros_left".into(),
            ));
        }
        runs.push(run);
        zeros_left -= run;
    }
    runs.push(zeros_left); // lowest-frequency coefficient absorbs the rest

    // Place coefficients from the top of the scan downwards.
    let mut idx = (total_coeff + total_zeros) as isize - 1;
    let mut zz = [0i32; 16];
    for (level, run) in levels_rev.iter().zip(&runs) {
        debug_assert!(idx >= 0);
        zz[idx as usize] = *level;
        idx -= *run as isize + 1;
    }

    for (i, &v) in zz.iter().enumerate() {
        out[ZIGZAG[i]] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: [i32; 16]) {
        let mut w = BitWriter::new();
        encode_block(&mut w, &block);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = decode_block(&mut r).expect("decodes");
        assert_eq!(decoded, block, "bits: {bytes:02x?}");
    }

    #[test]
    fn zero_block() {
        roundtrip([0; 16]);
        let mut w = BitWriter::new();
        encode_block(&mut w, &[0; 16]);
        assert_eq!(w.bit_len(), 1, "all-zero block is a single ue(0) bit");
    }

    #[test]
    fn single_dc() {
        roundtrip(core::array::from_fn(|i| if i == 0 { 5 } else { 0 }));
        roundtrip(core::array::from_fn(|i| if i == 0 { -1 } else { 0 }));
    }

    #[test]
    fn trailing_ones_paths() {
        // exactly 1, 2, 3 trailing ones plus a big level
        roundtrip([7, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        roundtrip([7, 1, 0, 0, -1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        roundtrip([7, -1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // more than 3 ones: only 3 count as trailing
        roundtrip([1, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn dense_block() {
        roundtrip(core::array::from_fn(|i| (i as i32 % 7) - 3));
        roundtrip([2; 16]);
        roundtrip(core::array::from_fn(|i| if i % 2 == 0 { 4 } else { -4 }));
    }

    #[test]
    fn full_block_no_total_zeros() {
        // 16 nonzero coefficients: total_zeros is not coded.
        roundtrip(core::array::from_fn(|i| i as i32 + 2));
    }

    #[test]
    fn large_levels_escape() {
        roundtrip(core::array::from_fn(|i| if i == 3 { 3000 } else { 0 }));
        roundtrip(core::array::from_fn(|i| if i == 3 { -100_000 } else { 0 }));
        roundtrip([
            4000, -4000, 1, 0, 9000, 0, 0, 0, 0, 0, 0, -1, 0, 0, 0, 123_456,
        ]);
    }

    #[test]
    fn sparse_high_frequency() {
        roundtrip(core::array::from_fn(|i| if i == 15 { -2 } else { 0 }));
        roundtrip(core::array::from_fn(
            |i| if i == 15 || i == 0 { 3 } else { 0 },
        ));
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        encode_block(&mut w, &core::array::from_fn(|i| if i < 4 { 9 } else { 0 }));
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        // May or may not fail depending on padding, but must not panic and
        // a clearly-too-short prefix must fail:
        let _ = decode_block(&mut r);
        let mut r2 = BitReader::new(&[]);
        assert!(decode_block(&mut r2).is_err());
    }

    #[test]
    fn adaptive_suffix_sequence() {
        // A block engineered to walk the suffixLength ladder.
        roundtrip([
            1, -2, 5, -11, 25, -50, 100, -200, 400, -800, 999, -3, 2, -1, 1, 0,
        ]);
    }
}
