//! Bitstream I/O and Exp-Golomb codes (H.264 §9.1).

/// A most-significant-bit-first bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8, // bits used in the last byte (0..8)
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics if `n > 32`.
    pub fn put_bits(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "at most 32 bits at a time");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("byte present");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(u32::from(bit), 1);
    }

    /// Writes `value` as unsigned Exp-Golomb `ue(v)`.
    pub fn put_ue(&mut self, value: u32) {
        let code = value as u64 + 1;
        let len = 64 - code.leading_zeros() as u8; // bits in code
        self.put_bits(0, len - 1); // leading zeros
        for i in (0..len).rev() {
            self.put_bit((code >> i) & 1 == 1);
        }
    }

    /// Writes `value` as signed Exp-Golomb `se(v)`.
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-value as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Appends RBSP trailing bits (a 1 then zero padding to a byte
    /// boundary, §7.3.2.11) and returns the byte stream.
    pub fn finish_rbsp(mut self) -> Vec<u8> {
        self.put_bit(true);
        while self.bit_pos != 0 {
            self.put_bit(false);
        }
        self.bytes
    }

    /// Returns the raw bytes, zero-padding the final partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Error from reading past the end of a bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamExhausted;

impl std::fmt::Display for BitstreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("bitstream exhausted")
    }
}

impl std::error::Error for BitstreamExhausted {}

/// A most-significant-bit-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// Returns [`BitstreamExhausted`] at end of stream.
    pub fn get_bit(&mut self) -> Result<bool, BitstreamExhausted> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(BitstreamExhausted);
        }
        let bit = (self.bytes[byte] >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits MSB first.
    ///
    /// # Errors
    /// Returns [`BitstreamExhausted`] at end of stream.
    pub fn get_bits(&mut self, n: u8) -> Result<u32, BitstreamExhausted> {
        assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Reads an unsigned Exp-Golomb `ue(v)`.
    ///
    /// # Errors
    /// Returns [`BitstreamExhausted`] at end of stream.
    pub fn get_ue(&mut self) -> Result<u32, BitstreamExhausted> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(BitstreamExhausted);
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok((1u32 << zeros) - 1 + rest)
    }

    /// Reads a signed Exp-Golomb `se(v)`.
    ///
    /// # Errors
    /// Returns [`BitstreamExhausted`] at end of stream.
    pub fn get_se(&mut self) -> Result<i32, BitstreamExhausted> {
        let v = self.get_ue()?;
        let magnitude = v.div_ceil(2) as i32;
        Ok(if v % 2 == 1 { magnitude } else { -magnitude })
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xff, 8);
        w.put_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(8).unwrap(), 0xff);
        assert!(!r.get_bit().unwrap());
    }

    #[test]
    fn ue_first_codes() {
        // Spec table 9-2: 0 -> 1, 1 -> 010, 2 -> 011, 3 -> 00100 ...
        let mut w = BitWriter::new();
        w.put_ue(0);
        w.put_ue(1);
        w.put_ue(2);
        w.put_ue(3);
        assert_eq!(w.bit_len(), 1 + 3 + 3 + 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for expect in 0..4 {
            assert_eq!(r.get_ue().unwrap(), expect);
        }
    }

    #[test]
    fn ue_roundtrip_large() {
        let values = [0u32, 1, 2, 7, 8, 255, 1023, 65535, 1 << 20];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 17, -17, 1000, -1000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut r = BitReader::new(&[0b1000_0000]);
        assert!(r.get_bit().unwrap());
        assert!(r.get_bits(7).is_ok());
        assert_eq!(r.get_bit(), Err(BitstreamExhausted));
    }

    #[test]
    fn rbsp_trailing_bits() {
        let mut w = BitWriter::new();
        w.put_bits(0b10, 2);
        let bytes = w.finish_rbsp();
        assert_eq!(bytes, vec![0b1010_0000]);
    }
}
