//! Macroblock-level H.264 intra encoder and decoder.
//!
//! Each frame unit is one 16x16 luma macroblock (256 bytes). The encoder
//! runs the genuine intra pipeline per 4x4 block: flat DC prediction (128),
//! forward integer transform, standard quantization at the configured QP,
//! CAVLC entropy coding; a tiny Exp-Golomb header carries the QP. The
//! matching decoder reproduces exactly the encoder's local reconstruction,
//! which is what the round-trip tests assert.

use super::bits::{BitReader, BitWriter};
use super::cavlc::{decode_block, encode_block, CavlcError};

use super::transform::{dequantize, inverse4x4, reconstruct};

/// Pixels per macroblock edge.
pub const MB_DIM: usize = 16;
/// Bytes in one macroblock.
pub const MB_BYTES: usize = MB_DIM * MB_DIM;

/// An H.264 intra macroblock encoder.
#[derive(Debug, Clone)]
pub struct H264Encoder {
    qp: u8,
}

impl Default for H264Encoder {
    fn default() -> Self {
        Self::new(12)
    }
}

impl H264Encoder {
    /// Creates an encoder with quality parameter `qp` (0..=51).
    ///
    /// # Panics
    /// Panics if `qp > 51`.
    pub fn new(qp: u8) -> Self {
        assert!(qp <= 51, "qp out of range");
        Self { qp }
    }

    /// The configured quality parameter.
    pub fn qp(&self) -> u8 {
        self.qp
    }

    /// Extracts 4x4 block `(by, bx)` of a macroblock as a residual against
    /// the flat 128 predictor.
    fn residual(mb: &[u8; MB_BYTES], by: usize, bx: usize) -> [i32; 16] {
        core::array::from_fn(|i| {
            let (r, c) = (i / 4, i % 4);
            i32::from(mb[(by * 4 + r) * MB_DIM + bx * 4 + c]) - 128
        })
    }

    /// Encodes one macroblock, returning `(bitstream, local reconstruction)`.
    pub fn encode_macroblock(&self, mb: &[u8; MB_BYTES]) -> (Vec<u8>, [u8; MB_BYTES]) {
        let mut w = BitWriter::new();
        w.put_ue(u32::from(self.qp));
        let mut recon = [0u8; MB_BYTES];
        for by in 0..4 {
            for bx in 0..4 {
                let res = Self::residual(mb, by, bx);
                let (z, rec) = reconstruct(&res, self.qp);
                encode_block(&mut w, &z);
                for (i, &v) in rec.iter().enumerate() {
                    let (r, c) = (i / 4, i % 4);
                    recon[(by * 4 + r) * MB_DIM + bx * 4 + c] = (v + 128).clamp(0, 255) as u8;
                }
            }
        }
        (w.finish_rbsp(), recon)
    }

    /// Encodes a whole stream: `frames` macroblocks, each length-prefixed
    /// with a little-endian `u32` (the container format of the accelerator
    /// model).
    pub fn encode_stream(&self, frames: &[[u8; MB_BYTES]]) -> Vec<u8> {
        let mut out = Vec::new();
        for mb in frames {
            let (bits, _) = self.encode_macroblock(mb);
            out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
            out.extend_from_slice(&bits);
        }
        out
    }
}

/// Decodes one macroblock produced by [`H264Encoder::encode_macroblock`].
///
/// # Errors
/// Returns [`CavlcError`] on malformed input.
pub fn decode_macroblock(bytes: &[u8]) -> Result<[u8; MB_BYTES], CavlcError> {
    let mut r = BitReader::new(bytes);
    let qp = r.get_ue()? as u8;
    if qp > 51 {
        return Err(CavlcError::Malformed(format!("qp {qp}")));
    }
    let mut recon = [0u8; MB_BYTES];
    for by in 0..4 {
        for bx in 0..4 {
            let z = decode_block(&mut r)?;
            let w = dequantize(&z, qp);
            let rec = inverse4x4(&w);
            for (i, &v) in rec.iter().enumerate() {
                let (rr, cc) = (i / 4, i % 4);
                recon[(by * 4 + rr) * MB_DIM + bx * 4 + cc] = (v + 128).clamp(0, 255) as u8;
            }
        }
    }
    Ok(recon)
}

/// Decodes a length-prefixed stream from [`H264Encoder::encode_stream`].
///
/// # Errors
/// Returns [`CavlcError`] on malformed input.
pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<[u8; MB_BYTES]>, CavlcError> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 4 {
            return Err(CavlcError::Malformed("truncated length prefix".into()));
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        bytes = &bytes[4..];
        if bytes.len() < len {
            return Err(CavlcError::Malformed("truncated frame payload".into()));
        }
        frames.push(decode_macroblock(&bytes[..len])?);
        bytes = &bytes[len..];
    }
    Ok(frames)
}

/// A full grayscale image encoded macroblock by macroblock.
///
/// Images are split into 16x16 macroblocks (edges are padded by
/// replicating the last row/column, the standard approach); the output is
/// the same length-prefixed container as [`H264Encoder::encode_stream`],
/// prefixed with an Exp-Golomb header carrying the dimensions.
pub fn encode_image(encoder: &H264Encoder, width: usize, height: usize, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
    assert!(width > 0 && height > 0, "empty image");
    let mbs_x = width.div_ceil(MB_DIM);
    let mbs_y = height.div_ceil(MB_DIM);
    let mut w = BitWriter::new();
    w.put_ue(width as u32);
    w.put_ue(height as u32);
    let mut out = w.finish_rbsp();
    for by in 0..mbs_y {
        for bx in 0..mbs_x {
            let mut mb = [0u8; MB_BYTES];
            for r in 0..MB_DIM {
                for c in 0..MB_DIM {
                    let y = (by * MB_DIM + r).min(height - 1);
                    let x = (bx * MB_DIM + c).min(width - 1);
                    mb[r * MB_DIM + c] = pixels[y * width + x];
                }
            }
            let (bits, _) = encoder.encode_macroblock(&mb);
            out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
            out.extend_from_slice(&bits);
        }
    }
    out
}

/// Decodes an [`encode_image`] container back to `(width, height, pixels)`.
///
/// # Errors
/// Returns [`CavlcError`] on malformed input.
pub fn decode_image(bytes: &[u8]) -> Result<(usize, usize, Vec<u8>), CavlcError> {
    let mut r = BitReader::new(bytes);
    let width = r.get_ue().map_err(CavlcError::from)? as usize;
    let height = r.get_ue().map_err(CavlcError::from)? as usize;
    if width == 0 || height == 0 || width * height > 1 << 26 {
        return Err(CavlcError::Malformed(format!(
            "dimensions {width}x{height}"
        )));
    }
    // Header occupies whole bytes after RBSP trailing bits.
    let header_bytes = r.bit_pos().div_ceil(8) + usize::from(r.bit_pos().is_multiple_of(8));
    let frames = decode_stream(&bytes[header_bytes..])?;
    let mbs_x = width.div_ceil(MB_DIM);
    let mbs_y = height.div_ceil(MB_DIM);
    if frames.len() != mbs_x * mbs_y {
        return Err(CavlcError::Malformed(format!(
            "{} macroblocks for {width}x{height}",
            frames.len()
        )));
    }
    let mut pixels = vec![0u8; width * height];
    for (i, mb) in frames.iter().enumerate() {
        let (by, bx) = (i / mbs_x, i % mbs_x);
        for r_ in 0..MB_DIM {
            for c in 0..MB_DIM {
                let y = by * MB_DIM + r_;
                let x = bx * MB_DIM + c;
                if y < height && x < width {
                    pixels[y * width + x] = mb[r_ * MB_DIM + c];
                }
            }
        }
    }
    Ok((width, height, pixels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_mb() -> [u8; MB_BYTES] {
        core::array::from_fn(|i| {
            let (r, c) = (i / MB_DIM, i % MB_DIM);
            (100 + 5 * r + 3 * c) as u8
        })
    }

    fn textured_mb(seed: u32) -> [u8; MB_BYTES] {
        let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
        core::array::from_fn(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 24) as u8
        })
    }

    #[test]
    fn decoder_matches_encoder_reconstruction() {
        for qp in [0u8, 6, 12, 24, 40] {
            let enc = H264Encoder::new(qp);
            let mb = gradient_mb();
            let (bits, recon) = enc.encode_macroblock(&mb);
            let decoded = decode_macroblock(&bits).expect("decodes");
            assert_eq!(decoded, recon, "qp={qp}");
        }
    }

    #[test]
    fn low_qp_is_near_lossless() {
        let enc = H264Encoder::new(0);
        let mb = gradient_mb();
        let (_, recon) = enc.encode_macroblock(&mb);
        for (a, b) in mb.iter().zip(&recon) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 1);
        }
    }

    #[test]
    fn higher_qp_compresses_more() {
        let mb = textured_mb(7);
        let fine = H264Encoder::new(4).encode_macroblock(&mb).0.len();
        let coarse = H264Encoder::new(36).encode_macroblock(&mb).0.len();
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn flat_macroblock_is_tiny() {
        let mb = [128u8; MB_BYTES];
        let (bits, recon) = H264Encoder::new(20).encode_macroblock(&mb);
        assert!(bits.len() <= 4, "all-zero residual: {} bytes", bits.len());
        assert_eq!(recon, mb);
    }

    #[test]
    fn stream_roundtrip_multiframe() {
        let frames = vec![
            gradient_mb(),
            textured_mb(1),
            [128u8; MB_BYTES],
            textured_mb(2),
        ];
        let enc = H264Encoder::new(10);
        let stream = enc.encode_stream(&frames);
        let decoded = decode_stream(&stream).expect("stream decodes");
        assert_eq!(decoded.len(), frames.len());
        for (f, d) in frames.iter().zip(&decoded) {
            let (_, recon) = enc.encode_macroblock(f);
            assert_eq!(*d, recon);
        }
    }

    #[test]
    fn image_roundtrip_unaligned_dimensions() {
        // 40x24: edges need padding.
        let (w, h) = (40usize, 24usize);
        let pixels: Vec<u8> = (0..w * h).map(|i| (i * 7 % 256) as u8).collect();
        let enc = H264Encoder::new(0);
        let stream = encode_image(&enc, w, h, &pixels);
        let (dw, dh, decoded) = decode_image(&stream).expect("decodes");
        assert_eq!((dw, dh), (w, h));
        // qp 0 is near-lossless.
        for (a, b) in pixels.iter().zip(&decoded) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 1);
        }
    }

    #[test]
    fn image_rejects_garbage() {
        assert!(decode_image(&[0xff, 0xff, 0x80]).is_err());
    }

    #[test]
    fn malformed_stream_is_an_error() {
        assert!(decode_stream(&[1, 2, 3]).is_err());
        assert!(decode_stream(&[10, 0, 0, 0, 0xff]).is_err());
    }
}
