//! The H.264 CAVLC video encoder accelerator (paper §5.2).
//!
//! The paper integrates the `hardh264` CAVLC encoder, noting that "the
//! existing instance of the accelerator accepts the number of frames at the
//! start of its input to enable variable input length". [`H264Accel`]
//! reproduces that contract: the first 64-bit word of the stream is the
//! frame (macroblock) count, followed by that many 256-byte 16x16 luma
//! macroblocks; the output is a length-prefixed CAVLC bitstream per frame,
//! zero-padded to a whole number of 64-bit words so it streams cleanly
//! through the word-wide Cohort endpoints (the length prefix recovers the
//! real payload).
//!
//! Submodules: [`bits`] (bitstream I/O + Exp-Golomb), [`transform`] (the
//! 4x4 integer transform and standard quantization), [`cavlc`] (residual
//! entropy coding with a matching decoder) and [`encoder`] (macroblock
//! pipeline).

pub mod bits;
pub mod cavlc;
pub mod encoder;
pub mod transform;

pub use encoder::{decode_macroblock, decode_stream, H264Encoder, MB_BYTES, MB_DIM};

use crate::accelerator::{AccelDescriptor, Accelerator, ConfigError};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamState {
    /// Waiting for the frame-count word.
    AwaitCount,
    /// Collecting `remaining` more macroblocks.
    Collect { remaining: u64 },
    /// Count exhausted; further input starts a new stream.
    Drained,
}

/// The streaming H.264 accelerator: 64-bit words in, variable-rate CAVLC
/// bitstream out.
#[derive(Debug, Clone)]
pub struct H264Accel {
    encoder: H264Encoder,
    state: StreamState,
    buf: Vec<u8>,
    /// Macroblocks encoded since reset (a hardware status counter).
    frames_done: u64,
}

impl Default for H264Accel {
    fn default() -> Self {
        Self::new()
    }
}

impl H264Accel {
    /// Word-level pipeline latency: the CAVLC core sustains roughly one
    /// pixel per cycle, i.e. 8 cycles per 64-bit word of luma input.
    pub const LATENCY: u64 = 8;

    /// Creates the accelerator with the default QP.
    pub fn new() -> Self {
        Self {
            encoder: H264Encoder::default(),
            state: StreamState::AwaitCount,
            buf: Vec::new(),
            frames_done: 0,
        }
    }

    /// Macroblocks fully encoded since the last reset.
    pub fn frames_done(&self) -> u64 {
        self.frames_done
    }
}

impl Accelerator for H264Accel {
    fn descriptor(&self) -> AccelDescriptor {
        AccelDescriptor {
            name: "h264",
            input_block_bytes: 8,
            output_block_bytes: 0, // variable-rate output
            latency_cycles: Self::LATENCY,
        }
    }

    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        if let Some(&qp) = csr.first() {
            if qp > 51 {
                return Err(ConfigError::new(format!("qp {qp} out of range")));
            }
            self.encoder = H264Encoder::new(qp);
        }
        Ok(())
    }

    fn process_block(&mut self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len(), 8, "h264 consumes 64-bit words");
        match self.state {
            StreamState::AwaitCount | StreamState::Drained => {
                let count = u64::from_le_bytes(input.try_into().expect("8 bytes"));
                self.state = if count == 0 {
                    StreamState::Drained
                } else {
                    StreamState::Collect { remaining: count }
                };
                self.buf.clear();
                Vec::new()
            }
            StreamState::Collect { remaining } => {
                self.buf.extend_from_slice(input);
                if self.buf.len() < MB_BYTES {
                    return Vec::new();
                }
                let mb: [u8; MB_BYTES] = self.buf[..MB_BYTES].try_into().expect("one macroblock");
                self.buf.drain(..MB_BYTES);
                let (bits, _) = self.encoder.encode_macroblock(&mb);
                self.frames_done += 1;
                let remaining = remaining - 1;
                self.state = if remaining == 0 {
                    StreamState::Drained
                } else {
                    StreamState::Collect { remaining }
                };
                let mut out = (bits.len() as u32).to_le_bytes().to_vec();
                out.extend_from_slice(&bits);
                // Word-align for the 64-bit stream interface.
                out.resize(out.len().div_ceil(8) * 8, 0);
                out
            }
        }
    }

    fn reset(&mut self) {
        self.state = StreamState::AwaitCount;
        self.buf.clear();
        self.frames_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_words(acc: &mut H264Accel, bytes: &[u8]) -> Vec<u8> {
        assert_eq!(bytes.len() % 8, 0);
        let mut out = Vec::new();
        for w in bytes.chunks_exact(8) {
            out.extend(acc.process_block(w));
        }
        out
    }

    /// Strips the per-frame word padding, recovering the plain
    /// length-prefixed container of [`encoder::H264Encoder::encode_stream`].
    fn unpad(stream: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut rest = stream;
        while rest.len() >= 4 {
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let padded = (4 + len).div_ceil(8) * 8;
            out.extend_from_slice(&rest[..4 + len]);
            rest = &rest[padded..];
        }
        out
    }

    #[test]
    fn word_stream_matches_direct_encoding() {
        let mb: [u8; MB_BYTES] = core::array::from_fn(|i| (i * 3 % 251) as u8);
        let mut acc = H264Accel::new();
        let mut input = 1u64.to_le_bytes().to_vec(); // one frame
        input.extend_from_slice(&mb);
        let out = feed_words(&mut acc, &input);
        assert_eq!(out.len() % 8, 0, "output is word aligned");
        let direct = H264Encoder::default().encode_stream(&[mb]);
        assert_eq!(unpad(&out), direct);
        assert_eq!(acc.frames_done(), 1);
    }

    #[test]
    fn multi_frame_stream_then_new_header() {
        let a: [u8; MB_BYTES] = [128; MB_BYTES];
        let b: [u8; MB_BYTES] = core::array::from_fn(|i| (255 - i % 256) as u8);
        let mut acc = H264Accel::new();
        let mut input = 2u64.to_le_bytes().to_vec();
        input.extend_from_slice(&a);
        input.extend_from_slice(&b);
        // A second stream follows immediately.
        input.extend_from_slice(&1u64.to_le_bytes());
        input.extend_from_slice(&a);
        let out = feed_words(&mut acc, &input);
        let frames = decode_stream(&unpad(&out)).expect("decodes");
        assert_eq!(frames.len(), 3);
        assert_eq!(acc.frames_done(), 3);
    }

    #[test]
    fn csr_sets_qp() {
        let mb: [u8; MB_BYTES] = core::array::from_fn(|i| (i * 7 % 256) as u8);
        let mut fine = H264Accel::new();
        fine.configure(&[0]).unwrap();
        let mut coarse = H264Accel::new();
        coarse.configure(&[40]).unwrap();
        let mut input = 1u64.to_le_bytes().to_vec();
        input.extend_from_slice(&mb);
        let out_fine = feed_words(&mut fine, &input);
        let out_coarse = feed_words(&mut coarse, &input);
        assert!(out_coarse.len() < out_fine.len());
        assert!(coarse.configure(&[99]).is_err());
    }

    #[test]
    fn reset_restarts_protocol() {
        let mut acc = H264Accel::new();
        let _ = acc.process_block(&5u64.to_le_bytes());
        acc.reset();
        assert_eq!(acc.frames_done(), 0);
        // After reset the next word is a count again.
        let out = acc.process_block(&0u64.to_le_bytes());
        assert!(out.is_empty());
    }
}
