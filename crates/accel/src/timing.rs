//! Valid/ready timing wrapper around a functional accelerator.
//!
//! [`TimedAccel`] models the latency-insensitive interface of §4.3: the
//! consumer endpoint offers 64-bit words when its `ready()` is high; the
//! accelerator computes each input block for `latency_cycles`; results
//! stream out one 64-bit word per cycle. Ratchets adapt the 64-bit
//! endpoint width to the accelerator's native block sizes.

use crate::ratchet::Ratchet;
use crate::Accelerator;
use std::collections::VecDeque;

/// A functional accelerator behind a timed valid/ready interface.
pub struct TimedAccel {
    accel: Box<dyn Accelerator>,
    in_ratchet: Ratchet,
    out_bytes: VecDeque<u8>,
    /// Cycle at which the in-flight block completes (0 = idle).
    busy_until: u64,
    /// Output bytes of the in-flight block, released at `busy_until`.
    pending_out: Option<Vec<u8>>,
    blocks_done: u64,
    last_pop_cycle: u64,
}

impl std::fmt::Debug for TimedAccel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedAccel")
            .field("accel", &self.accel.descriptor().name)
            .field("busy_until", &self.busy_until)
            .field("blocks_done", &self.blocks_done)
            .finish()
    }
}

impl TimedAccel {
    /// Wraps `accel`.
    pub fn new(accel: Box<dyn Accelerator>) -> Self {
        let block = accel.descriptor().input_block_bytes;
        Self {
            accel,
            in_ratchet: Ratchet::new(block),
            out_bytes: VecDeque::new(),
            busy_until: 0,
            pending_out: None,
            blocks_done: 0,
            last_pop_cycle: 0,
        }
    }

    /// The wrapped accelerator's descriptor.
    pub fn descriptor(&self) -> crate::AccelDescriptor {
        self.accel.descriptor()
    }

    /// Applies a CSR configuration buffer.
    ///
    /// # Errors
    /// Propagates the accelerator's [`crate::ConfigError`].
    pub fn configure(&mut self, csr: &[u8]) -> Result<(), crate::ConfigError> {
        self.accel.configure(csr)
    }

    /// Ready to accept another input word this cycle? (The consumer
    /// endpoint's `ready` input.) Input is accepted while the staging
    /// ratchet has no complete block waiting on a busy pipeline.
    pub fn ready(&self, cycle: u64) -> bool {
        self.in_ratchet.blocks_available() == 0 || cycle >= self.busy_until
    }

    /// Offers one 64-bit word (caller must have checked [`Self::ready`]).
    pub fn push_word(&mut self, word: u64) {
        self.in_ratchet.push_word(word);
    }

    /// Advances internal state: launches a block if one is staged and the
    /// pipeline is free; retires the in-flight block when its latency
    /// elapses.
    pub fn step(&mut self, cycle: u64) {
        if cycle >= self.busy_until {
            if let Some(out) = self.pending_out.take() {
                self.out_bytes.extend(out);
                self.blocks_done += 1;
            }
            if let Some(block) = self.in_ratchet.pop_block() {
                let out = self.accel.process_block(&block);
                self.pending_out = Some(out);
                self.busy_until = cycle + self.accel.descriptor().latency_cycles;
            }
        }
    }

    /// Pops one 64-bit output word if available (at most one per cycle —
    /// the 64-bit producer endpoint width of §5).
    pub fn pop_word(&mut self, cycle: u64) -> Option<u64> {
        if self.out_bytes.len() < 8 || (cycle == self.last_pop_cycle && cycle != 0) {
            return None;
        }
        self.last_pop_cycle = cycle;
        let bytes: Vec<u8> = self.out_bytes.drain(..8).collect();
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Output bytes currently buffered (including sub-word residue).
    pub fn output_len(&self) -> usize {
        self.out_bytes.len()
    }

    /// Cycles until the pipeline next changes state on its own, assuming
    /// no further input and uninterrupted stepping — the accelerator's
    /// contribution to its host's `quiescent_for` lookahead hint.
    /// `u64::MAX` means only external action (a push or a drain) can make
    /// anything happen. Always sound to step sooner.
    pub fn next_event(&self, cycle: u64) -> u64 {
        if self.out_bytes.len() >= 8 {
            return 1; // a word can pop on the very next cycle
        }
        if self.pending_out.is_some() {
            // The in-flight block retires at `busy_until`.
            return self.busy_until.saturating_sub(cycle).max(1);
        }
        if self.in_ratchet.blocks_available() > 0 {
            return 1; // a staged block launches at the next step
        }
        u64::MAX
    }

    /// Blocks fully processed.
    pub fn blocks_done(&self) -> u64 {
        self.blocks_done
    }

    /// True when no work is buffered or in flight. A sub-word output
    /// residue (< 8 bytes) or a partial input block still counts as idle —
    /// both wait on external action.
    pub fn is_idle(&self, _cycle: u64) -> bool {
        self.pending_out.is_none()
            && self.in_ratchet.blocks_available() == 0
            && self.out_bytes.len() < 8
    }

    /// Drains every complete buffered output word at once, ignoring both
    /// the one-word-per-cycle pacing and pipeline latency. Used by the
    /// engine's watchdog abort path to rescue data before halting: the
    /// in-flight block and any fully staged blocks are finished
    /// *functionally* first — their input words were already consumed
    /// from the queue (the read index advanced), so abandoning them would
    /// lose elements across a failover. A partial ratchet block stays
    /// behind untouched: its elements are refetched by whoever resumes.
    /// Sub-word output residue (an incomplete word) also stays behind.
    pub fn drain_words(&mut self) -> Vec<u64> {
        if let Some(out) = self.pending_out.take() {
            self.out_bytes.extend(out);
            self.blocks_done += 1;
            self.busy_until = 0;
        }
        while let Some(block) = self.in_ratchet.pop_block() {
            self.out_bytes.extend(self.accel.process_block(&block));
            self.blocks_done += 1;
        }
        let mut out = Vec::new();
        while self.out_bytes.len() >= 8 {
            let bytes: Vec<u8> = self.out_bytes.drain(..8).collect();
            out.push(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
        }
        out
    }

    /// Removes and returns the partial input block left in the staging
    /// ratchet as 64-bit words. Input always arrives as whole words, so
    /// the residue is word-aligned. Used by the failover checkpoint: the
    /// read index already covers these words, so they must migrate to the
    /// resuming engine rather than be refetched (the producer may lap the
    /// ring during a long outage, so un-consuming them is unsound).
    pub fn take_staged_words(&mut self) -> Vec<u64> {
        let mut words = Vec::new();
        while let Some(w) = self.in_ratchet.pop_word() {
            words.push(w);
        }
        debug_assert!(self.in_ratchet.is_empty(), "input residue is word-aligned");
        self.in_ratchet.clear();
        words
    }

    /// Resets pipeline and buffers (configuration retained).
    pub fn reset(&mut self) {
        self.accel.reset();
        self.in_ratchet.clear();
        self.out_bytes.clear();
        self.busy_until = 0;
        self.pending_out = None;
        self.last_pop_cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullfifo::NullFifo;
    use crate::sha256::{sha256_raw_block, Sha256Accel};

    #[test]
    fn null_fifo_passthrough_with_latency() {
        let mut t = TimedAccel::new(Box::new(NullFifo::with_geometry(8, 3)));
        assert!(t.ready(0));
        t.push_word(0xabcd);
        t.step(0); // launches, busy until 3
        assert_eq!(t.pop_word(1), None, "still in the pipeline");
        t.step(3); // retires
        assert_eq!(t.pop_word(3), Some(0xabcd));
    }

    #[test]
    fn sha_block_latency_and_digest() {
        let mut t = TimedAccel::new(Box::new(Sha256Accel::new()));
        let mut block = [0u8; 64];
        for (i, w) in (0..8u64).enumerate() {
            block[i * 8..i * 8 + 8].copy_from_slice(&(w * 3).to_le_bytes());
        }
        let mut cycle = 0;
        for w in 0..8u64 {
            assert!(t.ready(cycle));
            t.push_word(w * 3);
            t.step(cycle);
            cycle += 1;
        }
        // Busy for 66 cycles from launch.
        for c in cycle..cycle + 70 {
            t.step(c);
        }
        let mut digest = Vec::new();
        let mut c = cycle + 70;
        while digest.len() < 32 {
            t.step(c);
            if let Some(w) = t.pop_word(c) {
                digest.extend_from_slice(&w.to_le_bytes());
            }
            c += 1;
        }
        assert_eq!(digest, sha256_raw_block(&block).to_vec());
        assert_eq!(t.blocks_done(), 1);
        assert!(t.is_idle(c));
    }

    #[test]
    fn one_pop_per_cycle() {
        let mut t = TimedAccel::new(Box::new(NullFifo::with_geometry(8, 1)));
        t.push_word(1);
        t.step(0);
        t.step(5);
        t.push_word(2);
        t.step(5);
        t.step(10);
        assert!(t.pop_word(10).is_some());
        assert!(t.pop_word(10).is_none(), "only one word per cycle");
        assert!(t.pop_word(11).is_some());
    }

    #[test]
    fn drain_words_ignores_pacing() {
        let mut t = TimedAccel::new(Box::new(NullFifo::with_geometry(8, 1)));
        t.push_word(1);
        t.step(0);
        t.step(5);
        t.push_word(2);
        t.step(5);
        t.step(10);
        assert_eq!(t.drain_words(), vec![1, 2], "all words in one call");
        assert_eq!(t.output_len(), 0);
    }

    #[test]
    fn drain_words_finishes_in_flight_and_staged_blocks() {
        let mut t = TimedAccel::new(Box::new(Sha256Accel::new()));
        // One block in flight…
        for w in 0..8 {
            t.push_word(w);
        }
        t.step(0); // launch, busy until 66
                   // …and one fully staged behind it. Both consumed input already.
        for w in 0..8 {
            t.push_word(100 + w);
        }
        let words = t.drain_words();
        assert_eq!(words.len(), 8, "two 32-byte digests rescued");
        assert_eq!(t.blocks_done(), 2);
        assert!(t.is_idle(1), "nothing left in flight after an abort drain");
        // A partial block must NOT be processed: it migrates to the
        // resuming engine instead via [`TimedAccel::take_staged_words`].
        t.push_word(7);
        assert_eq!(t.drain_words(), vec![], "partial block stays behind");
        assert_eq!(
            t.take_staged_words(),
            vec![7],
            "residue extracted for migration"
        );
        assert!(t.in_ratchet.is_empty());
        t.reset();
    }

    #[test]
    fn not_ready_while_block_staged_and_busy() {
        let mut t = TimedAccel::new(Box::new(Sha256Accel::new()));
        for w in 0..8 {
            t.push_word(w);
        }
        t.step(0); // launch, busy until 66
        for w in 0..8 {
            assert!(t.ready(1), "stage the next block while busy");
            t.push_word(100 + w);
        }
        t.step(1);
        assert!(
            !t.ready(1),
            "second block staged, pipeline busy: back-pressure"
        );
        t.step(66);
        assert!(t.ready(67), "pipeline free again");
    }

    #[test]
    fn non_pipelined_throughput() {
        // Two SHA blocks take ~2 x 66 cycles.
        let mut t = TimedAccel::new(Box::new(Sha256Accel::new()));
        let mut cycle = 0u64;
        let mut produced = 0;
        let mut pushed = 0;
        while produced < 8 {
            t.step(cycle);
            if pushed < 16 && t.ready(cycle) {
                t.push_word(pushed);
                pushed += 1;
            }
            if t.pop_word(cycle).is_some() {
                produced += 1;
            }
            cycle += 1;
            assert!(cycle < 1000, "livelock");
        }
        assert!(
            cycle >= 132,
            "two blocks cannot finish faster than 2x latency"
        );
        assert_eq!(t.blocks_done(), 2);
    }
}
