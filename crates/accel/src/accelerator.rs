//! The SBIO accelerator abstraction.
//!
//! Cohort targets accelerators with a *stream/buffer in, stream/buffer out*
//! communication pattern (paper §1): they consume fixed-size input blocks
//! and produce output blocks, behind a latency-insensitive valid/ready
//! interface. The [`Accelerator`] trait captures exactly that functional
//! contract; the *timing* (pipeline latency, ratcheting to 64-bit words,
//! valid/ready back-pressure) is applied by the hosting unit — the Cohort
//! engine or the MAPLE baseline.

/// Static properties of an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelDescriptor {
    /// Human-readable name.
    pub name: &'static str,
    /// Bytes consumed per invocation (the "data block" of §4.3).
    pub input_block_bytes: usize,
    /// Bytes produced per invocation; `0` means variable-size output (e.g.
    /// the H.264 entropy coder).
    pub output_block_bytes: usize,
    /// Compute latency in cycles for one block (paper §6.1: SHA-256 is 66,
    /// AES-128 is 41).
    pub latency_cycles: u64,
}

/// Error returned when a CSR configuration buffer is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid accelerator configuration: {}", self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// Creates an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

/// A stream/buffer-in stream/buffer-out accelerator.
///
/// Implementations are purely functional: `process_block` consumes exactly
/// `descriptor().input_block_bytes` bytes and returns the produced output
/// (possibly empty for accelerators that buffer internally, possibly
/// variable-length). Hosts apply the descriptor's latency.
pub trait Accelerator: Send {
    /// Static properties.
    fn descriptor(&self) -> AccelDescriptor;

    /// Applies a CSR configuration struct (paper §4.3: a virtually
    /// contiguous buffer handed over at registration, e.g. the AES key).
    ///
    /// # Errors
    /// Returns [`ConfigError`] if the buffer does not match the
    /// accelerator's expected layout.
    fn configure(&mut self, csr: &[u8]) -> Result<(), ConfigError> {
        let _ = csr;
        Ok(())
    }

    /// Processes one input block.
    ///
    /// # Panics
    /// Implementations may panic if `input.len()` differs from
    /// `descriptor().input_block_bytes`.
    fn process_block(&mut self, input: &[u8]) -> Vec<u8>;

    /// Flushes any buffered output at end of stream (variable-rate
    /// accelerators).
    fn finish(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Returns the accelerator to its post-reset state (configuration is
    /// retained).
    fn reset(&mut self);
}

impl std::fmt::Debug for dyn Accelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Accelerator({})", self.descriptor().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("missing key");
        assert_eq!(
            e.to_string(),
            "invalid accelerator configuration: missing key"
        );
    }
}
