//! Cross-thread stress tests for the queue crate.
//!
//! These exercise the paths the unit tests only cover single-threaded:
//! multi-producer contention on a ring small enough to wrap thousands of
//! times (so ticket reservation, slot-sequence publication and the
//! full-ring detection all race for real), and the batched adapters'
//! flush-on-error path with the producer and consumer on separate threads.

use cohort_queue::{mpsc_channel, spsc_channel, BatchConsumer, BatchProducer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Many producers hammer a ring so small that every element wraps the ring
/// hundreds of times; the full-ring error path (seq < ticket) is hit
/// constantly. Every element must arrive exactly once and per-producer
/// order must hold.
#[test]
fn mpsc_full_ring_wrap_contention() {
    const PRODUCERS: u64 = 8;
    const PER: u64 = 1_500;
    // Capacity far below producer count: pushes fail with "full" most of
    // the time, so the reservation protocol runs under maximum contention.
    let (tx, mut rx) = mpsc_channel::<(u64, u64)>(4);
    let full_errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        let full_errors = Arc::clone(&full_errors);
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                loop {
                    match tx.push((p, i)) {
                        Ok(()) => break,
                        Err(_) => {
                            full_errors.fetch_add(1, Ordering::Relaxed);
                            thread::yield_now();
                        }
                    }
                }
            }
        }));
    }
    drop(tx);
    let mut next = [0u64; PRODUCERS as usize];
    let mut total = 0u64;
    while total < PRODUCERS * PER {
        if let Some((p, i)) = rx.pop() {
            assert_eq!(i, next[p as usize], "producer {p} reordered");
            next[p as usize] += 1;
            total += 1;
        } else {
            std::hint::spin_loop();
        }
    }
    assert_eq!(rx.pop(), None, "no phantom elements after drain");
    // With capacity 4 and 32k elements the ring must have wrapped and the
    // full path must have fired; if it never did the test lost its point.
    assert!(
        full_errors.load(Ordering::Relaxed) > 0,
        "expected contention on a capacity-4 ring"
    );
}

/// `full_queue_error_still_publishes_staged`, but with a real consumer
/// thread: the producer batches far beyond the ring capacity, so progress
/// is only possible because the failed push publishes the staged partial
/// batch. A deadlock here means the flush-on-error path regressed.
#[test]
fn batch_producer_flush_on_error_across_threads() {
    const N: u64 = 20_000;
    // batch (64) > capacity (8): a full batch can never fit, so every
    // publication happens through the error path.
    let (tx, mut rx) = spsc_channel::<u64>(8);
    let mut btx = BatchProducer::new(tx, 64);
    let producer = thread::spawn(move || {
        for i in 0..N {
            loop {
                match btx.push(i) {
                    Ok(()) => break,
                    // push() already flushed the staged elements; just
                    // wait for the consumer to drain.
                    Err(_) => thread::yield_now(),
                }
            }
        }
        // Drop flushes the final partial batch.
    });
    let mut expect = 0u64;
    while expect < N {
        if let Some(v) = rx.pop() {
            assert_eq!(v, expect, "FIFO order through the error-flush path");
            expect += 1;
        } else {
            thread::yield_now();
        }
    }
    producer.join().unwrap();
}

/// Symmetric consumer-side test: a `BatchConsumer` whose delayed releases
/// are the only thing standing between the producer and a full ring. The
/// consumer's batch boundary (and final flush) must free slots or the
/// producer thread never finishes.
#[test]
fn batch_consumer_release_unblocks_producer_across_threads() {
    const N: u64 = 20_000;
    let (mut tx, rx) = spsc_channel::<u64>(16);
    let mut brx = BatchConsumer::new(rx, 4);
    let producer = thread::spawn(move || {
        for i in 0..N {
            loop {
                match tx.push(i) {
                    Ok(()) => break,
                    Err(_) => thread::yield_now(),
                }
            }
        }
    });
    let mut expect = 0u64;
    while expect < N {
        if let Some(v) = brx.pop() {
            assert_eq!(v, expect);
            expect += 1;
        } else {
            thread::yield_now();
        }
    }
    producer.join().unwrap();
    brx.flush();
}

/// Producer-drop closes the ring: a consumer blocked waiting for more
/// elements terminates instead of spinning forever. Without the closed
/// flag this test hangs (there is no element count to run out of — the
/// consumer only learns the stream ended through `is_closed`).
#[test]
fn consumer_loop_terminates_when_producer_drops() {
    const N: u64 = 5_000;
    let (mut tx, mut rx) = spsc_channel::<u64>(16);
    let producer = thread::spawn(move || {
        for i in 0..N {
            while tx.push(i).is_err() {
                thread::yield_now();
            }
        }
        // tx dropped here: flushes anything staged and closes the ring.
    });
    let mut seen = 0u64;
    loop {
        if let Some(v) = rx.pop() {
            assert_eq!(v, seen, "FIFO order up to the close");
            seen += 1;
        } else if rx.is_closed() && rx.is_empty() {
            // Re-check emptiness after observing close so a publish racing
            // with the drop is never lost.
            break;
        } else {
            thread::yield_now();
        }
    }
    assert_eq!(seen, N, "close must not drop published elements");
    producer.join().unwrap();
}

/// Symmetric direction: the consumer vanishes while the ring is full, and
/// the producer's retry loop gives up via `is_closed` instead of waiting
/// forever for space.
#[test]
fn producer_loop_terminates_when_consumer_drops() {
    let (mut tx, mut rx) = spsc_channel::<u64>(4);
    let consumer = thread::spawn(move || {
        // Pop a few, then walk away mid-stream.
        let mut got = 0;
        while got < 3 {
            if rx.pop().is_some() {
                got += 1;
            } else {
                thread::yield_now();
            }
        }
    });
    let mut pushed = 0u64;
    let abandoned = loop {
        match tx.push(pushed) {
            Ok(()) => pushed += 1,
            Err(_) if tx.is_closed() => break true,
            Err(_) => thread::yield_now(),
        }
    };
    assert!(abandoned, "loop only exits via the closed path");
    assert!(pushed >= 3, "consumer saw three elements before leaving");
    consumer.join().unwrap();
}

/// The `&self` observers must be callable while the producer thread is
/// live, and must never report more elements than have been published.
#[test]
fn shared_ref_observers_race_with_producer() {
    const N: u64 = 20_000;
    let (mut tx, rx) = spsc_channel::<u64>(32);
    let produced = Arc::new(AtomicU64::new(0));
    let produced2 = Arc::clone(&produced);
    let producer = thread::spawn(move || {
        for i in 0..N {
            // Count first, publish second: observed_len() <= produced is
            // then an invariant the consumer thread can check.
            produced2.fetch_add(1, Ordering::SeqCst);
            while tx.push(i).is_err() {
                thread::yield_now();
            }
        }
    });
    let mut rx = rx;
    let mut seen = 0u64;
    while seen < N {
        // &self observers: no &mut needed, only atomic loads inside.
        let observed = rx.observed_len() as u64;
        assert!(
            seen + observed <= produced.load(Ordering::SeqCst),
            "observer saw unpublished elements"
        );
        assert_eq!(rx.is_empty(), observed == 0);
        if let Some(v) = rx.pop() {
            assert_eq!(v, seen);
            seen += 1;
        } else {
            thread::yield_now();
        }
    }
    producer.join().unwrap();
}
