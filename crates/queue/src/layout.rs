//! Standard in-memory queue layout for guest (simulated) memory.
//!
//! When a queue lives in the simulated SoC's memory, everyone — the OS
//! model allocating it, the benchmark program builders generating core
//! loads/stores, and the Cohort engine walking it — must agree on where the
//! indices and data live. The layout keeps the write index, read index and
//! data array on separate cache lines (the structure high-performance SPSC
//! libraries use to minimise false sharing, §4.1.1).

use crate::descriptor::QueueDescriptor;

/// Cache line size the layout pads to (matches the simulated SoC).
pub const LINE_BYTES: u64 = 64;

/// A concrete placement of a queue in (virtual) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// Descriptor handed to `cohort_register`.
    pub descriptor: QueueDescriptor,
    /// First virtual address of the region.
    pub region_start: u64,
    /// Total bytes occupied, padded to whole cache lines.
    pub region_bytes: u64,
}

impl QueueLayout {
    /// Lays out a queue at `base_va`: one line for the write index, one
    /// line for the read index, then the data array (line-aligned, padded).
    ///
    /// # Panics
    /// Panics if `base_va` is not cache-line aligned or the resulting
    /// descriptor fails [`QueueDescriptor::validate`] (bad element size,
    /// zero or non-power-of-two length, …).
    pub fn standard(base_va: u64, element_bytes: u32, length: u32) -> Self {
        assert_eq!(base_va % LINE_BYTES, 0, "queue base must be line aligned");
        let write_index_va = base_va;
        let read_index_va = base_va + LINE_BYTES;
        let data_va = base_va + 2 * LINE_BYTES;
        let descriptor = QueueDescriptor::try_new(
            write_index_va,
            read_index_va,
            data_va,
            element_bytes,
            length,
        )
        .unwrap_or_else(|e| panic!("invalid queue geometry: {e}"));
        let padded = descriptor.data_bytes().div_ceil(LINE_BYTES) * LINE_BYTES;
        Self {
            descriptor,
            region_start: base_va,
            region_bytes: 2 * LINE_BYTES + padded,
        }
    }

    /// First address after the region (useful for bump allocation).
    pub fn region_end(&self) -> u64 {
        self.region_start + self.region_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_on_distinct_lines() {
        let l = QueueLayout::standard(0x1_0000, 8, 128);
        let d = &l.descriptor;
        assert_ne!(d.write_index_va / LINE_BYTES, d.read_index_va / LINE_BYTES);
        assert_ne!(d.read_index_va / LINE_BYTES, d.base_va / LINE_BYTES);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn region_covers_data() {
        let l = QueueLayout::standard(0x2_0000, 8, 128);
        assert!(l.region_end() >= l.descriptor.base_va + l.descriptor.data_bytes());
        assert_eq!(l.region_bytes % LINE_BYTES, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_length_rejected() {
        let _ = QueueLayout::standard(0x2_0000, 8, 100);
    }

    #[test]
    fn wide_elements() {
        let l = QueueLayout::standard(0x3_0000, 64, 16);
        assert_eq!(l.descriptor.data_bytes(), 1024);
        assert_eq!(l.region_bytes, 2 * 64 + 1024);
    }

    #[test]
    #[should_panic(expected = "line aligned")]
    fn unaligned_base_rejected() {
        let _ = QueueLayout::standard(0x1234, 8, 4);
    }
}
