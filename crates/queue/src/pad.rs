//! Cache-line padding for the ring indices.
//!
//! The read and write indices must live on separate cache lines — the whole
//! queue-coherence protocol (paper §3.2) hinges on the producer's
//! write-index line and the consumer's read-index line ping-ponging
//! independently. This is a dependency-free stand-in for
//! `crossbeam_utils::CachePadded`, aligned to 128 bytes to also defeat
//! adjacent-line prefetchers.

/// Aligns and pads `T` to its own 128-byte slot.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_sized() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn derefs_to_inner() {
        let mut p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(*p, 9);
    }
}
