//! Typed elements over word queues (the Boost.Lockfree integration story).
//!
//! The paper demonstrates "cohesive integration with a high-level software
//! library by implementing support in the C++ Boost Lockfree library"
//! (§4.1.2). This module plays that role for Rust: any fixed-size
//! [`QueueElement`] travels over the same 64-bit word queues the Cohort
//! engine understands, so one side of a queue can be typed application
//! code while the other side is an accelerator.

use crate::spsc::{Consumer, Producer, PushError};

/// A fixed-size value encodable as 64-bit words — the element type of a
/// Cohort queue.
pub trait QueueElement: Sized + Send {
    /// Words per element.
    const WORDS: usize;

    /// Appends exactly [`Self::WORDS`] words to `out`.
    fn encode(&self, out: &mut Vec<u64>);

    /// Rebuilds the value from exactly [`Self::WORDS`] words.
    fn decode(words: &[u64]) -> Self;
}

impl QueueElement for u64 {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self);
    }
    fn decode(words: &[u64]) -> Self {
        words[0]
    }
}

impl QueueElement for i64 {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
    fn decode(words: &[u64]) -> Self {
        words[0] as i64
    }
}

impl QueueElement for f64 {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits());
    }
    fn decode(words: &[u64]) -> Self {
        f64::from_bits(words[0])
    }
}

impl<const N: usize> QueueElement for [u64; N] {
    const WORDS: usize = N;
    fn encode(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self);
    }
    fn decode(words: &[u64]) -> Self {
        words[..N].try_into().expect("exact width")
    }
}

impl QueueElement for (u64, u64) {
    const WORDS: usize = 2;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.0);
        out.push(self.1);
    }
    fn decode(words: &[u64]) -> Self {
        (words[0], words[1])
    }
}

/// A 16-byte block (e.g. an AES block) as a queue element.
impl QueueElement for [u8; 16] {
    const WORDS: usize = 2;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from_le_bytes(self[..8].try_into().expect("8B")));
        out.push(u64::from_le_bytes(self[8..].try_into().expect("8B")));
    }
    fn decode(words: &[u64]) -> Self {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&words[0].to_le_bytes());
        b[8..].copy_from_slice(&words[1].to_le_bytes());
        b
    }
}

/// The typed producing half: encodes elements onto a word queue.
#[derive(Debug)]
pub struct TypedProducer<T> {
    inner: Producer<u64>,
    scratch: Vec<u64>,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// The typed consuming half: decodes elements from a word queue.
#[derive(Debug)]
pub struct TypedConsumer<T> {
    inner: Consumer<u64>,
    scratch: Vec<u64>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Wraps the halves of an existing word queue with element typing. The
/// queue's memory layout is untouched — exactly the paper's point: the
/// library describes its queue, nothing is reallocated.
pub fn typed<T: QueueElement>(
    producer: Producer<u64>,
    consumer: Consumer<u64>,
) -> (TypedProducer<T>, TypedConsumer<T>) {
    (
        TypedProducer {
            inner: producer,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        },
        TypedConsumer {
            inner: consumer,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        },
    )
}

impl<T: QueueElement> TypedProducer<T> {
    /// Pushes one element; the words are published atomically (single
    /// index release after all words are staged).
    ///
    /// # Errors
    /// Returns the element back if the ring lacks space for all its words.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.inner.free() < T::WORDS {
            return Err(value);
        }
        self.scratch.clear();
        value.encode(&mut self.scratch);
        debug_assert_eq!(self.scratch.len(), T::WORDS);
        for &w in &self.scratch {
            match self.inner.stage(w) {
                Ok(()) => {}
                Err(PushError(_)) => unreachable!("free() was checked"),
            }
        }
        self.inner.publish();
        Ok(())
    }

    /// Consumes the wrapper, returning the raw word producer.
    pub fn into_inner(self) -> Producer<u64> {
        self.inner
    }
}

impl<T: QueueElement> TypedConsumer<T> {
    /// Pops one element if all its words are available.
    pub fn pop(&mut self) -> Option<T> {
        if self.inner.len() < T::WORDS {
            return None;
        }
        self.scratch.clear();
        for _ in 0..T::WORDS {
            self.scratch
                .push(self.inner.consume_staged().expect("len checked"));
        }
        self.inner.release();
        Some(T::decode(&self.scratch))
    }

    /// Consumes the wrapper, returning the raw word consumer.
    pub fn into_inner(self) -> Consumer<u64> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::spsc_channel;

    #[test]
    fn wide_elements_roundtrip() {
        let (p, c) = spsc_channel::<u64>(16);
        let (mut tx, mut rx) = typed::<[u64; 4]>(p, c);
        tx.push([1, 2, 3, 4]).unwrap();
        tx.push([5, 6, 7, 8]).unwrap();
        assert_eq!(rx.pop(), Some([1, 2, 3, 4]));
        assert_eq!(rx.pop(), Some([5, 6, 7, 8]));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn partial_element_never_visible() {
        let (p, c) = spsc_channel::<u64>(8);
        let (mut tx, mut rx) = typed::<(u64, u64)>(p, c);
        // A consumer polling between the words of a push must never see a
        // half element — publication is a single index release.
        tx.push((10, 20)).unwrap();
        assert_eq!(rx.pop(), Some((10, 20)));
    }

    #[test]
    fn rejects_when_insufficient_space() {
        let (p, c) = spsc_channel::<u64>(3);
        let (mut tx, mut rx) = typed::<(u64, u64)>(p, c);
        tx.push((1, 2)).unwrap();
        assert_eq!(tx.push((3, 4)), Err((3, 4)), "only 1 word left");
        assert_eq!(rx.pop(), Some((1, 2)));
        tx.push((3, 4)).unwrap();
        assert_eq!(rx.pop(), Some((3, 4)));
    }

    #[test]
    fn aes_block_element() {
        let (p, c) = spsc_channel::<u64>(8);
        let (mut tx, mut rx) = typed::<[u8; 16]>(p, c);
        let block: [u8; 16] = core::array::from_fn(|i| i as u8);
        tx.push(block).unwrap();
        assert_eq!(rx.pop(), Some(block));
    }

    #[test]
    fn floats_preserve_bits() {
        let (p, c) = spsc_channel::<u64>(4);
        let (mut tx, mut rx) = typed::<f64>(p, c);
        for v in [0.0, -1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            tx.push(v).unwrap();
            assert_eq!(rx.pop(), Some(v));
        }
        tx.push(f64::NAN).unwrap();
        assert!(rx.pop().unwrap().is_nan());
    }

    #[test]
    fn typed_over_word_queue_interoperates() {
        // Typed producer, raw word consumer (the accelerator side).
        let (p, mut c) = spsc_channel::<u64>(8);
        let (mut tx, _rx) = typed::<(u64, u64)>(p, {
            // dummy consumer over a second queue, unused
            let (_p2, c2) = spsc_channel::<u64>(1);
            c2
        });
        tx.push((0xa, 0xb)).unwrap();
        assert_eq!(c.pop(), Some(0xa));
        assert_eq!(c.pop(), Some(0xb));
    }
}
