//! Multi-producer single-consumer queues (paper §4.5 future work).
//!
//! "Enabling queues supporting multiple producers or multiple consumers
//! would provide value for a broader set of multithreaded use cases ...
//! Generally these queues require atomic memory operations ... we leave
//! support for these queues and design of their queue descriptors to
//! future work." This module implements that future work for the software
//! side: a bounded MPSC ring using ticket reservation (fetch-add on the
//! write index) plus per-slot sequence numbers for publication — the
//! standard Vyukov construction. The matching hardware descriptor would
//! need the sequence stride; [`MpscDescriptor`] sketches it.

use crate::pad::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Slot<T> {
    /// Publication sequence: `index` when empty-for-writer, `index + 1`
    /// when published-for-reader.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Inner<T> {
    slots: Box<[Slot<T>]>,
    capacity: u64,
    write: CachePadded<AtomicU64>,
    read: CachePadded<AtomicU64>,
}

// SAFETY: slot access is serialized by the seq protocol; values are Send.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let read = self.read.load(Ordering::Relaxed);
        let write = self.write.load(Ordering::Relaxed);
        for i in read..write {
            let slot = &self.slots[(i % self.capacity) as usize];
            // Only drop slots that were actually published.
            if slot.seq.load(Ordering::Relaxed) == i + 1 {
                // SAFETY: published and unconsumed => initialized.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// A producer handle; clone freely across threads.
pub struct MpscProducer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MpscProducer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for MpscProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscProducer")
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

/// The single consumer handle.
pub struct MpscConsumer<T> {
    inner: Arc<Inner<T>>,
    read: u64,
}

impl<T> std::fmt::Debug for MpscConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscConsumer")
            .field("read", &self.read)
            .finish()
    }
}

/// Creates a bounded MPSC queue with `capacity` slots.
///
/// # Panics
/// Panics if `capacity < 2`: with a single slot the publication stamp
/// (`index + 1`) is indistinguishable from the next lap's free stamp
/// (`index + capacity`), so the sequence protocol requires at least two
/// slots.
pub fn mpsc_channel<T: Send>(capacity: usize) -> (MpscProducer<T>, MpscConsumer<T>) {
    assert!(capacity >= 2, "capacity must be at least 2");
    let slots: Box<[Slot<T>]> = (0..capacity as u64)
        .map(|i| Slot {
            seq: AtomicU64::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let inner = Arc::new(Inner {
        slots,
        capacity: capacity as u64,
        write: CachePadded::new(AtomicU64::new(0)),
        read: CachePadded::new(AtomicU64::new(0)),
    });
    (
        MpscProducer {
            inner: Arc::clone(&inner),
        },
        MpscConsumer { inner, read: 0 },
    )
}

impl<T: Send> MpscProducer<T> {
    /// Attempts to push; returns the value back when the queue is full.
    ///
    /// # Errors
    /// Returns `Err(value)` if no slot could be reserved.
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let mut ticket = inner.write.load(Ordering::Relaxed);
        loop {
            let slot = &inner.slots[(ticket % inner.capacity) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == ticket {
                // Slot free for this ticket: try to claim it.
                match inner.write.compare_exchange_weak(
                    ticket,
                    ticket + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: exclusive claim on this slot until we
                        // bump its seq.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(ticket + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => ticket = actual,
                }
            } else if seq < ticket {
                // Slot still holds a lap-old element: the ring is full.
                return Err(value);
            } else {
                // Another producer advanced past us; refresh.
                ticket = inner.write.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T: Send> MpscConsumer<T> {
    /// Pops the next element if one has been published.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let slot = &inner.slots[(self.read % inner.capacity) as usize];
        if slot.seq.load(Ordering::Acquire) != self.read + 1 {
            return None;
        }
        // SAFETY: published for exactly this read index; single consumer.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // Free the slot for the producer one capacity-lap ahead.
        slot.seq
            .store(self.read + inner.capacity, Ordering::Release);
        self.read += 1;
        inner.read.store(self.read, Ordering::Release);
        Some(value)
    }
}

/// Descriptor sketch for a hardware-consumable MPSC queue (what the
/// paper's future-work Cohort engine would need beyond
/// [`crate::QueueDescriptor`]): the per-slot sequence words make
/// publication per-slot rather than per-index, so the engine would watch
/// slot-sequence lines instead of one write-index line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpscDescriptor {
    /// Base VA of the slot array (interleaved `seq`/payload pairs).
    pub base_va: u64,
    /// Bytes per slot including its sequence word.
    pub slot_bytes: u32,
    /// Queue length in slots.
    pub length: u32,
    /// VA of the consumer's read index.
    pub read_index_va: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_producer_fifo() {
        let (tx, mut rx) = mpsc_channel::<u64>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(99).is_err(), "full");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_many_laps() {
        let (tx, mut rx) = mpsc_channel::<u64>(3);
        for i in 0..1000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn multiple_producers_all_elements_arrive_once() {
        let (tx, mut rx) = mpsc_channel::<u64>(64);
        let producers = 4u64;
        let per = 5_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let v = p * per + i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(_) => thread::yield_now(),
                        }
                    }
                }
            }));
        }
        let mut seen = vec![false; (producers * per) as usize];
        let mut count = 0u64;
        while count < producers * per {
            if let Some(v) = rx.pop() {
                assert!(!seen[v as usize], "duplicate {v}");
                seen[v as usize] = true;
                count += 1;
            } else {
                std::hint::spin_loop();
                thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let (tx, mut rx) = mpsc_channel::<(u64, u64)>(16);
        let tx2 = tx.clone();
        let a = thread::spawn(move || {
            for i in 0..2_000u64 {
                while tx.push((0, i)).is_err() {
                    thread::yield_now();
                }
            }
        });
        let b = thread::spawn(move || {
            for i in 0..2_000u64 {
                while tx2.push((1, i)).is_err() {
                    thread::yield_now();
                }
            }
        });
        let mut next = [0u64; 2];
        let mut total = 0;
        while total < 4_000 {
            if let Some((p, i)) = rx.pop() {
                assert_eq!(i, next[p as usize], "producer {p} out of order");
                next[p as usize] += 1;
                total += 1;
            } else {
                thread::yield_now();
            }
        }
        a.join().unwrap();
        b.join().unwrap();
    }

    #[test]
    fn drops_unconsumed() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (tx, mut rx) = mpsc_channel::<D>(8);
            tx.push(D).map_err(|_| ()).unwrap();
            tx.push(D).map_err(|_| ()).unwrap();
            drop(rx.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
