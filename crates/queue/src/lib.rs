//! # cohort-queue — lock-free SPSC queues with Cohort descriptors
//!
//! Shared-memory single-producer/single-consumer queues are the lingua
//! franca of the Cohort system (paper §3.2): producers publish data by
//! writing elements and then releasing a write index; consumers observe the
//! index and read the data — *queue coherence*. This crate provides:
//!
//! * [`spsc`] — a real, atomics-based lock-free SPSC ring usable from Rust
//!   threads, with exactly the release/acquire publication protocol the
//!   Cohort engine exploits, plus *staged* (delayed-publication) operations
//!   that implement the paper's batching optimisation in software;
//! * [`batch`] — batched producer/consumer adapters that publish indices
//!   every `N` elements (the "Cohort batch=N" curves of Figs. 8/9);
//! * [`descriptor`] — the queue descriptor struct a queue library hands to
//!   `cohort_register` (§4.1.1): virtual addresses of the write/read
//!   indices, the data base, element size and length;
//! * [`layout`] — the standard in-memory layout used when a queue lives in
//!   simulated guest memory (cache-line-separated indices, contiguous data
//!   array), shared between the OS model, the engine and the benchmark
//!   program builders;
//! * [`typed`](mod@crate::typed) — typed elements over word queues, the role the paper's
//!   Boost.Lockfree integration plays (§4.1.2);
//! * [`merge`] — the sequence-tagged merge that reassembles one logical
//!   stream from N shard queues (the software half of driver-level queue
//!   sharding);
//! * [`mpsc`] — the §4.5 future-work multi-producer queue (ticket +
//!   per-slot sequence construction) with a sketched hardware descriptor.
//!
//! ## Example
//!
//! ```
//! use cohort_queue::spsc_channel;
//! let (mut tx, mut rx) = spsc_channel::<u64>(8);
//! tx.push(42).unwrap();
//! assert_eq!(rx.pop(), Some(42));
//! ```

pub mod batch;
pub mod descriptor;
pub mod layout;
pub mod merge;
pub mod mpsc;
pub mod pad;
pub mod spsc;
pub mod typed;

pub use batch::{BatchConsumer, BatchProducer};
pub use descriptor::{DescriptorError, QueueDescriptor, MAX_ELEMENT_BYTES};
pub use layout::QueueLayout;
pub use merge::{MergeError, SeqMerge, Tagged};
pub use mpsc::{mpsc_channel, MpscConsumer, MpscProducer};
pub use spsc::{spsc_channel, Consumer, Producer, PushError};
pub use typed::{typed, QueueElement, TypedConsumer, TypedProducer};
