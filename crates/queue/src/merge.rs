//! Sequence-tagged merge: reassembling one logical stream from N shards.
//!
//! When a logical SPSC stream is sharded across several physical engines,
//! each shard preserves FIFO order internally but the shards complete
//! independently. [`SeqMerge`] restores the global order: every element
//! carries the sequence number it was assigned at placement time, shards
//! feed the merge in their own FIFO order, and the merge releases elements
//! strictly in sequence — buffering out-of-order arrivals until the gap
//! fills. This is the software half of the sharding design: placement tags,
//! shards preserve FIFO, the merge reassembles.

use std::collections::BTreeMap;

/// An element tagged with its global sequence number at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged<T> {
    /// Position in the logical (pre-shard) stream.
    pub seq: u64,
    /// The payload.
    pub value: T,
}

/// Errors a [`SeqMerge`] can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// An arriving element's sequence number was already released or is
    /// already buffered — a placement or shard-FIFO violation.
    DuplicateSeq(u64),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::DuplicateSeq(s) => write!(f, "duplicate sequence number {s}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Reassembles sequence-tagged shard outputs into global order.
///
/// `push` accepts elements in any cross-shard interleaving (each shard is
/// FIFO, but shards race each other); `pop_ready` releases the longest
/// in-order prefix one element at a time.
///
/// ```
/// use cohort_queue::merge::SeqMerge;
/// let mut m = SeqMerge::new();
/// m.push(1, "b").unwrap();
/// assert_eq!(m.pop_ready(), None); // gap at 0
/// m.push(0, "a").unwrap();
/// assert_eq!(m.pop_ready(), Some((0, "a")));
/// assert_eq!(m.pop_ready(), Some((1, "b")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeqMerge<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
}

impl<T> SeqMerge<T> {
    /// An empty merge expecting sequence number 0 first.
    pub fn new() -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Offers one element. Out-of-order arrivals are buffered until the
    /// sequence gap below them fills.
    pub fn push(&mut self, seq: u64, value: T) -> Result<(), MergeError> {
        if seq < self.next || self.pending.contains_key(&seq) {
            return Err(MergeError::DuplicateSeq(seq));
        }
        self.pending.insert(seq, value);
        Ok(())
    }

    /// Releases the next in-sequence element, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<(u64, T)> {
        let value = self.pending.remove(&self.next)?;
        let seq = self.next;
        self.next += 1;
        Some((seq, value))
    }

    /// Drains every currently releasable element in order.
    pub fn drain_ready(&mut self) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_ready() {
            out.push(item);
        }
        out
    }

    /// The sequence number the merge will release next.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Elements buffered behind a sequence gap.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered (every pushed element was released).
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut m = SeqMerge::new();
        for i in 0..8u64 {
            m.push(i, i * 10).unwrap();
            assert_eq!(m.pop_ready(), Some((i, i * 10)));
        }
        assert!(m.is_drained());
        assert_eq!(m.next_seq(), 8);
    }

    #[test]
    fn buffers_until_gap_fills() {
        let mut m = SeqMerge::new();
        m.push(2, 'c').unwrap();
        m.push(1, 'b').unwrap();
        assert_eq!(m.pop_ready(), None);
        assert_eq!(m.pending(), 2);
        m.push(0, 'a').unwrap();
        assert_eq!(
            m.drain_ready(),
            vec![(0, 'a'), (1, 'b'), (2, 'c')],
            "release order must be sequence order"
        );
        assert!(m.is_drained());
    }

    #[test]
    fn rejects_duplicates_and_released() {
        let mut m = SeqMerge::new();
        m.push(0, ()).unwrap();
        assert_eq!(m.push(0, ()), Err(MergeError::DuplicateSeq(0)));
        m.pop_ready().unwrap();
        assert_eq!(m.push(0, ()), Err(MergeError::DuplicateSeq(0)));
    }

    #[test]
    fn two_shard_interleaving_restores_order() {
        // Shard A carries even seqs, shard B odd seqs; B runs far ahead.
        let mut m = SeqMerge::new();
        for seq in [1u64, 3, 5] {
            m.push(seq, seq).unwrap();
        }
        assert_eq!(m.pop_ready(), None);
        let mut released = Vec::new();
        for seq in [0u64, 2, 4] {
            m.push(seq, seq).unwrap();
            released.extend(m.drain_ready());
        }
        let seqs: Vec<u64> = released.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }
}
