//! Batched index publication (paper §5.3, Table 2).
//!
//! "Batch size refers to an optimisation that updates the read and write
//! pointers in batches instead of incrementally. This helps to reduce the
//! coherency traffic in the system" — these adapters wrap the SPSC halves
//! and publish/release every `batch` elements, flushing on drop.

use crate::spsc::{Consumer, Producer, PushError};

/// A producer that publishes its write index every `batch` elements.
#[derive(Debug)]
pub struct BatchProducer<T> {
    inner: Producer<T>,
    batch: usize,
    pending: usize,
}

impl<T> BatchProducer<T> {
    /// Wraps `inner`, publishing every `batch` staged elements.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new(inner: Producer<T>, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self {
            inner,
            batch,
            pending: 0,
        }
    }

    /// The batching factor.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Stages `value`; publishes automatically when the batch fills.
    ///
    /// # Errors
    /// Returns [`PushError`] if the ring is full; already-staged elements
    /// are published first so the consumer can drain.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        match self.inner.stage(value) {
            Ok(()) => {
                self.pending += 1;
                if self.pending >= self.batch {
                    self.inner.publish();
                    self.pending = 0;
                }
                Ok(())
            }
            Err(e) => {
                // Make room observable: publish whatever is staged.
                self.flush();
                Err(e)
            }
        }
    }

    /// Publishes any partial batch.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.inner.publish();
            self.pending = 0;
        }
    }

    /// Flushes and returns the underlying producer.
    pub fn into_inner(mut self) -> Producer<T> {
        self.flush();
        // Skip our Drop (already flushed) while moving the producer out.
        let inner = unsafe { std::ptr::read(&self.inner) };
        std::mem::forget(self);
        inner
    }
}

impl<T> Drop for BatchProducer<T> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A consumer that releases its read index every `batch` pops.
#[derive(Debug)]
pub struct BatchConsumer<T> {
    inner: Consumer<T>,
    batch: usize,
    pending: usize,
}

impl<T> BatchConsumer<T> {
    /// Wraps `inner`, releasing every `batch` consumed elements.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new(inner: Consumer<T>, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self {
            inner,
            batch,
            pending: 0,
        }
    }

    /// The batching factor.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Pops the next element; releases slots when the batch fills.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.inner.consume_staged()?;
        self.pending += 1;
        if self.pending >= self.batch {
            self.inner.release();
            self.pending = 0;
        }
        Some(v)
    }

    /// Releases any partially consumed batch.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.inner.release();
            self.pending = 0;
        }
    }

    /// Flushes and returns the underlying consumer.
    pub fn into_inner(mut self) -> Consumer<T> {
        self.flush();
        let inner = unsafe { std::ptr::read(&self.inner) };
        std::mem::forget(self);
        inner
    }
}

impl<T> Drop for BatchConsumer<T> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::spsc_channel;

    #[test]
    fn publishes_every_batch() {
        let (tx, mut rx) = spsc_channel::<u32>(64);
        let mut btx = BatchProducer::new(tx, 4);
        for i in 0..3 {
            btx.push(i).unwrap();
        }
        assert_eq!(rx.pop(), None, "3 staged < batch of 4");
        btx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(0), "batch boundary publishes all 4");
        assert_eq!(rx.len(), 3);
    }

    #[test]
    fn flush_publishes_partial() {
        let (tx, mut rx) = spsc_channel::<u32>(64);
        let mut btx = BatchProducer::new(tx, 16);
        btx.push(9).unwrap();
        assert_eq!(rx.pop(), None);
        btx.flush();
        assert_eq!(rx.pop(), Some(9));
    }

    #[test]
    fn drop_flushes() {
        let (tx, mut rx) = spsc_channel::<u32>(64);
        {
            let mut btx = BatchProducer::new(tx, 16);
            btx.push(1).unwrap();
            btx.push(2).unwrap();
        }
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn batch_consumer_delays_release() {
        let (mut tx, rx) = spsc_channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let mut brx = BatchConsumer::new(rx, 2);
        assert_eq!(brx.pop(), Some(1));
        assert!(tx.push(3).is_err(), "slot not yet released");
        assert_eq!(brx.pop(), Some(2), "second pop completes the batch");
        tx.push(3).unwrap();
        assert_eq!(brx.pop(), Some(3));
    }

    #[test]
    fn into_inner_flushes() {
        let (tx, mut rx) = spsc_channel::<u32>(8);
        let mut btx = BatchProducer::new(tx, 8);
        btx.push(5).unwrap();
        let mut plain = btx.into_inner();
        assert_eq!(rx.pop(), Some(5));
        plain.push(6).unwrap();
        assert_eq!(rx.pop(), Some(6));
    }

    #[test]
    fn full_queue_error_still_publishes_staged() {
        let (tx, mut rx) = spsc_channel::<u32>(2);
        let mut btx = BatchProducer::new(tx, 8);
        btx.push(1).unwrap();
        btx.push(2).unwrap();
        let err = btx.push(3);
        assert!(err.is_err());
        // The failed push must have published the staged pair.
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let (tx, _rx) = spsc_channel::<u32>(2);
        let _ = BatchProducer::new(tx, 0);
    }
}
