//! Queue descriptors (paper §4.1.1).
//!
//! "To register a queue with Cohort, its structure must be described to
//! properly configure the Cohort engine ... The descriptor also contains
//! (virtually addressed) pointers to the queue elements in question, such
//! as the read or write index." The supported attributes are exactly the
//! paper's list: write pointer/index, read pointer/index, FIFO base
//! address, element size, and FIFO length.

/// Describes an SPSC queue's memory structure to the Cohort engine.
///
/// All addresses are *virtual* — the engine's ISA-native MMU translates
/// them (§4.2.4), so queues are allocatable with ordinary `malloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueDescriptor {
    /// Virtual address of the 64-bit write index (elements published).
    pub write_index_va: u64,
    /// Virtual address of the 64-bit read index (elements consumed).
    pub read_index_va: u64,
    /// Virtual address of the first data element.
    pub base_va: u64,
    /// Size of one element in bytes.
    pub element_bytes: u32,
    /// Queue length in elements.
    pub length: u32,
    /// Monotonically increasing generation of this queue binding.
    ///
    /// Failover bumps the epoch before re-registering the descriptor on a
    /// spare engine; the engine rejects any configure carrying an epoch
    /// older than the highest it has been fenced to, so a stale engine
    /// that wakes late can never republish indices (exactly-once
    /// delivery across migration).
    pub epoch: u64,
}

/// Largest element size the engine's staging datapath supports (one
/// page): anything larger is a misprogrammed register, not a queue.
pub const MAX_ELEMENT_BYTES: u32 = 4096;

/// Errors from validating a descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescriptorError {
    /// Element size was zero, not 8-byte aligned, or over
    /// [`MAX_ELEMENT_BYTES`].
    BadElementSize(u32),
    /// Length was zero.
    ZeroLength,
    /// Length was not a power of two (the ring index arithmetic and the
    /// engine's wrap logic require it).
    NotPowerOfTwo(u32),
    /// A virtual address was not 8-byte aligned.
    Misaligned {
        /// Which field (`"write"`, `"read"` or `"base"`).
        which: &'static str,
    },
    /// An index pointer aliases the data array.
    IndexAliasesData {
        /// Which pointer (`"write"` or `"read"`).
        which: &'static str,
    },
}

impl std::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DescriptorError::BadElementSize(s) => {
                write!(
                    f,
                    "element size {s} must be a positive multiple of 8 no larger than \
                     {MAX_ELEMENT_BYTES}"
                )
            }
            DescriptorError::ZeroLength => f.write_str("queue length must be positive"),
            DescriptorError::NotPowerOfTwo(n) => {
                write!(f, "queue length {n} must be a power of two")
            }
            DescriptorError::Misaligned { which } => {
                write!(f, "{which} address is not 8-byte aligned")
            }
            DescriptorError::IndexAliasesData { which } => {
                write!(f, "{which} index pointer overlaps the data array")
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

impl QueueDescriptor {
    /// Validated construction: builds a descriptor and checks every
    /// structural invariant, so a `QueueDescriptor` obtained this way is
    /// known-good before it reaches the driver or the engine.
    ///
    /// # Errors
    /// Returns a [`DescriptorError`] describing the violated invariant.
    pub fn try_new(
        write_index_va: u64,
        read_index_va: u64,
        base_va: u64,
        element_bytes: u32,
        length: u32,
    ) -> Result<Self, DescriptorError> {
        let d = Self {
            write_index_va,
            read_index_va,
            base_va,
            element_bytes,
            length,
            epoch: 0,
        };
        d.validate()?;
        Ok(d)
    }

    /// Returns the same descriptor stamped with binding generation
    /// `epoch`. Epochs only ever grow: the failover orchestrator bumps
    /// the epoch each time it migrates the queue to a new engine.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Total bytes occupied by the data array.
    pub fn data_bytes(&self) -> u64 {
        u64::from(self.element_bytes) * u64::from(self.length)
    }

    /// Virtual address of element slot `index % length`.
    pub fn element_va(&self, index: u64) -> u64 {
        self.base_va + (index % u64::from(self.length)) * u64::from(self.element_bytes)
    }

    /// Checks structural invariants the Cohort driver enforces at
    /// registration time: element size bounds, power-of-two capacity,
    /// pointer alignment, and index/data aliasing.
    ///
    /// # Errors
    /// Returns a [`DescriptorError`] describing the violated invariant.
    pub fn validate(&self) -> Result<(), DescriptorError> {
        if self.element_bytes == 0
            || !self.element_bytes.is_multiple_of(8)
            || self.element_bytes > MAX_ELEMENT_BYTES
        {
            return Err(DescriptorError::BadElementSize(self.element_bytes));
        }
        if self.length == 0 {
            return Err(DescriptorError::ZeroLength);
        }
        if !self.length.is_power_of_two() {
            return Err(DescriptorError::NotPowerOfTwo(self.length));
        }
        for (which, va) in [
            ("write", self.write_index_va),
            ("read", self.read_index_va),
            ("base", self.base_va),
        ] {
            if !va.is_multiple_of(8) {
                return Err(DescriptorError::Misaligned { which });
            }
        }
        let data = self.base_va..self.base_va + self.data_bytes();
        for (which, va) in [("write", self.write_index_va), ("read", self.read_index_va)] {
            if data.contains(&va) {
                return Err(DescriptorError::IndexAliasesData { which });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> QueueDescriptor {
        QueueDescriptor {
            write_index_va: 0x1000,
            read_index_va: 0x1040,
            base_va: 0x1080,
            element_bytes: 8,
            length: 64,
            epoch: 0,
        }
    }

    #[test]
    fn valid_descriptor_passes() {
        assert_eq!(desc().validate(), Ok(()));
    }

    #[test]
    fn element_addressing_wraps() {
        let d = desc();
        assert_eq!(d.element_va(0), 0x1080);
        assert_eq!(d.element_va(63), 0x1080 + 63 * 8);
        assert_eq!(d.element_va(64), 0x1080, "wraps at length");
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut d = desc();
        d.element_bytes = 0;
        assert!(matches!(
            d.validate(),
            Err(DescriptorError::BadElementSize(0))
        ));
        let mut d = desc();
        d.element_bytes = 12;
        assert!(d.validate().is_err());
        let mut d = desc();
        d.element_bytes = MAX_ELEMENT_BYTES + 8;
        assert!(matches!(
            d.validate(),
            Err(DescriptorError::BadElementSize(_))
        ));
        let mut d = desc();
        d.length = 0;
        assert_eq!(d.validate(), Err(DescriptorError::ZeroLength));
        let mut d = desc();
        d.length = 100;
        assert_eq!(d.validate(), Err(DescriptorError::NotPowerOfTwo(100)));
    }

    #[test]
    fn rejects_misaligned_addresses() {
        let mut d = desc();
        d.read_index_va = 0x1044;
        assert_eq!(
            d.validate(),
            Err(DescriptorError::Misaligned { which: "read" })
        );
        let mut d = desc();
        d.base_va = 0x1084;
        assert_eq!(
            d.validate(),
            Err(DescriptorError::Misaligned { which: "base" })
        );
    }

    #[test]
    fn try_new_validates() {
        let d = QueueDescriptor::try_new(0x1000, 0x1040, 0x1080, 8, 64).expect("valid");
        assert_eq!(d, desc());
        assert_eq!(
            QueueDescriptor::try_new(0x1000, 0x1040, 0x1080, 8, 100),
            Err(DescriptorError::NotPowerOfTwo(100))
        );
    }

    #[test]
    fn rejects_aliasing_pointers() {
        let mut d = desc();
        d.write_index_va = d.base_va + 16;
        assert_eq!(
            d.validate(),
            Err(DescriptorError::IndexAliasesData { which: "write" })
        );
    }

    #[test]
    fn data_bytes_product() {
        assert_eq!(desc().data_bytes(), 8 * 64);
    }

    #[test]
    fn with_epoch_stamps_generation() {
        let d = desc().with_epoch(3);
        assert_eq!(d.epoch, 3);
        assert_eq!(
            d.validate(),
            Ok(()),
            "epoch does not affect geometry validation"
        );
        assert_eq!(
            QueueDescriptor::try_new(0x1000, 0x1040, 0x1080, 8, 64)
                .unwrap()
                .epoch,
            0
        );
    }
}
