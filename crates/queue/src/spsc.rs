//! The lock-free SPSC ring.
//!
//! Monotonic 64-bit write/read indices (never wrapped) live on separate
//! cache lines; `slot = index % capacity`. The producer publishes with a
//! release store of the write index after writing the element; the consumer
//! acquires the write index before reading elements — this is precisely the
//! *queue coherence* contract (paper §3.2, §4.2.3) that lets the Cohort
//! engine treat an index-line invalidation as "data available".
//!
//! Beyond `push`/`pop`, producers can *stage* elements without publishing
//! and `publish` explicitly — the software batching optimisation of §5.3 —
//! and consumers can symmetrically delay their read-index release.

use crate::pad::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: u64,
    /// Consumer-owned read index (elements popped so far).
    read: CachePadded<AtomicU64>,
    /// Producer-owned write index (elements published so far).
    write: CachePadded<AtomicU64>,
    /// Set when either half is dropped or calls `close`: the peer's
    /// blocking loop should stop waiting rather than spin forever.
    closed: AtomicBool,
}

// SAFETY: the producer/consumer split guarantees exclusive slot access:
// slots in [read, write) are owned by the consumer, the rest by the
// producer, and the indices are published with release/acquire ordering.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let read = self.read.load(Ordering::Relaxed);
        let write = self.write.load(Ordering::Relaxed);
        for i in read..write {
            let slot = (i % self.capacity) as usize;
            // SAFETY: elements in [read, write) are initialized and nobody
            // else can touch them during drop (&mut self).
            unsafe { (*self.buf[slot].get()).assume_init_drop() };
        }
    }
}

/// Error returned by [`Producer::push`] on a full queue; gives the element
/// back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> std::fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for PushError<T> {}

/// The producing half of an SPSC queue.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local (unpublished) write index; `>= inner.write`.
    staged: u64,
    /// Cached snapshot of the consumer's read index.
    read_cache: u64,
}

/// The consuming half of an SPSC queue.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local (unreleased) read index; `>= inner.read`.
    staged: u64,
    /// Cached snapshot of the producer's write index.
    write_cache: u64,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("staged", &self.staged)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("staged", &self.staged)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

/// Creates an SPSC queue holding up to `capacity` elements.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn spsc_channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        capacity: capacity as u64,
        read: CachePadded::new(AtomicU64::new(0)),
        write: CachePadded::new(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            staged: 0,
            read_cache: 0,
        },
        Consumer {
            inner,
            staged: 0,
            write_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Queue capacity in elements.
    pub fn capacity(&self) -> usize {
        self.inner.capacity as usize
    }

    /// Stages `value` without publishing it to the consumer.
    ///
    /// # Errors
    /// Returns [`PushError`] if the ring is full (counting staged
    /// elements).
    pub fn stage(&mut self, value: T) -> Result<(), PushError<T>> {
        if self.staged - self.read_cache >= self.inner.capacity {
            // Refresh the consumer's index before declaring full.
            self.read_cache = self.inner.read.load(Ordering::Acquire);
            if self.staged - self.read_cache >= self.inner.capacity {
                return Err(PushError(value));
            }
        }
        let slot = (self.staged % self.inner.capacity) as usize;
        // SAFETY: the slot is outside [read, write) ∪ staged region of the
        // consumer, so the producer has exclusive access.
        unsafe { (*self.inner.buf[slot].get()).write(value) };
        self.staged += 1;
        Ok(())
    }

    /// Publishes all staged elements with a release store of the write
    /// index — the queue-coherence publication point.
    pub fn publish(&mut self) {
        self.inner.write.store(self.staged, Ordering::Release);
    }

    /// Stages and immediately publishes (the classic `push`).
    ///
    /// # Errors
    /// Returns [`PushError`] if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        self.stage(value)?;
        self.publish();
        Ok(())
    }

    /// Elements staged but not yet published.
    ///
    /// Acquire pairs with [`Producer::publish`]'s release store so that an
    /// observer holding a shared reference (e.g. a stats probe on another
    /// thread) never sees a write index ahead of the published elements.
    pub fn staged_len(&self) -> usize {
        (self.staged - self.inner.write.load(Ordering::Acquire)) as usize
    }

    /// Published-but-unconsumed elements as seen from the producer side.
    ///
    /// Pure observer: only atomic loads, callable through `&self`.
    pub fn observed_len(&self) -> usize {
        let write = self.inner.write.load(Ordering::Acquire);
        let read = self.inner.read.load(Ordering::Acquire);
        (write - read) as usize
    }

    /// Free slots available to the producer right now.
    pub fn free(&mut self) -> usize {
        self.read_cache = self.inner.read.load(Ordering::Acquire);
        (self.inner.capacity - (self.staged - self.read_cache)) as usize
    }

    /// Marks the ring closed (also done automatically on drop). Elements
    /// already published remain poppable; the peer uses
    /// [`Consumer::is_closed`] to stop waiting for more.
    pub fn close(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// True once either half has been dropped or closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Flush staged elements so they are visible (and eventually
        // dropped by `Inner`), then tell the consumer no more are coming.
        self.publish();
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Queue capacity in elements.
    pub fn capacity(&self) -> usize {
        self.inner.capacity as usize
    }

    /// Takes the next element without releasing the slot to the producer.
    pub fn consume_staged(&mut self) -> Option<T> {
        if self.staged >= self.write_cache {
            self.write_cache = self.inner.write.load(Ordering::Acquire);
            if self.staged >= self.write_cache {
                return None;
            }
        }
        let slot = (self.staged % self.inner.capacity) as usize;
        // SAFETY: [read, write) slots are initialized and consumer-owned.
        let value = unsafe { (*self.inner.buf[slot].get()).assume_init_read() };
        self.staged += 1;
        Some(value)
    }

    /// Releases all consumed slots back to the producer.
    pub fn release(&mut self) {
        self.inner.read.store(self.staged, Ordering::Release);
    }

    /// Consumes and immediately releases (the classic `pop`).
    pub fn pop(&mut self) -> Option<T> {
        let v = self.consume_staged()?;
        self.release();
        Some(v)
    }

    /// Published-but-unconsumed elements, observable through `&self`.
    ///
    /// Pure observer: a single acquire load of the write index against the
    /// consumer's local position, with no write-cache refresh. Safe to call
    /// from code that only holds a shared reference (stats probes, asserts).
    pub fn observed_len(&self) -> usize {
        let write = self.inner.write.load(Ordering::Acquire);
        (write - self.staged) as usize
    }

    /// Elements currently observable by the consumer.
    pub fn len(&self) -> usize {
        self.observed_len()
    }

    /// True if no published elements are pending.
    pub fn is_empty(&self) -> bool {
        self.observed_len() == 0
    }

    /// Marks the ring closed (also done automatically on drop): the
    /// producer's blocking full-queue loop should give up rather than wait
    /// for space that will never be released.
    pub fn close(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// True once either half has been dropped or closed.
    ///
    /// A consumer should keep popping until the queue is *both* closed and
    /// empty — close does not discard already-published elements.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Release consumed slots for accurate `Inner` cleanup, then tell
        // the producer nobody will ever free space again.
        self.release();
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = spsc_channel::<u32>(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let (mut tx, mut rx) = spsc_channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(PushError(3)));
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn staged_elements_invisible_until_publish() {
        let (mut tx, mut rx) = spsc_channel::<u32>(8);
        tx.stage(1).unwrap();
        tx.stage(2).unwrap();
        assert_eq!(rx.pop(), None, "not yet published");
        assert_eq!(tx.staged_len(), 2);
        tx.publish();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn consumer_release_frees_producer_space() {
        let (mut tx, mut rx) = spsc_channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.consume_staged(), Some(1));
        // Slot not yet released: producer still sees the queue full.
        assert!(tx.push(3).is_err());
        rx.release();
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = spsc_channel::<u64>(3);
        for i in 0..1000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_stream() {
        let (mut tx, mut rx) = spsc_channel::<u64>(64);
        let n = 20_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                loop {
                    match tx.push(i) {
                        Ok(()) => break,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect, "FIFO order across threads");
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_batched_publication() {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        let n = 20_000u64;
        let batch = 16;
        let producer = thread::spawn(move || {
            for i in 0..n {
                loop {
                    match tx.stage(i) {
                        Ok(()) => break,
                        Err(_) => {
                            tx.publish();
                            std::thread::yield_now();
                        }
                    }
                }
                if (i + 1) % batch == 0 {
                    tx.publish();
                }
            }
            tx.publish();
        });
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drops_unconsumed_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, mut rx) = spsc_channel::<D>(8);
            tx.push(D).unwrap();
            tx.push(D).unwrap();
            tx.push(D).unwrap();
            drop(rx.pop()); // one consumed and dropped
                            // two left inside
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn producer_drop_publishes_and_closes() {
        let (mut tx, mut rx) = spsc_channel::<u32>(8);
        tx.push(1).unwrap();
        tx.stage(2).unwrap(); // never explicitly published
        assert!(!rx.is_closed());
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(1), "published data survives close");
        assert_eq!(rx.pop(), Some(2), "staged data is flushed on drop");
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn consumer_drop_closes_for_producer() {
        let (mut tx, rx) = spsc_channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(
            tx.push(3),
            Err(PushError(3)),
            "still full, but detectably dead"
        );
    }

    #[test]
    fn explicit_close_without_drop() {
        let (mut tx, mut rx) = spsc_channel::<u32>(4);
        tx.push(7).unwrap();
        tx.close();
        assert!(tx.is_closed() && rx.is_closed());
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = spsc_channel::<u8>(0);
    }
}
