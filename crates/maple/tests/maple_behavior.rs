//! Behavioural tests of the MAPLE baseline unit: blocking MMIO push/pop,
//! CSR configuration, and coherent DMA transfers through its RISC-V MMU.

use cohort_accel::aes128::{Aes128, Aes128Accel};
use cohort_accel::nullfifo::NullFifo;
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_maple::{regs, MapleUnit};
use cohort_os::addrspace::{AddressSpace, MapPolicy};
use cohort_os::frame::FrameAllocator;
use cohort_sim::component::TileCoord;
use cohort_sim::config::SocConfig;
use cohort_sim::core::InOrderCore;
use cohort_sim::directory::Directory;
use cohort_sim::program::{Op, Program};
use cohort_sim::soc::Soc;

const MAPLE_MMIO: u64 = 0x1100_0000;

struct Rig {
    soc: Soc,
    core: cohort_sim::component::CompId,
    space: AddressSpace,
    frames: FrameAllocator,
}

fn rig(accel: Box<dyn cohort_accel::Accelerator>) -> Rig {
    let cfg = SocConfig::default();
    let mut soc = Soc::new(cfg.clone());
    let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
    let mut frames = FrameAllocator::new(0x8000_0000, 0x9000_0000);
    let space = AddressSpace::new(&mut frames, MapPolicy::Eager);
    let mut core = InOrderCore::new(dir, &cfg, Program::new());
    core.set_translator(Box::new(space.translator()));
    let core = soc.add_component(TileCoord::new(0, 1), Box::new(core));
    let maple = MapleUnit::new(dir, &cfg, MAPLE_MMIO, accel);
    let maple = soc.add_component(TileCoord::new(1, 1), Box::new(maple));
    soc.map_mmio(MAPLE_MMIO..MAPLE_MMIO + regs::BANK_BYTES, maple);
    Rig {
        soc,
        core,
        space,
        frames,
    }
}

impl Rig {
    fn run_program(&mut self, p: Program) -> Vec<u64> {
        self.soc
            .component_mut::<InOrderCore>(self.core)
            .unwrap()
            .load_program(p);
        let out = self.soc.run(10_000_000);
        let core = self.soc.component::<InOrderCore>(self.core).unwrap();
        assert!(
            core.is_done(),
            "stuck: quiescent={} cycle={}",
            out.quiescent,
            out.cycle
        );
        core.recorded().to_vec()
    }
}

#[test]
fn mmio_push_pop_roundtrip() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let mut p = Program::new();
    for i in 0..16u64 {
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::PUSH,
            value: 0xf00d + i,
        });
        p.push(Op::MmioLoad {
            pa: MAPLE_MMIO + regs::POP,
            record: true,
        });
    }
    let got = rig.run_program(p);
    let expect: Vec<u64> = (0..16).map(|i| 0xf00d + i).collect();
    assert_eq!(got, expect);
}

#[test]
fn mmio_pop_blocks_until_compute_finishes() {
    let mut rig = rig(Box::new(Sha256Accel::new()));
    let mut p = Program::new();
    for i in 0..8u64 {
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::PUSH,
            value: i,
        });
    }
    for _ in 0..4 {
        p.push(Op::MmioLoad {
            pa: MAPLE_MMIO + regs::POP,
            record: true,
        });
    }
    let got = rig.run_program(p);
    let mut block = [0u8; 64];
    for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&(i as u64).to_le_bytes());
    }
    let expect: Vec<u64> = sha256_raw_block(&block)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, expect);
    // The blocking pop must have stalled the core for the pipeline latency.
    let core = rig.soc.component::<InOrderCore>(rig.core).unwrap();
    assert!(core.core_counters().mmio_stall_cycles.get() as i64 >= 66);
}

#[test]
fn csr_configures_the_accelerator_over_mmio() {
    let key = *b"maple aes key 16";
    let mut rig = rig(Box::new(Aes128Accel::new()));
    let mut p = Program::new();
    for chunk in key.chunks_exact(8) {
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::CSR_DATA,
            value: u64::from_le_bytes(chunk.try_into().unwrap()),
        });
    }
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::CSR_COMMIT,
        value: 16,
    });
    let pt = [0x61u8; 16];
    for chunk in pt.chunks_exact(8) {
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::PUSH,
            value: u64::from_le_bytes(chunk.try_into().unwrap()),
        });
    }
    p.push(Op::MmioLoad {
        pa: MAPLE_MMIO + regs::POP,
        record: true,
    });
    p.push(Op::MmioLoad {
        pa: MAPLE_MMIO + regs::POP,
        record: true,
    });
    let got = rig.run_program(p);
    let ct = Aes128::new(&key).encrypt_block(&pt);
    let expect: Vec<u64> = ct
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn dma_transfer_through_mmu() {
    let mut rig = rig(Box::new(NullFifo::new()));
    let src = rig.space.malloc(&mut rig.soc.mem, &mut rig.frames, 256, 64);
    let dst = rig.space.malloc(&mut rig.soc.mem, &mut rig.frames, 256, 64);
    let root = rig.space.root_pa();
    let mut p = Program::new();
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_PTROOT,
        value: root,
    });
    // The core stages source data through normal cached stores.
    for i in 0..32u64 {
        p.push(Op::Store {
            va: src + i * 8,
            value: 0xaa00 + i,
        });
    }
    p.push(Op::Fence);
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_SRC,
        value: src,
    });
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_DST,
        value: dst,
    });
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_LEN,
        value: 256,
    });
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_START,
        value: 1,
    });
    p.push(Op::MmioLoad {
        pa: MAPLE_MMIO + regs::DMA_DONE,
        record: true,
    });
    for i in 0..32u64 {
        p.push(Op::Load {
            va: dst + i * 8,
            record: true,
        });
    }
    let got = rig.run_program(p);
    assert_eq!(got[0], 256, "DONE reports output bytes");
    let expect: Vec<u64> = (0..32).map(|i| 0xaa00 + i).collect();
    assert_eq!(&got[1..], &expect[..]);
    let maple = rig
        .soc
        .component::<MapleUnit>(cohort_sim::component::CompId(2))
        .unwrap();
    assert_eq!(maple.maple_counters().dma_transfers.get(), 1);
    assert_eq!(maple.maple_counters().dma_in_bytes.get(), 256);
}

#[test]
fn back_to_back_dma_transfers() {
    let mut rig = rig(Box::new(Sha256Accel::new()));
    let src = rig.space.malloc(&mut rig.soc.mem, &mut rig.frames, 128, 64);
    let dst = rig.space.malloc(&mut rig.soc.mem, &mut rig.frames, 64, 64);
    let root = rig.space.root_pa();
    let mut p = Program::new();
    p.push(Op::MmioStore {
        pa: MAPLE_MMIO + regs::DMA_PTROOT,
        value: root,
    });
    for i in 0..16u64 {
        p.push(Op::Store {
            va: src + i * 8,
            value: i.wrapping_mul(0x1234_5678),
        });
    }
    p.push(Op::Fence);
    // Two 64-byte transfers = two SHA blocks, each a separate invocation.
    for b in 0..2u64 {
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::DMA_SRC,
            value: src + b * 64,
        });
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::DMA_DST,
            value: dst + b * 32,
        });
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::DMA_LEN,
            value: 64,
        });
        p.push(Op::MmioStore {
            pa: MAPLE_MMIO + regs::DMA_START,
            value: 1,
        });
        p.push(Op::MmioLoad {
            pa: MAPLE_MMIO + regs::DMA_DONE,
            record: false,
        });
    }
    for j in 0..8u64 {
        p.push(Op::Load {
            va: dst + j * 8,
            record: true,
        });
    }
    let got = rig.run_program(p);
    let mut expect = Vec::new();
    for b in 0..2u64 {
        let mut block = [0u8; 64];
        for i in 0..8u64 {
            let w = (b * 8 + i).wrapping_mul(0x1234_5678);
            block[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&w.to_le_bytes());
        }
        expect.extend(
            sha256_raw_block(&block)
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
    }
    assert_eq!(got, expect);
}
