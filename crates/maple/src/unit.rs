//! The MAPLE unit component: MMIO and coherent-DMA accelerator hosting.

use cohort_accel::timing::TimedAccel;
use cohort_os::mmu::{DeviceMmu, TlbResult, WalkMachine, WalkStep};
use cohort_sim::component::{CompId, Component, Ctx, Observability};
use cohort_sim::config::{CacheConfig, SocConfig};
use cohort_sim::faultinject::FaultState;
use cohort_sim::msg::Msg;
use cohort_sim::port::{CoherentPort, Outcome, PortEvent};
use cohort_sim::stats::Counter;
use cohort_sim::LINE_BYTES;
use std::collections::VecDeque;

use crate::regs;

const TOK_ACCESS: u64 = 0;
const TOK_PTE: u64 = 1;

/// A held (blocking) MMIO request.
#[derive(Debug, Clone, Copy)]
enum HeldMmio {
    Push { src: CompId, tag: u64, value: u64 },
    Pop { src: CompId, tag: u64 },
    Done { src: CompId, tag: u64 },
}

/// DMA engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DmaState {
    Idle,
    Running,
}

/// One in-flight coherent access of the DMA engine.
#[derive(Debug, Clone, Copy)]
enum Access {
    None,
    /// Walking the page table; the access geometry is retried after the
    /// walk completes.
    Walk {
        len: usize,
        write: bool,
    },
    /// Waiting for a line grant.
    Wait {
        pa: u64,
        len: usize,
        write: bool,
    },
    /// Line granted with hit latency; completes at `at`.
    Hit {
        at: u64,
        pa: u64,
        len: usize,
        write: bool,
    },
}

/// The error sentinel a fail-stopped MAPLE unit returns for blocking
/// reads (`POP`, `DMA_DONE`): no legal word count or output value is
/// all-ones, so software can detect the fault instead of hanging.
pub const DEAD_SENTINEL: u64 = u64::MAX;

/// Performance counters of the MAPLE unit. Registry-backed: after
/// [`Component::attach`] the same cells are visible through the SoC's
/// [`cohort_sim::stats::Stats`] registry.
#[derive(Debug, Default, Clone)]
pub struct MapleCounters {
    /// MMIO words pushed.
    pub mmio_pushes: Counter,
    /// MMIO words popped.
    pub mmio_pops: Counter,
    /// DMA transfers completed.
    pub dma_transfers: Counter,
    /// Input bytes moved by DMA.
    pub dma_in_bytes: Counter,
    /// Output bytes moved by DMA.
    pub dma_out_bytes: Counter,
    /// Fail-stop aborts taken (blocking requests flushed with the error
    /// sentinel, in-flight DMA abandoned).
    pub fail_stops: Counter,
}

/// The MAPLE baseline unit. Map `mmio_base..mmio_base + regs::BANK_BYTES`.
pub struct MapleUnit {
    mmio_base: u64,
    port: CoherentPort,
    mmu: DeviceMmu,
    accel: TimedAccel,
    held: VecDeque<HeldMmio>,
    csr_stage: Vec<u8>,
    // DMA programming registers.
    dma_src: u64,
    dma_dst: u64,
    dma_len: u64,
    dma_state: DmaState,
    // DMA runtime.
    src_off: u64,
    in_buf: VecDeque<u8>,
    fed: u64,
    out_stage: Vec<u8>,
    dst_off: u64,
    access: Access,
    walk: Option<WalkMachine>,
    mmio_latency: u64,
    counters: MapleCounters,
    /// SoC-wide fault switches (stall / fail-stop injection).
    fault_state: Option<FaultState>,
    /// The fail-stop abort already ran (flush once, stay dead).
    dead_latched: bool,
}

impl std::fmt::Debug for MapleUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapleUnit")
            .field("dma_state", &self.dma_state)
            .field("held", &self.held.len())
            .finish()
    }
}

impl MapleUnit {
    /// Creates a MAPLE unit hosting `accel`, talking to directory `dir`,
    /// with its registers at `mmio_base`.
    pub fn new(
        dir: CompId,
        cfg: &SocConfig,
        mmio_base: u64,
        accel: Box<dyn cohort_accel::Accelerator>,
    ) -> Self {
        let lines = cfg.mte_lines.max(4);
        Self {
            mmio_base,
            port: CoherentPort::new(dir, CacheConfig::new(lines * LINE_BYTES, lines as u32), 1),
            mmu: DeviceMmu::new(cfg.tlb_entries),
            accel: TimedAccel::new(accel),
            held: VecDeque::new(),
            csr_stage: Vec::new(),
            dma_src: 0,
            dma_dst: 0,
            dma_len: 0,
            dma_state: DmaState::Idle,
            src_off: 0,
            in_buf: VecDeque::new(),
            fed: 0,
            out_stage: Vec::new(),
            dst_off: 0,
            access: Access::None,
            walk: None,
            mmio_latency: cfg.timing.mmio_device,
            counters: MapleCounters::default(),
            fault_state: None,
            dead_latched: false,
        }
    }

    /// Counter snapshot.
    pub fn maple_counters(&self) -> &MapleCounters {
        &self.counters
    }

    /// Connects the unit to the SoC-wide fault switches, so injected
    /// stalls gate the accelerator/DMA datapath and a fail-stop fault
    /// aborts cleanly instead of hanging the core's blocking accesses.
    pub fn set_fault_state(&mut self, faults: FaultState) {
        self.fault_state = Some(faults);
    }

    /// True while an injected stall holds the accelerator datapath.
    fn stalled(&self, cycle: u64) -> bool {
        self.fault_state
            .as_ref()
            .is_some_and(|f| f.maple_stalled(cycle))
    }

    /// True once a fail-stop fault permanently killed the unit.
    fn dead(&self) -> bool {
        self.fault_state
            .as_ref()
            .is_some_and(FaultState::maple_killed)
    }

    /// The fail-stop abort: run once when the kill is first observed.
    /// Every held (blocking) request is answered with [`DEAD_SENTINEL`]
    /// so the core unblocks and software sees a clean error; the
    /// in-flight DMA is abandoned. The accelerator datapath stays dead.
    fn abort_dead(&mut self, ctx: &mut Ctx<'_>) {
        self.counters.fail_stops.inc();
        while let Some(h) = self.held.pop_front() {
            match h {
                HeldMmio::Push { src, tag, .. } => {
                    ctx.send_delayed(src, Msg::MmioWriteResp { tag }, self.mmio_latency);
                }
                HeldMmio::Pop { src, tag } | HeldMmio::Done { src, tag } => {
                    ctx.send_delayed(
                        src,
                        Msg::MmioReadResp {
                            tag,
                            value: DEAD_SENTINEL,
                        },
                        self.mmio_latency,
                    );
                }
            }
        }
        self.dma_state = DmaState::Idle;
        self.access = Access::None;
        self.walk = None;
        self.in_buf.clear();
        self.out_stage.clear();
    }

    fn on_mmio_write(&mut self, ctx: &mut Ctx<'_>, src: CompId, pa: u64, value: u64, tag: u64) {
        let off = pa - self.mmio_base;
        if self.dead_latched {
            // A fail-stopped unit acknowledges every write without acting
            // on it, so the core never hangs on a dead device. Software
            // detects the fault through the [`DEAD_SENTINEL`] read paths.
            ctx.send_delayed(src, Msg::MmioWriteResp { tag }, self.mmio_latency);
            return;
        }
        match off {
            regs::PUSH => {
                // Accept if the accelerator is ready; otherwise hold the
                // response (the core stalls — §2.1 semantics). An injected
                // stall holds `ready` low.
                if self.accel.ready(ctx.cycle) && !self.stalled(ctx.cycle) {
                    self.accel.push_word(value);
                    self.counters.mmio_pushes.inc();
                    ctx.send_delayed(src, Msg::MmioWriteResp { tag }, self.mmio_latency);
                } else {
                    self.held.push_back(HeldMmio::Push { src, tag, value });
                }
                return;
            }
            regs::CSR_DATA => {
                self.csr_stage.extend_from_slice(&value.to_le_bytes());
            }
            regs::CSR_COMMIT => {
                // `value` is the meaningful CSR byte count.
                let len = (value as usize).min(self.csr_stage.len());
                let buf: Vec<u8> = self.csr_stage.drain(..).collect();
                self.accel
                    .configure(&buf[..len])
                    .expect("accelerator rejected CSR configuration");
            }
            regs::DMA_SRC => self.dma_src = value,
            regs::DMA_DST => self.dma_dst = value,
            regs::DMA_LEN => self.dma_len = value,
            regs::DMA_PTROOT => self.mmu.set_root(value),
            regs::DMA_START => {
                assert_eq!(self.dma_state, DmaState::Idle, "DMA already running");
                self.dma_state = DmaState::Running;
                self.src_off = 0;
                self.dst_off = 0;
                self.fed = 0;
                self.in_buf.clear();
                self.out_stage.clear();
            }
            regs::RESET => {
                self.accel.reset();
                self.dma_state = DmaState::Idle;
                self.in_buf.clear();
                self.out_stage.clear();
                self.csr_stage.clear();
            }
            other => panic!("MAPLE write to unknown register offset {other:#x}"),
        }
        ctx.send_delayed(src, Msg::MmioWriteResp { tag }, self.mmio_latency);
    }

    fn on_mmio_read(&mut self, ctx: &mut Ctx<'_>, src: CompId, pa: u64, tag: u64) {
        let off = pa - self.mmio_base;
        if self.dead_latched {
            ctx.send_delayed(
                src,
                Msg::MmioReadResp {
                    tag,
                    value: DEAD_SENTINEL,
                },
                self.mmio_latency,
            );
            return;
        }
        match off {
            regs::POP => {
                if self.stalled(ctx.cycle) {
                    // Producer valid held low by the injected stall.
                    self.held.push_back(HeldMmio::Pop { src, tag });
                } else if let Some(w) = self.accel.pop_word(ctx.cycle) {
                    self.counters.mmio_pops.inc();
                    ctx.send_delayed(src, Msg::MmioReadResp { tag, value: w }, self.mmio_latency);
                } else {
                    self.held.push_back(HeldMmio::Pop { src, tag });
                }
            }
            regs::DMA_DONE => {
                if self.dma_state == DmaState::Idle {
                    ctx.send_delayed(
                        src,
                        Msg::MmioReadResp {
                            tag,
                            value: self.dst_off,
                        },
                        self.mmio_latency,
                    );
                } else {
                    self.held.push_back(HeldMmio::Done { src, tag });
                }
            }
            other => panic!("MAPLE read of unknown register offset {other:#x}"),
        }
    }

    /// Serves held (blocking) MMIO requests that can now complete.
    fn serve_held(&mut self, ctx: &mut Ctx<'_>) {
        let mut remaining = VecDeque::new();
        while let Some(h) = self.held.pop_front() {
            match h {
                HeldMmio::Push { src, tag, value } => {
                    if self.accel.ready(ctx.cycle) {
                        self.accel.push_word(value);
                        self.counters.mmio_pushes.inc();
                        ctx.send_delayed(src, Msg::MmioWriteResp { tag }, self.mmio_latency);
                    } else {
                        remaining.push_back(h);
                    }
                }
                HeldMmio::Pop { src, tag } => {
                    if let Some(w) = self.accel.pop_word(ctx.cycle) {
                        self.counters.mmio_pops.inc();
                        ctx.send_delayed(
                            src,
                            Msg::MmioReadResp { tag, value: w },
                            self.mmio_latency,
                        );
                    } else {
                        remaining.push_back(h);
                    }
                }
                HeldMmio::Done { src, tag } => {
                    if self.dma_state == DmaState::Idle {
                        ctx.send_delayed(
                            src,
                            Msg::MmioReadResp {
                                tag,
                                value: self.dst_off,
                            },
                            self.mmio_latency,
                        );
                    } else {
                        remaining.push_back(h);
                    }
                }
            }
        }
        self.held = remaining;
    }

    /// Starts a translated coherent access; returns false if one is
    /// already in flight.
    fn start_access(&mut self, ctx: &mut Ctx<'_>, va: u64, len: usize, write: bool) -> bool {
        if !matches!(self.access, Access::None) {
            return false;
        }
        match self.mmu.lookup(va) {
            TlbResult::Hit { pa } => {
                self.issue(ctx, pa, len, write);
            }
            TlbResult::Miss => {
                let walk = self.mmu.begin_walk(va);
                let WalkStep::NeedPte { pa } = walk.step() else {
                    unreachable!()
                };
                self.walk = Some(walk);
                self.access = Access::Walk { len, write };
                self.pte_read(ctx, pa, len, write);
            }
        }
        true
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, pa: u64, len: usize, write: bool) {
        match self.port.request(ctx, pa, write, TOK_ACCESS) {
            Outcome::Hit { ready_at } => {
                self.access = Access::Hit {
                    at: ready_at,
                    pa,
                    len,
                    write,
                };
            }
            Outcome::Pending => self.access = Access::Wait { pa, len, write },
            Outcome::Retry => self.access = Access::Wait { pa, len, write }, // re-issued below
        }
    }

    fn pte_read(&mut self, ctx: &mut Ctx<'_>, pte_pa: u64, len: usize, write: bool) {
        match self.port.request(ctx, pte_pa, false, TOK_PTE) {
            Outcome::Hit { .. } => self.feed_pte(ctx, len, write),
            Outcome::Pending => {}
            Outcome::Retry => {
                // Restart translation next step.
                self.walk = None;
                self.access = Access::None;
            }
        }
    }

    fn feed_pte(&mut self, ctx: &mut Ctx<'_>, len: usize, write: bool) {
        let Some(walk) = self.walk.as_mut() else {
            return;
        };
        let WalkStep::NeedPte { pa } = walk.step() else {
            return;
        };
        let pte = ctx.mem.read_u64(pa);
        match walk.feed(pte) {
            WalkStep::NeedPte { pa } => self.pte_read(ctx, pa, len, write),
            WalkStep::Done {
                pa,
                va_page,
                pa_page,
                size,
            } => {
                self.mmu.insert(va_page, pa_page, size);
                self.walk = None;
                self.issue(ctx, pa, len, write);
            }
            WalkStep::Fault => {
                panic!(
                    "MAPLE DMA page fault at va {:#x} (memory must be mapped)",
                    walk.va()
                )
            }
        }
    }

    fn complete_access(&mut self, ctx: &mut Ctx<'_>, pa: u64, len: usize, write: bool) {
        if write {
            let n = len.min(self.out_stage.len());
            let bytes: Vec<u8> = self.out_stage.drain(..n).collect();
            ctx.mem.write_bytes(pa, &bytes);
            self.dst_off += n as u64;
            self.counters.dma_out_bytes.add(n as u64);
        } else {
            let mut buf = vec![0u8; len];
            ctx.mem.read_bytes(pa, &mut buf);
            self.in_buf.extend(buf);
            self.src_off += len as u64;
            self.counters.dma_in_bytes.add(len as u64);
        }
        self.access = Access::None;
    }

    fn step_dma(&mut self, ctx: &mut Ctx<'_>) {
        if self.dma_state != DmaState::Running {
            return;
        }
        // Writer has priority: drain results into the destination buffer a
        // line at a time (the coherent TRI store path).
        let line = LINE_BYTES as usize;
        if matches!(self.access, Access::None) {
            let flush = self.out_stage.len() >= line
                || (!self.out_stage.is_empty()
                    && self.fed * 8 >= self.dma_len
                    && self.accel.output_len() < 8);
            if flush {
                let va = self.dma_dst + self.dst_off;
                let contig = line - ((va % LINE_BYTES) as usize);
                let len = self.out_stage.len().min(contig);
                self.start_access(ctx, va, len, true);
            } else if self.src_off < self.dma_len && self.in_buf.len() < 2 * line {
                // Prefetch the next input line.
                let va = self.dma_src + self.src_off;
                let contig = (LINE_BYTES - (va % LINE_BYTES)) as usize;
                let len = contig.min((self.dma_len - self.src_off) as usize);
                self.start_access(ctx, va, len, false);
            }
        }
        // Feed the accelerator one word per cycle.
        if self.in_buf.len() >= 8 && self.accel.ready(ctx.cycle) {
            let bytes: Vec<u8> = self.in_buf.drain(..8).collect();
            self.accel
                .push_word(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            self.fed += 1;
        }
        // Collect output.
        if self.out_stage.len() < 4 * line {
            if let Some(w) = self.accel.pop_word(ctx.cycle) {
                self.out_stage.extend_from_slice(&w.to_le_bytes());
            }
        }
        // Completion check.
        if self.src_off >= self.dma_len
            && self.in_buf.is_empty()
            && self.fed * 8 >= self.dma_len
            && self.accel.is_idle(ctx.cycle)
            && self.out_stage.is_empty()
            && matches!(self.access, Access::None)
        {
            self.dma_state = DmaState::Idle;
            self.counters.dma_transfers.inc();
        }
    }
}

impl Component for MapleUnit {
    fn name(&self) -> &str {
        "maple"
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        // A fail-stop fault latches once: flush every blocking request
        // with the error sentinel and abandon the in-flight DMA, so the
        // SoC observes a clean device error instead of a hang.
        if !self.dead_latched && self.dead() {
            self.dead_latched = true;
            self.abort_dead(ctx);
        }
        while let Some(env) = ctx.recv() {
            match &env.msg {
                m if CoherentPort::wants(m) => {
                    let events = self.port.handle(&env, ctx);
                    for ev in events {
                        if let PortEvent::Completed { token } = ev {
                            match token {
                                TOK_ACCESS => {
                                    if let Access::Wait { pa, len, write } = self.access {
                                        self.complete_access(ctx, pa, len, write);
                                    }
                                }
                                TOK_PTE => {
                                    if let Access::Walk { len, write } = self.access {
                                        self.feed_pte(ctx, len, write);
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
                Msg::MmioWrite { pa, value, tag } => {
                    let (pa, value, tag) = (*pa, *value, *tag);
                    self.on_mmio_write(ctx, env.src, pa, value, tag);
                }
                Msg::MmioRead { pa, tag } => {
                    let (pa, tag) = (*pa, *tag);
                    self.on_mmio_read(ctx, env.src, pa, tag);
                }
                other => panic!("MAPLE received unexpected message {other:?}"),
            }
        }
        if self.dead_latched {
            // Datapath frozen; the coherence port above still answers
            // protocol traffic, but nothing computes or moves.
            return;
        }
        // Hit-path access completion.
        if let Access::Hit { at, pa, len, write } = self.access {
            if ctx.cycle >= at {
                self.complete_access(ctx, pa, len, write);
            }
        }
        if self.stalled(ctx.cycle) {
            // Injected stall: valid/ready low across the accelerator
            // interface — held requests and the DMA datapath wait it out.
            return;
        }
        self.accel.step(ctx.cycle);
        self.step_dma(ctx);
        self.serve_held(ctx);
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        if !self.dead_latched && self.dead() {
            return 1; // the next step latches the fail-stop and aborts
        }
        if self.dead_latched {
            // Frozen datapath: only incoming messages (serviced at
            // delivery, which forces a stepped cycle) do anything.
            return u64::MAX;
        }
        // The hit-path completion runs even while stalled, so its bound
        // applies unconditionally.
        let k = match self.access {
            Access::Hit { at, .. } => at.saturating_sub(now),
            // Walk/Wait resolve via port messages; None waits on MMIO.
            _ => u64::MAX,
        };
        if self.stalled(now) {
            // Injected stall: the datapath below is frozen, and the
            // un-stall edge is a fault window the SoC injector bounds.
            return k.max(1);
        }
        if self.dma_state == DmaState::Running || !self.held.is_empty() {
            return 1; // the DMA loop and held-MMIO queue act every cycle
        }
        k.min(self.accel.next_event(now)).max(1)
    }

    fn is_idle(&self) -> bool {
        self.held.is_empty()
            && self.dma_state == DmaState::Idle
            && matches!(self.access, Access::None)
            && self.port.is_idle()
    }

    fn attach(&mut self, obs: &Observability) {
        let c = &self.counters;
        for (name, counter) in [
            ("mmio_pushes", &c.mmio_pushes),
            ("mmio_pops", &c.mmio_pops),
            ("dma_transfers", &c.dma_transfers),
            ("dma_in_bytes", &c.dma_in_bytes),
            ("dma_out_bytes", &c.dma_out_bytes),
            ("fail_stops", &c.fail_stops),
        ] {
            obs.adopt_counter(name, counter);
        }
        self.port.port_counters().register(obs, "port");
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let m = self.mmu.counters();
        vec![
            ("mmio_pushes".into(), c.mmio_pushes.get()),
            ("mmio_pops".into(), c.mmio_pops.get()),
            ("dma_transfers".into(), c.dma_transfers.get()),
            ("dma_in_bytes".into(), c.dma_in_bytes.get()),
            ("dma_out_bytes".into(), c.dma_out_bytes.get()),
            ("fail_stops".into(), c.fail_stops.get()),
            ("tlb_hits".into(), m.hits),
            ("tlb_misses".into(), m.misses),
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
