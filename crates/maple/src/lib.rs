//! # cohort-maple — the MAPLE-based baselines (paper §5.1)
//!
//! The paper repurposes a MAPLE decoupling unit \[61\] to host the same
//! accelerators behind the two conventional invocation interfaces Cohort is
//! compared against:
//!
//! * **MMIO** — the core feeds the accelerator one 64-bit word at a time
//!   through uncached, side-effectful register accesses. Each access is a
//!   full non-speculative NoC round trip; pops of pending results block
//!   until the accelerator produces them ("the core cannot achieve
//!   memory-level parallelism and so must receive the accelerator's output
//!   word by word before passing the next input word", §5.3).
//! * **Coherent DMA** — the core programs a block transfer (source,
//!   destination, length — several MMIO writes per 256-byte block, §5.3 /
//!   Table 2), and the unit fetches the data coherently through its own
//!   RISC-V MMU, streams it through the accelerator, stores results
//!   coherently (the P-Mesh TRI path) and reports completion through a
//!   blocking `DONE` read.
//!
//! Both modes live in one [`MapleUnit`] component, selected per run.

pub mod unit;

pub use unit::{MapleCounters, MapleUnit, DEAD_SENTINEL};

/// The MAPLE unit's MMIO register map (byte offsets from its base).
pub mod regs {
    /// Write a 64-bit input word (blocks while the accelerator is
    /// back-pressuring).
    pub const PUSH: u64 = 0x08;
    /// Read a 64-bit output word (blocks until one is available).
    pub const POP: u64 = 0x10;
    /// Append 8 bytes to the CSR staging buffer.
    pub const CSR_DATA: u64 = 0x18;
    /// Commit the CSR staging buffer to the accelerator.
    pub const CSR_COMMIT: u64 = 0x20;
    /// DMA: source virtual address.
    pub const DMA_SRC: u64 = 0x28;
    /// DMA: destination virtual address.
    pub const DMA_DST: u64 = 0x30;
    /// DMA: transfer length in bytes (input side).
    pub const DMA_LEN: u64 = 0x38;
    /// DMA: page-table root physical address.
    pub const DMA_PTROOT: u64 = 0x40;
    /// DMA: start the programmed transfer.
    pub const DMA_START: u64 = 0x48;
    /// DMA: blocking read, returns the number of output bytes written once
    /// the transfer has fully completed.
    pub const DMA_DONE: u64 = 0x50;
    /// Reset the accelerator and all unit state.
    pub const RESET: u64 = 0x58;
    /// Register bank size in bytes.
    pub const BANK_BYTES: u64 = 0x100;
}
