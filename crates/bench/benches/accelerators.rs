//! Criterion throughput benchmarks of the functional accelerator models.

use cohort_accel::aes128::Aes128Accel;
use cohort_accel::h264::{H264Accel, MB_BYTES};
use cohort_accel::sha256::Sha256Accel;
use cohort_accel::stft::StftAccel;
use cohort_accel::Accelerator;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_sha(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("block", |b| {
        let mut acc = Sha256Accel::new();
        let block = [0xa5u8; 64];
        b.iter(|| std::hint::black_box(acc.process_block(&block)));
    });
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes128");
    group.throughput(Throughput::Bytes(16));
    group.bench_function("block", |b| {
        let mut acc = Aes128Accel::new();
        acc.configure(b"0123456789abcdef").unwrap();
        let block = [0x5au8; 16];
        b.iter(|| std::hint::black_box(acc.process_block(&block)));
    });
    group.finish();
}

fn bench_h264(c: &mut Criterion) {
    let mut group = c.benchmark_group("h264");
    group.throughput(Throughput::Bytes(MB_BYTES as u64));
    group.bench_function("macroblock", |b| {
        let mut acc = H264Accel::new();
        let mb: Vec<u8> = (0..MB_BYTES).map(|i| (i * 7 % 256) as u8).collect();
        b.iter(|| {
            acc.reset();
            let _ = acc.process_block(&1u64.to_le_bytes());
            for chunk in mb.chunks_exact(8) {
                std::hint::black_box(acc.process_block(chunk));
            }
        });
    });
    group.finish();
}

fn bench_stft(c: &mut Criterion) {
    let mut group = c.benchmark_group("stft");
    group.throughput(Throughput::Bytes(512));
    group.bench_function("frame256", |b| {
        let mut acc = StftAccel::new(256);
        let frame: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        b.iter(|| std::hint::black_box(acc.process_block(&frame)));
    });
    group.finish();
}

criterion_group!(benches, bench_sha, bench_aes, bench_h264, bench_stft);
criterion_main!(benches);
