//! Criterion microbenchmarks of the native SPSC queue: the software
//! batching optimisation (Table 2) measured on real hardware.

use cohort_queue::{spsc_channel, BatchConsumer, BatchProducer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::thread;

const N: u64 = 20_000;

fn cross_thread_transfer(batch: usize) {
    let (tx, rx) = spsc_channel::<u64>(1024);
    let producer = thread::spawn(move || {
        let mut btx = BatchProducer::new(tx, batch);
        for i in 0..N {
            while btx.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        btx.flush();
    });
    let mut brx = BatchConsumer::new(rx, batch);
    let mut seen = 0u64;
    while seen < N {
        if let Some(v) = brx.pop() {
            assert_eq!(v, seen);
            seen += 1;
        } else {
            std::thread::yield_now();
        }
    }
    producer.join().unwrap();
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_cross_thread");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    for batch in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| cross_thread_transfer(batch));
        });
    }
    group.finish();
}

fn bench_single_thread_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_single_thread");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop", |b| {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        let mut i = 0u64;
        b.iter(|| {
            tx.push(i).unwrap();
            i += 1;
            std::hint::black_box(rx.pop().unwrap());
        });
    });
    group.bench_function("stage_publish_64", |b| {
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        b.iter(|| {
            for i in 0..64u64 {
                tx.stage(i).unwrap();
            }
            tx.publish();
            for _ in 0..64 {
                std::hint::black_box(rx.pop().unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batching, bench_single_thread_ops);
criterion_main!(benches);
