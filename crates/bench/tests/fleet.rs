//! Fleet-runner integration suite: host-thread determinism, compound
//! chaos campaigns, structured spec errors, the committed example specs
//! and the CI check matrix, plus a splitmix64 fuzz of the spec loader.
//!
//! The determinism tests are the fleet-level extension of the simulator's
//! cross-thread contract (`crates/bench/tests/determinism.rs`): not only
//! must each `(scenario, seed)` run be bit-identical at any *simulator*
//! thread count, the whole campaign's per-run records and summary must be
//! bit-identical at any *host* fan-out width — thread scheduling may
//! reorder execution but never leak into what gets reported.

use cohort_bench::fleet::{run_fleet, summarize, FleetSpec, Outcome, SpecError};
use std::path::PathBuf;

/// A small mixed campaign used by the determinism tests: a clean cohort
/// run, a sharded run with a mid-stream kill (exercises failover), and a
/// chaos run with a seeded random schedule.
const MIXED_SPEC: &str = r#"
[campaign]
name = "mixed"
seeds = "0..4"

[defaults]
workload = "aes"
queue = 128
batch = 16

[[scenario]]
name = "plain"
runner = "cohort"

[[scenario]]
name = "shard-kill"
runner = "shard"
shards = 2
queue = 1024
batch = 64
faults = "kill@20000:1"
fault_jitter = 15000

[[scenario]]
name = "soup"
runner = "chaos"
policy = "lazy"
faults = "random:seed=7001,count=6,from=5000,to=20000"
"#;

fn records_json(spec: &FleetSpec, threads: usize) -> (Vec<String>, String, String) {
    let records = run_fleet(spec, threads, false);
    let summary = summarize(spec, &records);
    (
        records.iter().map(|r| r.json()).collect(),
        summary.json(),
        summary.markdown("spec.toml"),
    )
}

/// The whole campaign — every per-run record, the summary JSON and the
/// markdown report — is bit-identical at host thread counts 1, 2 and 8.
#[test]
fn fleet_is_host_thread_invariant() {
    let spec = FleetSpec::parse(MIXED_SPEC).expect("spec parses");
    let (base_records, base_summary, base_md) = records_json(&spec, 1);
    assert_eq!(base_records.len(), 12);
    for threads in [2, 8] {
        let (records, summary, md) = records_json(&spec, threads);
        assert_eq!(
            base_records, records,
            "per-run records diverged at host_threads={threads}"
        );
        assert_eq!(
            base_summary, summary,
            "summary diverged at host_threads={threads}"
        );
        assert_eq!(base_md, md, "markdown diverged at host_threads={threads}");
    }
}

/// A failure report's `(spec, scenario, seed)` pair reproduces the run
/// bit-identically: narrowing the spec to one scenario and one seed (what
/// `cohort-fleet --scenario X --seed N` does) yields the exact record the
/// full campaign produced.
#[test]
fn repro_pair_matches_campaign_record() {
    let spec = FleetSpec::parse(MIXED_SPEC).expect("spec parses");
    let records = run_fleet(&spec, 4, false);
    let from_campaign = records
        .iter()
        .find(|r| r.scenario == "shard-kill" && r.seed == 3)
        .expect("record present");

    let mut narrowed = FleetSpec::parse(MIXED_SPEC).expect("spec parses");
    assert!(narrowed.retain_scenario("shard-kill"));
    for sc in &mut narrowed.scenarios {
        sc.seeds.retain(|&s| s == 3);
    }
    let solo = run_fleet(&narrowed, 1, false);
    assert_eq!(solo.len(), 1);
    assert_eq!(solo[0].json(), from_campaign.json());
}

/// Compound-fault chaos campaign: a page-fault storm landing while a
/// shard dies, across 8 jittered seeds. Every run must survive through
/// the hardware failover path (not software fallback), with exactly one
/// kill and exactly one rebind per killed shard.
#[test]
fn storm_plus_kill_campaign_fully_survives() {
    let spec = FleetSpec::parse(
        r#"
[campaign]
name = "compound"
seeds = "0..8"

[defaults]
workload = "aes"
queue = 256
batch = 16
watchdog = 20000

[[scenario]]
name = "storm-plus-kill"
runner = "shard"
shards = 2
queue = 1024
batch = 64
policy = "lazy"
faults = "storm@15000:4; kill@20000:1"
fault_jitter = 10000
"#,
    )
    .expect("spec parses");
    let records = run_fleet(&spec, 0, false);
    assert_eq!(records.len(), 8);
    for r in &records {
        assert_eq!(
            r.outcome,
            Outcome::Recovered,
            "seed {}: expected recovered, got {} ({})",
            r.seed,
            r.outcome,
            r.note
        );
        assert!(r.faults_injected > 0, "seed {}: no faults fired", r.seed);
        assert_eq!(r.kills, 1, "seed {}: exactly one shard killed", r.seed);
        assert_eq!(
            r.rebinds, 1,
            "seed {}: exactly one rebind per killed shard",
            r.seed
        );
        assert!(
            r.recovery_resume > 0,
            "seed {}: failover outage latency not recorded",
            r.seed
        );
    }
    let summary = summarize(&spec, &records);
    let sc = &summary.scenarios[0];
    assert_eq!(sc.fault_runs, 8);
    assert_eq!(sc.survival_rate, 1.0);
    assert_eq!(sc.rebinds, 8);
    assert!(sc.recovery_resume.p50 > 0);
    assert!(sc.failures.is_empty());
}

/// Spec validation rejects bad inputs with structured errors naming the
/// offending entry — not panics, not stringly-typed failures.
#[test]
fn spec_errors_are_structured() {
    type ErrPredicate = fn(&SpecError) -> bool;
    let cases: &[(&str, ErrPredicate)] = &[
        // A key outside the grammar, with its line and section.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\nbogus = 3\n",
            |e| matches!(e, SpecError::UnknownKey { line: 7, section, key }
                if section == "scenario" && key == "bogus"),
        ),
        // An empty seed range.
        (
            "[campaign]\nname = \"x\"\nseeds = \"5..5\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\n",
            |e| matches!(e, SpecError::BadSeedRange { line: 3, .. }),
        ),
        // No scenarios at all.
        ("[campaign]\nname = \"x\"\nseeds = \"0..2\"\n", |e| {
            matches!(e, SpecError::NoScenarios)
        }),
        // Duplicate scenario names would make repro pairs ambiguous.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\n",
            |e| matches!(e, SpecError::DuplicateScenario { name } if name == "a"),
        ),
        // A fault-grammar error carries the structured sim-side error and
        // the scenario it came from.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"chaos\"\nfaults = \"stall@banana:4\"\n",
            |e| matches!(e, SpecError::Fault { scenario, .. } if scenario == "a"),
        ),
        // Kill faults are rejected on runners with no failover stack.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\nfaults = \"kill@100:0\"\n",
            |e| matches!(e, SpecError::FaultUnsupported { scenario, fault, .. }
                if scenario == "a" && *fault == "kill"),
        ),
        // A kill targeting a shard the scenario does not bind.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"shard\"\nshards = 2\nfaults = \"kill@100:5\"\n",
            |e| matches!(e, SpecError::EngineTarget { engine: 5, .. }),
        ),
        // Queue size must honour the runner's block granularity.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"shard\"\nworkload = \"sha\"\nqueue = 100\n",
            |e| matches!(e, SpecError::QueueGranularity { queue: 100, .. }),
        ),
        // Overrides must name an existing scenario...
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\n[[override]]\nscenario = \"ghost\"\nseed = 0\nqueue = 256\n",
            |e| matches!(e, SpecError::OverrideTarget { scenario } if scenario == "ghost"),
        ),
        // ...and a seed inside its seed set.
        (
            "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n[[scenario]]\nname = \"a\"\nrunner = \"cohort\"\n[[override]]\nscenario = \"a\"\nseed = 9\nqueue = 256\n",
            |e| matches!(e, SpecError::OverrideSeed { seed: 9, .. }),
        ),
    ];
    for (i, (text, want)) in cases.iter().enumerate() {
        match FleetSpec::parse(text) {
            Ok(_) => panic!("case {i}: bad spec accepted"),
            Err(e) => {
                assert!(want(&e), "case {i}: wrong error: {e} ({e:?})");
                // Every error renders a non-empty human message.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

fn example_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/fleet")
        .join(name)
}

/// Every committed example spec parses, and a 2-seed truncation of each
/// runs to 100% survival. This keeps `examples/fleet/` honest without
/// paying for the full campaigns on every test run.
#[test]
fn example_specs_parse_and_smoke() {
    let examples = [
        "ci_smoke.toml",
        "placement_sweep.toml",
        "chaos_campaign.toml",
    ];
    for name in examples {
        let mut spec =
            FleetSpec::load(&example_path(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(spec.total_runs() >= 24, "{name}: campaign too small");
        spec.truncate_seeds(2);
        let records = run_fleet(&spec, 0, false);
        assert_eq!(records.len(), spec.total_runs());
        for r in &records {
            assert!(
                r.outcome.survived(),
                "{name} scenario {} seed {}: {} ({})",
                r.scenario,
                r.seed,
                r.outcome,
                r.note
            );
        }
    }
}

/// The CI check matrix reproduces the blessed baseline exactly (the
/// simulator is cycle-deterministic, so the committed p50s must match on
/// any host, not merely within tolerance).
#[test]
fn check_matrix_matches_blessed_baseline() {
    let baseline_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(cohort_bench::fleet::CHECK_BASELINE_PATH);
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let (summary, records) = cohort_bench::fleet::run_check(Some(&baseline), 0, false)
        .unwrap_or_else(|(problems, ..)| panic!("check failed: {problems:?}"));
    assert_eq!(summary.scenarios.len(), 3);
    assert!(records.iter().all(|r| r.outcome == Outcome::Pass));
    // Bit-exact, not just within the drift gate.
    for sc in &summary.scenarios {
        assert!(
            baseline.contains(&format!("\"cycles_p50\": {}", sc.cycles.p50)),
            "{}: p50 {} not in blessed baseline — re-bless with --check --bless",
            sc.name,
            sc.cycles.p50
        );
    }
}

/// Deterministic splitmix64 generator (same shape as tests/proptests.rs).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.range(0, pool.len() as u64) as usize]
    }
}

/// The spec loader is total: arbitrary token soup — section headers,
/// half-valid keys, junk values, hostile fault strings — either parses or
/// returns a structured `SpecError`; it never panics and never loops.
#[test]
fn fuzzed_specs_never_panic() {
    let fragments: &[&str] = &[
        "[campaign]",
        "[defaults]",
        "[[scenario]]",
        "[[override]]",
        "[mystery]",
        "name = \"fuzz\"",
        "name = 7",
        "seeds = \"0..4\"",
        "seeds = \"4..0\"",
        "seeds = [1, 2, 3]",
        "seeds = \"0..=18446744073709551615\"",
        "runner = \"shard\"",
        "runner = \"cohort\"",
        "runner = \"warp\"",
        "workload = \"aes\"",
        "workload = \"sha\"",
        "queue = 256",
        "queue = 0",
        "queue = 0x7fff_ffff_ffff",
        "batch = 16",
        "shards = 2",
        "shards = 99",
        "engines = 0",
        "policy = \"lazy\"",
        "policy = \"sideways\"",
        "placement = \"occupancy\"",
        "skew = true",
        "skew = \"yes\"",
        "watchdog = 20000",
        "fault_jitter = 1000",
        "vary_fault_seed = false",
        "scenario = \"fuzz\"",
        "seed = 1",
        "faults = \"kill@100:1\"",
        "faults = \"stall@100:50|forever\"",
        "faults = \"storm@:\"",
        "faults = \"random:seed=1,count=2,from=5,to=4\"",
        "faults = \"spike@1:2:3; corrupt@4; nonsense@5\"",
        "faults = \"kill@18446744073709551615:64\"",
        "= = =",
        "key with spaces = 1",
        "queue = ",
        "# comment",
        "\"unterminated",
    ];
    let mut rng = Rng(0xf1ee7);
    for case in 0..512 {
        let lines = rng.range(0, 24);
        let mut text = String::new();
        for _ in 0..lines {
            text.push_str(rng.pick(fragments));
            text.push('\n');
        }
        match FleetSpec::parse(&text) {
            Ok(spec) => {
                // Anything accepted must be internally coherent enough to
                // summarise an empty record set without panicking.
                assert!(!spec.name.is_empty(), "case {case}: empty campaign name");
                let _ = summarize(&spec, &[]);
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "case {case}: silent error");
            }
        }
    }
}
