//! The cross-thread determinism contract, enforced end to end.
//!
//! For a fixed scenario and seed, `RunResult::{cycles, checksum, recorded,
//! stats_json}` must be bit-identical at every `SocConfig::threads`
//! setting: the parallel step kernel stages all cross-component effects
//! per slot and commits them in slot order at the cycle barrier, so host
//! scheduling can never leak into simulated state. Conservative lookahead
//! batching widens the matrix: every thread count is additionally run
//! with batching forced off (`Lookahead::Force1`) and fully automatic
//! (`Lookahead::Auto`), and all six cells must agree with the
//! cycle-by-cycle sequential reference — a fast-forwarded cycle must be
//! indistinguishable from a stepped one, down to the last histogram
//! bucket in the stats-registry JSON.

use cohort::scenarios::{
    mesh16_scenario, run_cohort_chain_failover, run_cohort_chaos, run_cohort_sharded, RunResult,
    Scenario, ShardSpec, Workload,
};
use cohort_sim::config::{Lookahead, SocConfig};
use cohort_sim::faultinject::FaultPlan;

/// Thread counts exercised by every scenario: sequential, the smallest
/// parallel pool, and an oversubscribed one (more threads than this
/// host has cores — and, for small SoCs, more than there are slots).
const THREADS: [usize; 3] = [1, 2, 8];

/// Batching modes crossed with every thread count. `Force1` pins the
/// pre-batching cycle-by-cycle kernel; `Auto` lets the lookahead skip
/// every provably dead cycle.
const LOOKAHEAD: [Lookahead; 2] = [Lookahead::Force1, Lookahead::Auto];

fn assert_thread_invariant(name: &str, run: impl Fn(usize, Lookahead) -> RunResult) {
    let base = run(1, Lookahead::Force1);
    assert!(base.verified, "{name}: sequential run failed verification");
    for t in THREADS {
        for la in LOOKAHEAD {
            if t == 1 && la == Lookahead::Force1 {
                continue; // the reference cell itself
            }
            let r = run(t, la);
            assert!(
                r.verified,
                "{name}: threads={t} {la:?} run failed verification"
            );
            assert_eq!(
                base.cycles, r.cycles,
                "{name}: cycle count diverged at threads={t} {la:?}"
            );
            assert_eq!(
                base.checksum, r.checksum,
                "{name}: payload checksum diverged at threads={t} {la:?}"
            );
            assert_eq!(
                base.recorded, r.recorded,
                "{name}: recorded stream diverged at threads={t} {la:?}"
            );
            assert_eq!(
                base.stats_json, r.stats_json,
                "{name}: stats registry diverged at threads={t} {la:?}"
            );
            if la == Lookahead::Force1 {
                assert_eq!(
                    r.ff_cycles, 0,
                    "{name}: forced cycle-by-cycle stepping must never skip"
                );
            }
        }
    }
}

#[test]
fn sharded_runs_are_thread_invariant() {
    assert_thread_invariant("sharded-aes", |threads, lookahead| {
        let mut scenario = Scenario::new(Workload::Aes, 64, 4);
        scenario.soc = SocConfig::default()
            .with_engines(2)
            .with_threads(threads)
            .with_lookahead(lookahead);
        run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds")
    });
}

#[test]
fn mesh16_runs_are_thread_invariant() {
    assert_thread_invariant("mesh16", |threads, lookahead| {
        let (mut scenario, spec) = mesh16_scenario(64, 4);
        scenario.soc = scenario
            .soc
            .clone()
            .with_threads(threads)
            .with_lookahead(lookahead);
        run_cohort_sharded(&scenario, &spec).expect("pool binds")
    });
}

#[test]
fn dram_contended_runs_are_thread_invariant() {
    // The DRAM contention model (plus its MSHR and NoC-ejection
    // backpressure) feeds every completion through the directory's
    // delayed-event heap, so it must be exactly as thread- and
    // lookahead-invariant as the flat memory system — including the
    // conditionally-registered dram_* stats.
    let dram = cohort_sim::dram::DramConfig::from_spec("channels=1,queue=2,miss=100,mshrs=3")
        .expect("valid dram spec");
    assert_thread_invariant("sharded-aes-dram", |threads, lookahead| {
        let mut scenario = Scenario::new(Workload::Aes, 64, 4);
        scenario.soc = SocConfig::default()
            .with_engines(2)
            .with_dram(dram.clone())
            .with_threads(threads)
            .with_lookahead(lookahead);
        run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds")
    });
}

#[test]
fn chaos_runs_are_thread_invariant() {
    // Stall + latency spike + page storm: every staged fault-flip path,
    // with the full recovery stack (watchdog, swap store, retry) armed.
    let plan = FaultPlan::parse("stall@2000:1500;spike@5000:3000:4;storm@9000:2")
        .expect("valid fault spec");
    assert_thread_invariant("chaos", |threads, lookahead| {
        let mut scenario = Scenario::new(Workload::Sha, 64, 8);
        scenario.soc = SocConfig::default()
            .with_faults(plan.clone())
            .with_threads(threads)
            .with_lookahead(lookahead);
        run_cohort_chaos(&scenario)
    });
}

#[test]
fn failover_runs_are_thread_invariant() {
    // Default plan: fail-stop of the mid-chain SHA engine at cycle 20k,
    // exactly-once queue migration onto the cold spare.
    assert_thread_invariant("chain-failover", |threads, lookahead| {
        let mut scenario = Scenario::new(Workload::Sha, 64, 8);
        scenario.soc = SocConfig::default()
            .with_threads(threads)
            .with_lookahead(lookahead);
        run_cohort_chain_failover(&scenario)
    });
}
