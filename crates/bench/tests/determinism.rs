//! The cross-thread determinism contract, enforced end to end.
//!
//! For a fixed scenario and seed, `RunResult::{cycles, checksum, recorded,
//! stats_json}` must be bit-identical at every `SocConfig::threads`
//! setting: the parallel step kernel stages all cross-component effects
//! per slot and commits them in slot order at the cycle barrier, so host
//! scheduling can never leak into simulated state. Each test here runs
//! the same scenario at 1, 2 and 8 host threads and diffs the full
//! observable result — including the stats-registry JSON, which would
//! expose even a single divergent counter increment.

use cohort::scenarios::{
    mesh16_scenario, run_cohort_chain_failover, run_cohort_chaos, run_cohort_sharded, RunResult,
    Scenario, ShardSpec, Workload,
};
use cohort_sim::config::SocConfig;
use cohort_sim::faultinject::FaultPlan;

/// Thread counts exercised by every scenario: sequential, the smallest
/// parallel pool, and an oversubscribed one (more threads than this
/// host has cores — and, for small SoCs, more than there are slots).
const THREADS: [usize; 2] = [2, 8];

fn assert_thread_invariant(name: &str, run: impl Fn(usize) -> RunResult) {
    let base = run(1);
    assert!(base.verified, "{name}: sequential run failed verification");
    for t in THREADS {
        let r = run(t);
        assert!(r.verified, "{name}: threads={t} run failed verification");
        assert_eq!(
            base.cycles, r.cycles,
            "{name}: cycle count diverged at threads={t}"
        );
        assert_eq!(
            base.checksum, r.checksum,
            "{name}: payload checksum diverged at threads={t}"
        );
        assert_eq!(
            base.recorded, r.recorded,
            "{name}: recorded stream diverged at threads={t}"
        );
        assert_eq!(
            base.stats_json, r.stats_json,
            "{name}: stats registry diverged at threads={t}"
        );
    }
}

#[test]
fn sharded_runs_are_thread_invariant() {
    assert_thread_invariant("sharded-aes", |threads| {
        let mut scenario = Scenario::new(Workload::Aes, 64, 4);
        scenario.soc = SocConfig::default().with_engines(2).with_threads(threads);
        run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds")
    });
}

#[test]
fn mesh16_runs_are_thread_invariant() {
    assert_thread_invariant("mesh16", |threads| {
        let (mut scenario, spec) = mesh16_scenario(64, 4);
        scenario.soc = scenario.soc.clone().with_threads(threads);
        run_cohort_sharded(&scenario, &spec).expect("pool binds")
    });
}

#[test]
fn chaos_runs_are_thread_invariant() {
    // Stall + latency spike + page storm: every staged fault-flip path,
    // with the full recovery stack (watchdog, swap store, retry) armed.
    let plan = FaultPlan::parse("stall@2000:1500;spike@5000:3000:4;storm@9000:2")
        .expect("valid fault spec");
    assert_thread_invariant("chaos", |threads| {
        let mut scenario = Scenario::new(Workload::Sha, 64, 8);
        scenario.soc = SocConfig::default()
            .with_faults(plan.clone())
            .with_threads(threads);
        run_cohort_chaos(&scenario)
    });
}

#[test]
fn failover_runs_are_thread_invariant() {
    // Default plan: fail-stop of the mid-chain SHA engine at cycle 20k,
    // exactly-once queue migration onto the cold spare.
    assert_thread_invariant("chain-failover", |threads| {
        let mut scenario = Scenario::new(Workload::Sha, 64, 8);
        scenario.soc = SocConfig::default().with_threads(threads);
        run_cohort_chain_failover(&scenario)
    });
}
