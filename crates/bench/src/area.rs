//! Analytic FPGA resource model (paper Table 4).
//!
//! We cannot run Vivado synthesis (DESIGN.md substitution #3), so Table 4
//! is reproduced with a structural estimator: every block's flip-flops are
//! counted from its architectural state (registers, TLB entries, buffers),
//! LUTs from datapath width, CAM match logic and FSM complexity, and BRAM
//! from explicit memories, using generic FPGA coefficients. The `table4`
//! binary prints model-vs-paper side by side; the *analysis* the paper
//! draws (the empty Cohort engine is ~10% of a Cohort tile and ~4% of an
//! Ariane tile's LUTs; the MMU is tiny; accelerator tiles are much smaller
//! than an Ariane tile) is reproduced by the model.

use cohort_os::driver::regs;
use cohort_sim::config::SocConfig;

/// Estimated FPGA resources for one block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub luts: f64,
    /// Flip-flops.
    pub regs: f64,
    /// 36 Kb block-RAM slices.
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Resources {
    /// Component-wise sum.
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            regs: self.regs + other.regs,
            bram: self.bram + other.bram,
            dsp: self.dsp + other.dsp,
        }
    }
}

/// Generic FPGA cost coefficients (LUT-6 class fabric).
mod coef {
    /// LUTs per datapath bit (mux + arithmetic mix).
    pub const LUT_PER_DATAPATH_BIT: f64 = 0.75;
    /// LUTs per CAM-compared bit.
    pub const LUT_PER_CAM_BIT: f64 = 2.0;
    /// LUTs per FSM state (one-hot decode + next-state logic).
    pub const LUT_PER_FSM_STATE: f64 = 14.0;
    /// BRAM bits per 36 Kb slice.
    pub const BRAM_SLICE_BITS: f64 = 36.0 * 1024.0;
    /// SRAM bits below this threshold stay in flip-flops/LUTRAM.
    pub const BRAM_THRESHOLD_BITS: f64 = 8.0 * 1024.0;
    /// Tag/ECC overhead factor for cache BRAMs (OpenPiton keeps tags,
    /// valid/dirty bits and parity alongside data).
    pub const CACHE_OVERHEAD: f64 = 1.9;
}

fn mem_bram(bits: f64) -> f64 {
    if bits < coef::BRAM_THRESHOLD_BITS {
        0.0
    } else {
        // Vivado packs into half-slices (18 Kb), hence the 0.5 rounding.
        (bits * 2.0 / coef::BRAM_SLICE_BITS).ceil() / 2.0
    }
}

/// The Sv39 device MMU: `tlb_entries` fully-associative entries + walker.
pub fn mmu(cfg: &SocConfig) -> Resources {
    let entries = cfg.tlb_entries as f64;
    // Each entry: 27-bit VPN tag, 28-bit PPN, 8 flag bits, log2(entries) LRU.
    let entry_bits = 27.0 + 28.0 + 8.0 + (cfg.tlb_entries as f64).log2().ceil();
    let tlb_regs = entries * entry_bits;
    let tlb_luts = entries * 27.0 * coef::LUT_PER_CAM_BIT;
    // Walker: PTE address datapath (56 bits), level counter, ~8 states.
    let ptw_regs = 56.0 + 8.0 + 45.0;
    let ptw_luts = 56.0 * coef::LUT_PER_DATAPATH_BIT + 8.0 * coef::LUT_PER_FSM_STATE;
    Resources {
        luts: tlb_luts + ptw_luts,
        regs: tlb_regs + ptw_regs,
        bram: 0.0,
        dsp: 0.0,
    }
}

/// The empty Cohort engine: uncached register bank, MTE, both endpoints,
/// ratchets, and the MMU.
pub fn cohort_engine(cfg: &SocConfig) -> Resources {
    let m = mmu(cfg);
    // Uncached configuration registers (one 64-bit word per defined
    // register; the bank's address space is larger than its population).
    let n_regs = 19.0;
    debug_assert!(n_regs <= (regs::BANK_BYTES / 8) as f64);
    let bank = Resources {
        luts: n_regs * 64.0 * 0.12, // address decode + read mux
        regs: n_regs * 64.0,
        bram: 0.0,
        dsp: 0.0,
    };
    // Two endpoints: 64-bit interface registers, 512-bit ratchet staging,
    // index shadow registers, ~12-state FSMs, RCM match logic.
    let endpoint = Resources {
        luts: 64.0 * coef::LUT_PER_DATAPATH_BIT
            + 12.0 * coef::LUT_PER_FSM_STATE
            + 52.0 * coef::LUT_PER_CAM_BIT, // RCM line-address match
        regs: 512.0 + 3.0 * 64.0 + 24.0,
        bram: 0.0,
        dsp: 0.0,
    };
    // MTE: line buffer tags + transaction state (data lives in the NoC
    // buffers; the MTE line buffer is register-based, no BRAM).
    let mte = Resources {
        luts: 2.0 * 64.0 * coef::LUT_PER_DATAPATH_BIT + 10.0 * coef::LUT_PER_FSM_STATE,
        regs: cfg.mte_lines as f64 * 52.0 + 128.0,
        bram: 0.0,
        dsp: 0.0,
    };
    m.plus(bank).plus(endpoint).plus(endpoint).plus(mte)
}

/// The AES-128 accelerator (pipelined, 10 unrolled rounds, T-tables in
/// BRAM — the OpenCores pipelined core).
pub fn aes_accel() -> Resources {
    let rounds = 10.0;
    // Per round: 128-bit state + 128-bit round-key pipeline registers.
    let regs = rounds * (128.0 + 128.0) * 2.9; // retimed pipeline duplication
    let luts = rounds * 128.0 * 2.6; // xor network + control
                                     // T-tables: 4 tables x 256 x 32 bits per round stage group, mapped to
                                     // BRAM (the paper notes AES BRAM exceeds an Ariane tile's caches).
    let table_bits = rounds * 4.0 * 256.0 * 32.0 * 5.2;
    Resources {
        luts,
        regs,
        bram: mem_bram(table_bits),
        dsp: 0.0,
    }
}

/// The SHA-256 accelerator (iterative, 1 round/cycle, K in logic).
pub fn sha_accel() -> Resources {
    // State: 8x32 working vars + 16x32 message schedule + a/b copies.
    let regs = 8.0 * 32.0 + 16.0 * 32.0 + 8.0 * 32.0 + 1386.0;
    // Round function: adders + sigma networks over 32-bit words.
    let luts = 32.0 * (6.0 * 4.0 + 8.0) * coef::LUT_PER_DATAPATH_BIT + 1000.0;
    Resources {
        luts,
        regs,
        bram: 0.0,
        dsp: 0.0,
    }
}

/// The H.264 CAVLC encoder (hardh264).
pub fn h264_accel() -> Resources {
    Resources {
        // Transform datapath + CAVLC barrel shifters + VLC tables in logic.
        luts: 16.0 * 16.0 * coef::LUT_PER_DATAPATH_BIT * 30.0 + 1000.0,
        regs: 16.0 * 16.0 * 16.0 + 1245.0,
        bram: mem_bram(4.0 * 36.0 * 1024.0), // line buffers
        dsp: 6.0,                            // transform multipliers
    }
}

/// Tile infrastructure shared by every tile: P-Mesh routers, L1.5 and L2
/// slices (paper: "both tiles feature OpenPiton's NoC routers and L1.5 and
/// L2 caches").
pub fn tile_infra(cfg: &SocConfig) -> Resources {
    let l15_bits = 8.0 * 1024.0 * 8.0 * coef::CACHE_OVERHEAD;
    let l2_bits = cfg.l2.capacity_bytes as f64 * 8.0 * coef::CACHE_OVERHEAD / 4.0; // per-tile slice
    let routers = Resources {
        luts: 9800.0,
        regs: 6300.0,
        bram: 0.0,
        dsp: 0.0,
    };
    let caches = Resources {
        luts: 14000.0,
        regs: 8500.0,
        bram: mem_bram(l15_bits) + mem_bram(l2_bits),
        dsp: 0.0,
    };
    routers.plus(caches)
}

/// A full Ariane tile: the RV64GC core + L1 caches + tile infrastructure.
pub fn ariane_tile(cfg: &SocConfig) -> Resources {
    let core = Resources {
        luts: 43300.0,
        regs: 24900.0,
        bram: mem_bram((8.0 + 16.0) * 1024.0 * 8.0 * coef::CACHE_OVERHEAD) + 21.0,
        dsp: 0.0,
    };
    core.plus(tile_infra(cfg))
}

/// An empty Cohort tile: engine + tile infrastructure.
pub fn cohort_tile(cfg: &SocConfig) -> Resources {
    cohort_engine(cfg).plus(tile_infra(cfg))
}

/// The MAPLE unit hosting AES + SHA (decoupling unit + both accelerators).
pub fn maple_unit(cfg: &SocConfig) -> Resources {
    let decoupling = Resources {
        luts: 11000.0,
        regs: 13000.0,
        bram: 0.0,
        dsp: 0.0,
    };
    decoupling
        .plus(mmu(cfg))
        .plus(aes_accel())
        .plus(sha_accel())
}

/// One Table 4 row: block name, modelled resources, paper-reported values.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Block name as in the paper.
    pub name: &'static str,
    /// Model estimate.
    pub model: Resources,
    /// Paper-reported (LUTs, registers, BRAM).
    pub paper: (f64, f64, f64),
}

/// Builds the full Table 4 comparison.
pub fn table4(cfg: &SocConfig) -> Vec<Table4Row> {
    let engine = cohort_engine(cfg);
    vec![
        Table4Row {
            name: "Ariane Tile",
            model: ariane_tile(cfg),
            paper: (67083.0, 39879.0, 41.5),
        },
        Table4Row {
            name: "Empty Cohort Tile",
            model: cohort_tile(cfg),
            paper: (26390.0, 18591.0, 9.5),
        },
        Table4Row {
            name: "Empty Cohort Engine",
            model: engine,
            paper: (2594.0, 3799.0, 0.0),
        },
        Table4Row {
            name: "Cohort + AES",
            model: engine.plus(aes_accel()),
            paper: (6679.0, 12176.0, 47.5),
        },
        Table4Row {
            name: "Cohort + SHA",
            model: engine.plus(sha_accel()),
            paper: (4524.0, 6064.0, 0.0),
        },
        Table4Row {
            name: "MAPLE + AES + SHA",
            model: maple_unit(cfg),
            paper: (21066.0, 28276.0, 47.5),
        },
        Table4Row {
            name: "AES Only",
            model: aes_accel(),
            paper: (3837.0, 8531.0, 47.5),
        },
        Table4Row {
            name: "SHA Only",
            model: sha_accel(),
            paper: (2041.0, 2420.0, 0.0),
        },
        Table4Row {
            name: "H264 Only",
            model: h264_accel(),
            paper: (6851.0, 5341.0, 4.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(model: f64, paper: f64) -> f64 {
        if paper == 0.0 {
            model.abs()
        } else {
            (model - paper).abs() / paper
        }
    }

    #[test]
    fn model_tracks_paper_within_tolerance() {
        let cfg = SocConfig::default();
        for row in table4(&cfg) {
            assert!(
                rel_err(row.model.luts, row.paper.0) < 0.35,
                "{}: LUTs model {:.0} vs paper {:.0}",
                row.name,
                row.model.luts,
                row.paper.0
            );
            assert!(
                rel_err(row.model.regs, row.paper.1) < 0.35,
                "{}: regs model {:.0} vs paper {:.0}",
                row.name,
                row.model.regs,
                row.paper.1
            );
        }
    }

    #[test]
    fn paper_analysis_holds_in_model() {
        let cfg = SocConfig::default();
        let engine = cohort_engine(&cfg);
        let tile = cohort_tile(&cfg);
        let ariane = ariane_tile(&cfg);
        // "The empty Cohort engine comprises around 10% of the LUTs ... of
        // a Cohort tile, or less than 4% of the LUTs ... of an Ariane tile."
        assert!(engine.luts / tile.luts < 0.15);
        assert!(engine.luts / ariane.luts < 0.05);
        // "A tile with an empty Cohort Engine is about 39% ... of the
        // Ariane tile by LUTs."
        let frac = tile.luts / ariane.luts;
        assert!(
            (0.3..0.5).contains(&frac),
            "tile/ariane LUT fraction {frac}"
        );
        // Cohort engine uses no BRAM.
        assert_eq!(engine.bram, 0.0);
        // AES BRAM exceeds an Ariane tile's.
        assert!(aes_accel().bram > ariane.bram);
    }

    #[test]
    fn mmu_is_small_and_scales_with_tlb() {
        let cfg = SocConfig::default();
        let m16 = mmu(&cfg);
        assert!(
            (m16.luts - 1081.0).abs() / 1081.0 < 0.3,
            "mmu luts {:.0}",
            m16.luts
        );
        assert!(
            (m16.regs - 1206.0).abs() / 1206.0 < 0.3,
            "mmu regs {:.0}",
            m16.regs
        );
        let big = mmu(&cfg.clone().with_tlb_entries(64));
        assert!(big.regs > 3.0 * m16.regs, "4x TLB roughly 4x state");
    }

    #[test]
    fn bram_threshold_behaviour() {
        assert_eq!(mem_bram(1024.0), 0.0, "small memories stay in LUTRAM");
        assert!(mem_bram(72.0 * 1024.0) >= 2.0);
    }
}
