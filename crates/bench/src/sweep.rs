//! Memoized benchmark execution across figures.

use cohort::scenarios::{
    run_cohort, run_cohort_sharded, run_dma, run_mmio, RunResult, Scenario, ShardSpec, Workload,
};
use cohort_os::driver::Placement;
use cohort_sim::config::SocConfig;
use cohort_sim::dram::DramConfig;
use std::collections::HashMap;

/// Communication API under test (Table 2 "communication modes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Cohort engine + SPSC queues, with a batching factor.
    Cohort {
        /// Pointer-update batching factor.
        batch: u64,
    },
    /// MMIO word-at-a-time baseline.
    Mmio,
    /// Coherent DMA baseline.
    Dma,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Cohort { batch } => write!(f, "Cohort batch={batch}"),
            Mode::Mmio => f.write_str("MMIO"),
            Mode::Dma => f.write_str("DMA-Coherent"),
        }
    }
}

/// A memoizing runner: each `(workload, mode, queue_size)` configuration is
/// simulated once and the [`RunResult`] shared between figures.
#[derive(Default)]
pub struct Sweep {
    cache: HashMap<(Workload, Mode, u64), RunResult>,
    #[allow(clippy::type_complexity)]
    shard_cache: HashMap<(Workload, usize, Placement, bool, u64, Option<DramConfig>), RunResult>,
    /// If true, print one progress line per fresh simulation.
    pub verbose: bool,
}

impl Sweep {
    /// Creates an empty sweep cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sweep cache that logs each fresh simulation.
    pub fn new_verbose() -> Self {
        Self {
            verbose: true,
            ..Self::default()
        }
    }

    /// Runs (or recalls) one configuration.
    ///
    /// # Panics
    /// Panics if the simulated output fails end-to-end verification — a
    /// benchmark number is only reported for runs whose accelerator output
    /// matched the host-side reference.
    pub fn run(&mut self, workload: Workload, mode: Mode, queue_size: u64) -> &RunResult {
        let key = (workload, mode, queue_size);
        if !self.cache.contains_key(&key) {
            if self.verbose {
                eprintln!("  simulating {workload:?} {mode} queue={queue_size} ...");
            }
            let scenario = match mode {
                Mode::Cohort { batch } => Scenario::new(workload, queue_size, batch),
                _ => Scenario::new(workload, queue_size, 64),
            };
            let result = match mode {
                Mode::Cohort { .. } => run_cohort(&scenario),
                Mode::Mmio => run_mmio(&scenario),
                Mode::Dma => run_dma(&scenario),
            };
            assert!(
                result.verified,
                "unverified run: {workload:?} {mode} queue={queue_size}"
            );
            self.cache.insert(key, result);
        }
        &self.cache[&key]
    }

    /// Runs (or recalls) one sharded configuration: the logical stream
    /// split over `shards` engines under the given placement policy, with
    /// uniform or skewed element runs.
    ///
    /// # Panics
    /// Panics if the pool cannot bind (the shard count is validated
    /// upstream by callers with user input) or the run fails end-to-end
    /// verification.
    pub fn run_sharded(
        &mut self,
        workload: Workload,
        shards: usize,
        placement: Placement,
        skewed: bool,
        queue_size: u64,
    ) -> &RunResult {
        self.run_sharded_mem(workload, shards, placement, skewed, queue_size, None)
    }

    /// [`Sweep::run_sharded`] with an explicit memory system: `dram: None`
    /// is the flat-latency baseline, `Some(cfg)` enables the bank/channel
    /// contention model. The memory system is part of the memoization key,
    /// so flat and contended runs of the same geometry never alias.
    ///
    /// # Panics
    /// Same as [`Sweep::run_sharded`].
    pub fn run_sharded_mem(
        &mut self,
        workload: Workload,
        shards: usize,
        placement: Placement,
        skewed: bool,
        queue_size: u64,
        dram: Option<&DramConfig>,
    ) -> &RunResult {
        let key = (
            workload,
            shards,
            placement,
            skewed,
            queue_size,
            dram.cloned(),
        );
        if !self.shard_cache.contains_key(&key) {
            if self.verbose {
                eprintln!(
                    "  simulating {workload:?} sharded n={shards} {placement} skew={skewed} queue={queue_size} mem={} ...",
                    if dram.is_some() { "dram" } else { "flat" }
                );
            }
            let mut scenario = Scenario::new(workload, queue_size, crate::params::PEAK_BATCH);
            scenario.soc = SocConfig::default().with_engines(shards);
            scenario.soc.dram = dram.cloned();
            let spec = ShardSpec::new(shards)
                .with_placement(placement)
                .with_skew(skewed);
            let result = run_cohort_sharded(&scenario, &spec).expect("pool binds");
            assert!(
                result.verified,
                "unverified sharded run: {workload:?} n={shards} {placement} queue={queue_size}"
            );
            self.shard_cache.insert(key.clone(), result);
        }
        &self.shard_cache[&key]
    }

    /// Latency in kilocycles (the Fig. 8/9 y-axis).
    pub fn kilocycles(&mut self, workload: Workload, mode: Mode, queue_size: u64) -> f64 {
        self.run(workload, mode, queue_size).cycles as f64 / 1000.0
    }

    /// Speedup of Cohort (given batch) over a baseline mode.
    pub fn speedup(
        &mut self,
        workload: Workload,
        batch: u64,
        baseline: Mode,
        queue_size: u64,
    ) -> f64 {
        let base = self.run(workload, baseline, queue_size).cycles as f64;
        let cohort = self
            .run(workload, Mode::Cohort { batch }, queue_size)
            .cycles as f64;
        base / cohort
    }

    /// Within-Cohort improvement of `batch` over the smallest batch.
    pub fn batching_gain(&mut self, workload: Workload, batch: u64, queue_size: u64) -> f64 {
        let small = crate::params::min_batch(workload);
        let s = self
            .run(workload, Mode::Cohort { batch: small }, queue_size)
            .cycles as f64;
        let b = self
            .run(workload, Mode::Cohort { batch }, queue_size)
            .cycles as f64;
        s / b
    }

    /// Looks up one observability counter (by component prefix and name)
    /// from a memoized run; missing counters read as zero.
    pub fn stat(
        &mut self,
        workload: Workload,
        mode: Mode,
        queue_size: u64,
        comp_prefix: &str,
        name: &str,
    ) -> u64 {
        self.run(workload, mode, queue_size)
            .counter(comp_prefix, name)
            .unwrap_or(0)
    }

    /// Runs one configuration across many seeds on a pool of host
    /// threads, one full simulation per seed. Seeds are claimed from a
    /// shared atomic cursor, so the pool load-balances; results come
    /// back in seed order regardless of which thread ran which seed.
    /// Every run is end-to-end verified, same as [`Sweep::run`].
    ///
    /// This parallelism is *across* simulations and composes with the
    /// per-simulation component parallelism in
    /// [`cohort_sim::config::SocConfig::threads`]: sweeps of many small
    /// runs scale better here, single huge runs scale better there.
    ///
    /// # Panics
    /// Panics if any seed's run fails verification or a worker panics.
    pub fn run_seeds(
        workload: Workload,
        mode: Mode,
        queue_size: u64,
        seeds: &[u64],
        host_threads: usize,
    ) -> Vec<RunResult> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let threads = host_threads.clamp(1, seeds.len().max(1));
        let next = AtomicUsize::new(0);
        let out: Vec<Mutex<Option<RunResult>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = seeds.get(i) else { break };
                    let mut scenario = match mode {
                        Mode::Cohort { batch } => Scenario::new(workload, queue_size, batch),
                        _ => Scenario::new(workload, queue_size, 64),
                    };
                    scenario.seed = seed;
                    let result = match mode {
                        Mode::Cohort { .. } => run_cohort(&scenario),
                        Mode::Mmio => run_mmio(&scenario),
                        Mode::Dma => run_dma(&scenario),
                    };
                    assert!(
                        result.verified,
                        "unverified run: {workload:?} {mode} queue={queue_size} seed={seed:#x}"
                    );
                    *out[i].lock().unwrap() = Some(result);
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().unwrap().expect("every seed simulated"))
            .collect()
    }

    /// IPC speedup of Cohort over a baseline (Figs. 10/11).
    pub fn ipc_speedup(
        &mut self,
        workload: Workload,
        batch: u64,
        baseline: Mode,
        queue_size: u64,
    ) -> f64 {
        let c = self.run(workload, Mode::Cohort { batch }, queue_size).ipc();
        let b = self.run(workload, baseline, queue_size).ipc();
        c / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_identical_results() {
        let mut sweep = Sweep::new();
        let a = sweep
            .run(Workload::Sha, Mode::Cohort { batch: 8 }, 64)
            .cycles;
        let b = sweep
            .run(Workload::Sha, Mode::Cohort { batch: 8 }, 64)
            .cycles;
        assert_eq!(a, b);
        assert_eq!(sweep.cache.len(), 1);
    }

    #[test]
    fn parallel_seed_sweep_matches_serial() {
        let seeds = [0x5eed, 0xfeed, 0xdead_beef];
        let serial = Sweep::run_seeds(Workload::Aes, Mode::Cohort { batch: 8 }, 64, &seeds, 1);
        let parallel = Sweep::run_seeds(Workload::Aes, Mode::Cohort { batch: 8 }, 64, &seeds, 3);
        assert_eq!(serial.len(), seeds.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.checksum, p.checksum);
            assert_eq!(s.stats_json, p.stats_json);
        }
    }

    #[test]
    fn speedups_are_positive_and_verified() {
        let mut sweep = Sweep::new();
        let s = sweep.speedup(Workload::Sha, 64, Mode::Mmio, 128);
        assert!(s > 1.0, "Cohort must beat MMIO: {s}");
    }
}
