//! Simulator-throughput benchmark for the parallel step kernel.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin simperf -- \
//!     [--queue N] [--threads LIST] [--reps N] [--out FILE] [--check]
//! ```
//!
//! Runs the sharded-AES scenario and the 16-core big.LITTLE mesh at each
//! host-thread count in LIST (default `1,2,4,8`), measures sim-cycles per
//! wall-second, and writes a markdown report (default
//! `results/simperf.md`). Every multi-threaded run's checksum is asserted
//! bit-identical to the single-threaded run of the same scenario — the
//! determinism contract, enforced on every invocation. Each case also runs
//! one `Lookahead::Force1` reference leg: its checksum and cycle count
//! must match the batched (`Auto`) runs exactly, and the barrier-activation
//! drop it reveals is reported in the `batch` column.
//!
//! `--check` is the CI smoke mode: a small queue, threads `1,2`, one rep,
//! no report unless `--out` is given; exit status is the contract — which
//! in this mode additionally requires the sharded-AES case to batch at
//! least 3x fewer barriers than forced cycle-by-cycle stepping.

use cohort::scenarios::{
    mesh16_scenario, run_cohort_sharded, RunResult, Scenario, ShardSpec, Workload,
};
use cohort_sim::config::{Lookahead, SocConfig};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: simperf [--queue N] [--threads LIST] [--reps N] [--out FILE] [--check]\n\
         \u{20}        LIST is comma-separated host-thread counts, e.g. 1,2,4,8"
    );
    std::process::exit(2)
}

/// One measured configuration: the run result plus the best wall time
/// over the configured repetitions.
struct Measured {
    result: RunResult,
    best_wall: f64,
}

/// A named scenario constructor, so both benchmarks share the measure /
/// report / assert pipeline.
struct Case {
    name: &'static str,
    scenario: Scenario,
    spec: ShardSpec,
}

fn cases(queue: u64) -> Vec<Case> {
    let mut sharded = Scenario::new(Workload::Aes, queue, 8);
    sharded.soc = SocConfig::default().with_engines(4);
    let (mesh, mesh_spec) = mesh16_scenario(queue, 8);
    let mut out = vec![
        Case {
            name: "sharded-aes (4 engines)",
            scenario: sharded,
            spec: ShardSpec::new(4),
        },
        Case {
            name: "mesh16 big.LITTLE",
            scenario: mesh,
            spec: mesh_spec,
        },
    ];
    // Batching pays off in latency-bound phases (accelerator compute
    // windows, drains), which big queues hide behind producer
    // saturation — so the report always includes a small-queue variant
    // of the sharded case to show that regime. At `--check` the main
    // case already runs at queue <= 256 and this would be a duplicate.
    if queue > 256 {
        let mut small = Scenario::new(Workload::Aes, 256, 8);
        small.soc = SocConfig::default().with_engines(4);
        out.push(Case {
            name: "sharded-aes latency-bound (queue 256)",
            scenario: small,
            spec: ShardSpec::new(4),
        });
    }
    out
}

fn measure(case: &Case, threads: usize, reps: usize, lookahead: Lookahead) -> Measured {
    let mut scenario = case.scenario.clone();
    scenario.soc = scenario
        .soc
        .clone()
        .with_threads(threads)
        .with_lookahead(lookahead);
    let mut best_wall = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = run_cohort_sharded(&scenario, &case.spec).unwrap_or_else(|e| {
            eprintln!("simperf: {e}");
            std::process::exit(2);
        });
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        assert!(
            r.verified,
            "unverified run: {} threads={threads}",
            case.name
        );
        result = Some(r);
    }
    Measured {
        result: result.expect("at least one rep"),
        best_wall,
    }
}

fn main() {
    let mut queue = 2048u64;
    let mut thread_list = vec![1usize, 2, 4, 8];
    let mut reps = 3usize;
    let mut out: Option<String> = Some("results/simperf.md".to_string());
    let mut check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut out_explicit = false;
    let mut threads_explicit = false;
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--queue" => queue = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                thread_list = value()
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if thread_list.is_empty() {
                    usage()
                }
                threads_explicit = true;
            }
            "--reps" => reps = value().parse().unwrap_or_else(|_| usage()),
            "--out" => {
                out = Some(value());
                out_explicit = true;
            }
            "--check" => check = true,
            _ => usage(),
        }
    }
    if check {
        queue = queue.min(256);
        // CI runners with enough cores pass an explicit list (e.g.
        // `--threads 1,2,4`) to exercise real parallel legs; the default
        // smoke matrix stays the cheap 1-vs-2 contract check.
        if !threads_explicit {
            thread_list = vec![1, 2];
        }
        reps = 1;
        if !out_explicit {
            out = None;
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut report = String::new();
    report.push_str(&cohort_bench::report::host_header());
    report.push_str("# Simulator throughput (`simperf`)\n\n");
    report.push_str(&format!(
        "Host: {host_cores} CPU core(s) visible to the process. Queue size {queue}, \
         best of {reps} rep(s) per cell. Checksums are asserted bit-identical across \
         all thread counts on every run of this tool.\n\n"
    ));
    if host_cores < *thread_list.iter().max().unwrap_or(&1) {
        report.push_str(&format!(
            "> **Caveat:** this host exposes only {host_cores} core(s), so thread counts \
             above that measure synchronisation overhead, not parallel speedup — the \
             workers time-slice one CPU. Re-run on a multi-core host for speedup numbers; \
             the determinism columns are meaningful regardless.\n\n"
        ));
    }

    let mut all_ok = true;
    for case in cases(queue) {
        println!("== {} ==", case.name);
        report.push_str(&format!("## {}\n\n", case.name));
        report.push_str(
            "| threads | sim cycles | wall (ms) | Msim-cycles/s | speedup vs 1T | batch | checksum |\n\
             |---:|---:|---:|---:|---:|---:|---|\n",
        );
        // Forced cycle-by-cycle reference: the batching baseline and the
        // strongest equivalence witness (identical checksum AND cycles).
        let f1 = measure(&case, 1, reps, Lookahead::Force1);
        let mut base: Option<Measured> = None;
        for &t in &thread_list {
            let m = measure(&case, t, reps, Lookahead::Auto);
            let rate = m.result.cycles as f64 / m.best_wall / 1e6;
            let speedup = base.as_ref().map_or(1.0, |b| b.best_wall / m.best_wall);
            // Mean cycles simulated per barrier activation (1.0 = no
            // batching): stepped + skipped cycles over stepped cycles.
            let batch = (m.result.barrier_activations + m.result.ff_cycles) as f64
                / m.result.barrier_activations.max(1) as f64;
            let mut ok = base
                .as_ref()
                .is_none_or(|b| b.result.checksum == m.result.checksum);
            if f1.result.checksum != m.result.checksum || f1.result.cycles != m.result.cycles {
                ok = false;
                eprintln!(
                    "simperf: BATCHING VIOLATION: {} threads={t} (cycles {}, checksum {:#018x}) \
                     != forced-1 (cycles {}, checksum {:#018x})",
                    case.name,
                    m.result.cycles,
                    m.result.checksum,
                    f1.result.cycles,
                    f1.result.checksum
                );
            }
            if !ok {
                all_ok = false;
                eprintln!(
                    "simperf: DETERMINISM VIOLATION: {} threads={t} checksum {:#018x} != 1T {:#018x}",
                    case.name,
                    m.result.checksum,
                    base.as_ref().map_or(f1.result.checksum, |b| b.result.checksum)
                );
            }
            println!(
                "  threads={t}: {} cycles in {:.1} ms ({:.2} Mcyc/s, {:.2}x vs 1T, batch {batch:.1}) checksum={:#018x}{}",
                m.result.cycles,
                m.best_wall * 1e3,
                rate,
                speedup,
                m.result.checksum,
                if ok { "" } else { "  <-- MISMATCH" }
            );
            report.push_str(&format!(
                "| {t} | {} | {:.1} | {:.2} | {speedup:.2}x | {batch:.1} | `{:#018x}`{} |\n",
                m.result.cycles,
                m.best_wall * 1e3,
                rate,
                m.result.checksum,
                if ok { "" } else { " **MISMATCH**" }
            ));
            if base.is_none() {
                base = Some(m);
            }
        }
        let auto = base.as_ref().expect("at least one thread count");
        let barrier_drop =
            f1.result.barrier_activations as f64 / auto.result.barrier_activations.max(1) as f64;
        let wall_gain = f1.best_wall / auto.best_wall;
        println!(
            "  batching: {} -> {} barriers ({barrier_drop:.1}x fewer), \
             1T wall {:.1} ms -> {:.1} ms ({wall_gain:.2}x)",
            f1.result.barrier_activations,
            auto.result.barrier_activations,
            f1.best_wall * 1e3,
            auto.best_wall * 1e3,
        );
        report.push_str(&format!(
            "\nLookahead batching vs forced cycle-by-cycle (1 thread): \
             {} -> {} barrier activations (**{barrier_drop:.1}x** fewer), \
             {} cycles fast-forwarded, wall {:.1} ms -> {:.1} ms \
             ({wall_gain:.2}x). Cycles and checksums are bit-identical \
             between the two modes.\n\n",
            f1.result.barrier_activations,
            auto.result.barrier_activations,
            auto.result.ff_cycles,
            f1.best_wall * 1e3,
            auto.best_wall * 1e3,
        ));
        if check && case.name.starts_with("sharded-aes") && barrier_drop < 3.0 {
            all_ok = false;
            eprintln!(
                "simperf: BATCHING REGRESSION: {} barrier activations dropped only \
                 {barrier_drop:.2}x vs forced-1 (need >= 3x)",
                case.name
            );
        }
    }

    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, &report).unwrap_or_else(|e| {
            eprintln!("simperf: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("report: wrote {path}");
    }
    if !all_ok {
        eprintln!("simperf: FAILED — parallel runs diverged from single-threaded results");
        std::process::exit(1);
    }
    println!("determinism: all thread counts bit-identical");
}
