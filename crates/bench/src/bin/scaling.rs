//! Regenerates only the shard-scaling figure (`results/scaling.md`) — the
//! multi-engine counterpart of the `all` binary, cheap enough to rerun
//! after driver or placement changes without resimulating Figs. 8-11.

use cohort_bench::report;
use cohort_bench::sweep::Sweep;
use std::fs;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    fs::create_dir_all(&out_dir).expect("create results dir");
    let mut sweep = Sweep::new_verbose();
    let path = format!("{out_dir}/scaling.md");
    fs::write(
        &path,
        format!(
            "# Shard scaling — multi-engine queue sharding\n\n{}",
            report::scaling_figure(&mut sweep)
        ),
    )
    .expect("write result");
    println!("wrote {path}");
}
