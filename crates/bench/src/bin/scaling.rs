//! Regenerates the shard-scaling figures (`results/scaling.md` and
//! `results/scaling_dram.md`) — the multi-engine counterpart of the `all`
//! binary, cheap enough to rerun after driver, placement or memory-model
//! changes without resimulating Figs. 8-11.
//!
//! Both reports start with the machine-readable `<!-- host_cores=N -->`
//! header so a snapshot produced in a small container is detectable.

use cohort_bench::report;
use cohort_bench::sweep::Sweep;
use std::fs;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    fs::create_dir_all(&out_dir).expect("create results dir");
    let mut sweep = Sweep::new_verbose();

    let path = format!("{out_dir}/scaling.md");
    fs::write(
        &path,
        format!(
            "{}# Shard scaling — multi-engine queue sharding\n\n{}",
            report::host_header(),
            report::scaling_figure(&mut sweep)
        ),
    )
    .expect("write result");
    println!("wrote {path}");

    let path = format!("{out_dir}/scaling_dram.md");
    fs::write(
        &path,
        format!(
            "{}# Shard scaling under DRAM contention — where the knee is\n\n\
             The flat-latency memory system (every L2 miss costs the same, no matter\n\
             how many are in flight) can never saturate, so its shard sweep keeps\n\
             gaining with every doubling. With the bank/channel contention model\n\
             enabled (`--dram`), the same sweep stops scaling at the bandwidth knee:\n\
             the channel queue fills, fills get rejected and retried, directory MSHRs\n\
             run out, and the stall propagates back through the cores' MSHRs.\n\n{}",
            report::host_header(),
            report::scaling_dram_figure(&mut sweep)
        ),
    )
    .expect("write result");
    println!("wrote {path}");
}
