//! Regenerates paper Table 3: peak speedups for Cohort AES and SHA.
use cohort::scenarios::Workload;
use cohort_bench::report::{paper_table3, table3_block};
use cohort_bench::sweep::Sweep;

fn main() {
    let mut sweep = Sweep::new_verbose();
    println!("# Table 3 — Peak speedups (Cohort batch = 64)\n");
    println!("## SHA speedup\n");
    println!(
        "{}",
        table3_block(
            &mut sweep,
            Workload::Sha,
            &paper_table3::SHA_MMIO,
            &paper_table3::SHA_DMA,
            &paper_table3::SHA_BATCHING,
        )
    );
    println!("## AES speedup\n");
    println!(
        "{}",
        table3_block(
            &mut sweep,
            Workload::Aes,
            &paper_table3::AES_MMIO,
            &paper_table3::AES_DMA,
            &paper_table3::AES_BATCHING,
        )
    );
}
