//! Ablation studies of the Cohort engine's design parameters (DESIGN.md
//! §6): the RCM backoff window, the engine TLB size, page-mapping policy,
//! and the communication-only floor measured with the null accelerator.
//!
//! Writes `results/ablation.md` (or the directory given as the first
//! argument).

use cohort::scenarios::{run_cohort, CustomRun, Scenario, Workload};
use cohort_accel::nullfifo::NullFifo;
use cohort_os::addrspace::MapPolicy;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let mut md = String::from("# Ablation studies\n");

    // 1. RCM backoff window (paper §4.2.3: "optimised to wait a
    //    configurable period").
    md.push_str("\n## RCM backoff window (SHA, queue 1024)\n\n");
    md.push_str("| Backoff (cycles) | batch=8 kcycles | batch=64 kcycles |\n|---|---|---|\n");
    for backoff in [0u64, 100, 300, 700, 1500, 3000] {
        let mut row = format!("| {backoff} |");
        for batch in [8u64, 64] {
            let mut s = Scenario::new(Workload::Sha, 1024, batch);
            s.backoff = backoff;
            let r = run_cohort(&s);
            assert!(r.verified);
            row.push_str(&format!(" {:.1} |", r.cycles as f64 / 1000.0));
        }
        md.push_str(&row);
        md.push('\n');
    }
    md.push_str(
        "\nSmall batches are dominated by per-publication reaction chains, so the\n\
         backoff moves them strongly; batch=64 amortises it.\n",
    );

    // 2. Engine TLB size (paper §6.3 discusses the 16-entry MMU).
    md.push_str("\n## Engine TLB size (SHA, queue 4096)\n\n");
    md.push_str("| TLB entries | kcycles | engine TLB misses |\n|---|---|---|\n");
    for entries in [1usize, 2, 4, 8, 16, 32] {
        let mut s = Scenario::new(Workload::Sha, 4096, 64);
        s.soc.tlb_entries = entries;
        let r = run_cohort(&s);
        assert!(r.verified);
        md.push_str(&format!(
            "| {entries} | {:.1} | {} |\n",
            r.cycles as f64 / 1000.0,
            r.counter("engine", "tlb_misses").unwrap_or(0)
        ));
    }

    // 3. Mapping policy: eager vs demand faults vs huge pages.
    md.push_str("\n## Mapping policy (SHA, queue 2048, TLB 4)\n\n");
    md.push_str("| Policy | kcycles | faults | TLB misses |\n|---|---|---|---|\n");
    for (name, policy) in [
        ("eager 4 KiB", MapPolicy::Eager),
        ("demand (lazy)", MapPolicy::Lazy),
        ("2 MiB huge pages", MapPolicy::HugePages),
    ] {
        let mut s = Scenario::new(Workload::Sha, 2048, 64);
        s.soc.tlb_entries = 4;
        s.policy = policy;
        let r = run_cohort(&s);
        assert!(r.verified);
        md.push_str(&format!(
            "| {name} | {:.1} | {} | {} |\n",
            r.cycles as f64 / 1000.0,
            r.counter("engine", "faults").unwrap_or(0),
            r.counter("engine", "tlb_misses").unwrap_or(0)
        ));
    }

    // 4. Communication-only cost: the null accelerator isolates the
    //    queue-coherence machinery from compute. Block size sets the
    //    pointer-update granularity (§4.3), so the 8-byte variant shows
    //    the worst-case per-word cost and the 64-byte variant the
    //    line-granular floor.
    md.push_str("\n## Communication floor (null accelerator vs real compute, queue 1024)\n\n");
    md.push_str("| Accelerator | kcycles | cycles/element |\n|---|---|---|\n");
    let n = 1024u64;
    let input: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect();
    for (label, block) in [
        ("null FIFO, 64 B blocks", 64usize),
        ("null FIFO, 8 B words", 8),
    ] {
        let null = CustomRun::new(
            Box::new(NullFifo::with_geometry(block, 1)),
            input.clone(),
            input.clone(),
        )
        .run();
        assert!(null.verified);
        md.push_str(&format!(
            "| {label} | {:.1} | {:.1} |\n",
            null.cycles as f64 / 1000.0,
            null.cycles as f64 / n as f64
        ));
    }
    for wl in [Workload::Sha, Workload::Aes] {
        let r = run_cohort(&Scenario::new(wl, n, 64));
        assert!(r.verified);
        md.push_str(&format!(
            "| {wl:?} | {:.1} | {:.1} |\n",
            r.cycles as f64 / 1000.0,
            r.cycles as f64 / n as f64
        ));
    }

    let path = format!("{out_dir}/ablation.md");
    std::fs::write(&path, &md).expect("write ablation results");
    println!("{md}");
    println!("wrote {path}");
}
