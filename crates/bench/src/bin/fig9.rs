//! Regenerates paper Fig. 9: AES program latency vs queue size.
use cohort::scenarios::Workload;
use cohort_bench::{report, sweep::Sweep};

fn main() {
    let mut sweep = Sweep::new_verbose();
    println!("# Figure 9 — Program latency with AES accelerator\n");
    println!("{}", report::latency_figure(&mut sweep, Workload::Aes));
    println!("## Observability counters (Cohort, batch 64)\n");
    println!("{}", report::stats_figure(&mut sweep, Workload::Aes));
}
