//! Calibration grid search: finds timing constants whose simulated ratios
//! best match the paper's Table 3 / Figs. 10-11 targets.
use cohort::scenarios::{run_cohort, run_dma, run_mmio, Scenario, Workload};

fn ratios(
    per_hop: u64,
    device: u64,
    backoff: u64,
    wcm: u64,
    dma_api: u32,
    shared: bool,
) -> Vec<(f64, f64, f64, &'static str)> {
    // returns (measured, target, weight, label)
    let qs = 1024;
    let mk = |wl, batch| {
        let mut s = Scenario::new(wl, qs, batch);
        s.soc.timing.noc_per_hop = per_hop;
        s.soc.timing.mmio_device = device;
        s.soc.timing.wcm_turnaround = wcm;
        s.soc.timing.mte_shared = shared;
        s.backoff = backoff;
        s.costs.dma_api_alu = dma_api;
        s
    };
    let sha64 = run_cohort(&mk(Workload::Sha, 64));
    let sha8 = run_cohort(&mk(Workload::Sha, 8));
    let sham = run_mmio(&mk(Workload::Sha, 64));
    let shad = run_dma(&mk(Workload::Sha, 64));
    let aes64 = run_cohort(&mk(Workload::Aes, 64));
    let aes2 = run_cohort(&mk(Workload::Aes, 2));
    let aesm = run_mmio(&mk(Workload::Aes, 64));
    let aesd = run_dma(&mk(Workload::Aes, 64));
    vec![
        (
            sham.cycles as f64 / sha64.cycles as f64,
            7.0,
            3.0,
            "sha_vs_mmio",
        ),
        (
            shad.cycles as f64 / sha64.cycles as f64,
            9.5,
            2.0,
            "sha_vs_dma",
        ),
        (
            sha8.cycles as f64 / sha64.cycles as f64,
            2.85,
            2.0,
            "sha_batching",
        ),
        (
            aesm.cycles as f64 / aes64.cycles as f64,
            1.95,
            3.0,
            "aes_vs_mmio",
        ),
        (
            aesd.cycles as f64 / aes64.cycles as f64,
            1.85,
            2.0,
            "aes_vs_dma",
        ),
        (
            aes2.cycles as f64 / aes64.cycles as f64,
            6.7,
            2.0,
            "aes_batching",
        ),
        (sha64.ipc() / sham.ipc(), 4.0, 1.0, "sha_ipc_mmio"),
        (aes64.ipc() / aesm.ipc(), 2.6, 1.0, "aes_ipc_mmio"),
        (sha64.ipc() / shad.ipc(), 2.0, 1.0, "sha_ipc_dma"),
        (aes64.ipc() / aesd.ipc(), 1.7, 1.0, "aes_ipc_dma"),
    ]
}

fn main() {
    let mut best = (f64::MAX, (0, 0, 0, 0, 0u32, false));
    for shared in [true, false] {
        for per_hop in [3u64, 5] {
            for device in [130u64, 170, 210] {
                for backoff in [700u64, 1000] {
                    for wcm in [40u64, 100, 160] {
                        for dma_api in [9000u32, 13000] {
                            let rs = ratios(per_hop, device, backoff, wcm, dma_api, shared);
                            let err: f64 =
                                rs.iter().map(|(m, t, w, _)| w * (m / t).ln().powi(2)).sum();
                            if err < best.0 {
                                best = (err, (per_hop, device, backoff, wcm, dma_api, shared));
                                println!("err={err:.3} per_hop={per_hop} device={device} backoff={backoff} wcm={wcm} dma_api={dma_api} shared={shared}");
                                for (m, t, _, l) in &rs {
                                    println!("    {l}: {m:.2} (target {t})");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    println!("BEST: {best:?}");
}
