//! Interactive single-run driver for the simulated SoC.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin socrun -- \
//!     [--workload sha|aes] \
//!     [--mode cohort|mmio|dma|chain|interfered|chaos|failover|dma-chaos|mesh16] \
//!     [--queue N] [--batch N] [--backoff N] [--policy eager|lazy|huge] \
//!     [--tlb N] [--faults SPEC] [--dram SPEC] [--watchdog N] [--counters] \
//!     [--threads N] [--stats FILE] [--trace FILE]
//! ```
//!
//! Prints latency, IPC and (with `--counters`) every component's
//! performance counters for one configuration — the quickest way to poke
//! at the model. `--stats FILE` writes the stats-registry snapshot
//! (counters + histogram summaries) as JSON; `--trace FILE` enables the
//! cycle-stamped event trace and writes Chrome `trace_event` JSON that
//! loads in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! `--faults` takes a deterministic fault-injection spec, e.g.
//! `stall@5000:forever;storm@20000:2`, `kill@20000:1` (fail-stop engine 1),
//! `maple-kill@15000` or `random:seed=7,count=4` (see
//! `cohort_sim::faultinject::FaultPlan::parse` for the grammar); `chaos`
//! mode runs the Cohort benchmark with the full recovery stack armed,
//! `failover` runs the AES→SHA chain with a cold spare and the failover
//! orchestrator (a `kill@…` fault plan routes here by default),
//! `dma-chaos` runs the DMA baseline hardened for MAPLE faults, and
//! `--watchdog` overrides the engine's forward-progress budget.

use cohort::scenarios::{
    run_scenario, sharded_engines_for, RunResult, Runner, Scenario, ShardSpec, Workload,
};
use cohort_os::addrspace::MapPolicy;
use cohort_os::driver::Placement;
use cohort_sim::dram::DramConfig;
use cohort_sim::faultinject::{FaultKind, FaultPlan};

fn usage() -> ! {
    eprintln!(
        "usage: socrun [--workload sha|aes]\n\
         \u{20}             [--mode cohort|mmio|dma|chain|interfered|chaos|failover|dma-chaos|shard|mesh16]\n\
         \u{20}             [--queue N] [--batch N] [--backoff N] [--policy eager|lazy|huge]\n\
         \u{20}             [--tlb N] [--faults SPEC] [--dram SPEC] [--watchdog N] [--counters]\n\
         \u{20}             [--threads N]\n\
         \u{20}             [--shards N] [--placement rr|occupancy] [--engines N] [--skew]\n\
         \u{20}             [--stats FILE] [--trace FILE] [--bench-out FILE]\n\
         \u{20}             [--baseline FILE] [--bless-baseline FILE]\n\
         sharding: --shards N splits the stream over N engines (mode shard);\n\
         \u{20}         --engines overrides the spare-inclusive pool size,\n\
         \u{20}         --skew makes every 4th element run heavy;\n\
         \u{20}         mode mesh16 is the 16-core big.LITTLE mesh (4 shards + noise)\n\
         parallel: --threads N steps components on N host threads; results\n\
         \u{20}         (incl. the printed checksum) are bit-identical at any N\n\
         perf gate: --bench-out writes {{cycles, throughput, occupancy p50}} JSON;\n\
         \u{20}          --baseline fails (exit 1) when cycles regress >5% vs FILE;\n\
         \u{20}          --bless-baseline refreshes FILE from this run\n\
         fault spec: stall@C:D|forever; spike@C:D:F; storm@C:P; corrupt@C;\n\
         \u{20}           kill@C[:E]; maple-stall@C:D; maple-kill@C;\n\
         \u{20}           random:seed=S,count=N,from=A,to=B (semicolon-separated)\n\
         dram spec: `default`, or comma-separated overrides of\n\
         \u{20}          channels=N,banks=N,rowlines=N,hit=C,miss=C,queue=N,\n\
         \u{20}          mshrs=N,ejection=N — enables the bank/channel DRAM\n\
         \u{20}          contention model (flat-latency memory when absent)"
    );
    std::process::exit(2)
}

/// Allowed regression of the perf gate: runs are deterministic, so 5% is
/// pure headroom for intentional timing-model recalibration.
const BASELINE_TOLERANCE: f64 = 0.05;

/// Renders the machine-readable benchmark record the CI perf gate diffs.
fn bench_json(r: &RunResult, args: &str, queue: u64) -> String {
    let mut occ = String::new();
    for (name, h) in &r.histograms {
        if let Some(engine) = name.strip_suffix(".in_queue_occupancy") {
            if !occ.is_empty() {
                occ.push_str(", ");
            }
            occ.push_str(&format!("\"{engine}\": {}", h.p50));
        }
    }
    format!(
        "{{\n  \"args\": \"{args}\",\n  \"cycles\": {},\n  \"throughput_elems_per_kcycle\": {:.3},\n  \"occupancy_p50\": {{{occ}}},\n  \"verified\": {}\n}}\n",
        r.cycles,
        queue as f64 * 1000.0 / r.cycles as f64,
        r.verified
    )
}

/// Pulls `"cycles": N` out of a baseline JSON without a parser dependency.
fn parse_cycles(json: &str) -> Option<u64> {
    let start = json.find("\"cycles\"")? + "\"cycles\"".len();
    let rest = json[start..].trim_start_matches([':', ' ']);
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut workload = Workload::Sha;
    let mut mode = "cohort".to_string();
    let mut queue = 1024u64;
    let mut batch = 64u64;
    let mut backoff: Option<u64> = None;
    let mut policy = MapPolicy::Eager;
    let mut tlb: Option<usize> = None;
    let mut dram: Option<DramConfig> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut watchdog: Option<u64> = None;
    let mut counters = false;
    let mut stats_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut placement = Placement::RoundRobin;
    let mut engines: Option<usize> = None;
    let mut skew = false;
    let mut threads: Option<usize> = None;
    let mut bench_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut bless: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" => {
                workload = match value().as_str() {
                    "sha" => Workload::Sha,
                    "aes" => Workload::Aes,
                    _ => usage(),
                }
            }
            "--mode" => mode = value(),
            "--queue" => queue = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage()),
            "--backoff" => backoff = Some(value().parse().unwrap_or_else(|_| usage())),
            "--policy" => {
                policy = match value().as_str() {
                    "eager" => MapPolicy::Eager,
                    "lazy" => MapPolicy::Lazy,
                    "huge" => MapPolicy::HugePages,
                    _ => usage(),
                }
            }
            "--tlb" => tlb = Some(value().parse().unwrap_or_else(|_| usage())),
            "--dram" => {
                dram = Some(DramConfig::from_spec(&value()).unwrap_or_else(|e| {
                    eprintln!("socrun: {e}");
                    usage()
                }))
            }
            "--faults" => {
                faults = Some(FaultPlan::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("socrun: {e}");
                    usage()
                }))
            }
            "--watchdog" => watchdog = Some(value().parse().unwrap_or_else(|_| usage())),
            "--counters" => counters = true,
            "--stats" => stats_path = Some(value()),
            "--trace" => trace_path = Some(value()),
            "--shards" => shards = Some(value().parse().unwrap_or_else(|_| usage())),
            "--placement" => {
                placement = value().parse().unwrap_or_else(|e: String| {
                    eprintln!("socrun: {e}");
                    usage()
                })
            }
            "--engines" => engines = Some(value().parse().unwrap_or_else(|_| usage())),
            "--threads" => threads = Some(value().parse().unwrap_or_else(|_| usage())),
            "--skew" => skew = true,
            "--bench-out" => bench_out = Some(value()),
            "--baseline" => baseline = Some(value()),
            "--bless-baseline" => bless = Some(value()),
            _ => usage(),
        }
    }

    let mut scenario = Scenario::new(workload, queue, batch);
    scenario.policy = policy;
    if let Some(b) = backoff {
        scenario.backoff = b;
    }
    if let Some(t) = tlb {
        scenario.soc.tlb_entries = t;
    }
    scenario.soc.dram = dram;
    if let Some(t) = threads {
        scenario.soc = scenario.soc.clone().with_threads(t);
    }
    // --shards routes to the sharded runner (which arms its own failover
    // when a fault plan kills a shard engine).
    if shards.is_some() && mode == "cohort" {
        mode = "shard".to_string();
    }
    if let Some(plan) = faults {
        // A fault plan without an explicit mode picks the runner armed to
        // recover from it: engine fail-stops route to the chain-failover
        // scenario, MAPLE faults to the hardened DMA baseline, everything
        // else to the chaos runner.
        if mode == "cohort" {
            mode = if plan
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::KillEngine { .. }))
            {
                "failover".to_string()
            } else if plan
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::KillMaple | FaultKind::MapleStall { .. }))
            {
                "dma-chaos".to_string()
            } else {
                "chaos".to_string()
            };
        }
        scenario.soc.faults = plan;
    }
    if let Some(w) = watchdog {
        scenario.watchdog = w;
    }
    scenario.trace = trace_path.is_some();

    let runner = Runner::parse(&mode).unwrap_or_else(|| usage());
    let shard_spec = match runner {
        Runner::Sharded => {
            let n = shards.unwrap_or(1);
            // Spare-inclusive pool: explicit --engines wins; otherwise one
            // engine per shard plus a spare when a kill targets a shard.
            scenario.soc.engines =
                engines.unwrap_or_else(|| sharded_engines_for(&scenario.soc.faults, n));
            Some(ShardSpec::new(n).with_placement(placement).with_skew(skew))
        }
        _ => None,
    };
    let start = std::time::Instant::now();
    let r: RunResult = run_scenario(runner, &scenario, shard_spec.as_ref()).unwrap_or_else(|e| {
        eprintln!("socrun: {e}");
        std::process::exit(2);
    });
    let wall = start.elapsed();

    print!("workload={workload:?} mode={mode} queue={queue} batch={batch} policy={policy:?}");
    if mode == "shard" {
        print!(
            " shards={} placement={placement} engines={} skew={skew}",
            shards.unwrap_or(1),
            scenario.soc.engines
        );
    }
    println!();
    println!(
        "latency: {} cycles ({:.1} kcycles, {:.2} cycles/element)",
        r.cycles,
        r.cycles as f64 / 1000.0,
        r.cycles as f64 / queue as f64
    );
    println!("instructions: {}  IPC: {:.3}", r.instret, r.ipc());
    println!("verified: {}  (host wall time {:.2?})", r.verified, wall);
    println!("checksum: {:#018x}", r.checksum);
    if counters {
        for (comp, list) in &r.counters {
            let nonzero: Vec<String> = list
                .iter()
                .filter(|(_, v)| *v > 0)
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            if !nonzero.is_empty() {
                println!("  {comp}: {}", nonzero.join(" "));
            }
        }
    }
    if let Some(path) = &stats_path {
        std::fs::write(path, &r.stats_json).unwrap_or_else(|e| {
            eprintln!("socrun: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("stats: wrote {path}");
    }
    if let Some(path) = &trace_path {
        let json = r.trace_json.as_deref().unwrap_or("[]");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("socrun: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("trace: wrote {path} (load in https://ui.perfetto.dev)");
    }
    let record = bench_json(
        &r,
        &format!(
            "workload={workload:?} mode={mode} queue={queue} batch={batch} shards={} placement={placement} skew={skew}",
            shards.unwrap_or(1)
        ),
        queue,
    );
    if let Some(path) = &bench_out {
        std::fs::write(path, &record).unwrap_or_else(|e| {
            eprintln!("socrun: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("bench: wrote {path}");
    }
    if let Some(path) = &bless {
        std::fs::write(path, &record).unwrap_or_else(|e| {
            eprintln!("socrun: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("baseline: blessed {path} at {} cycles", r.cycles);
    }
    if !r.verified {
        std::process::exit(1);
    }
    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("socrun: cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base = parse_cycles(&text).unwrap_or_else(|| {
            eprintln!("socrun: baseline {path} has no \"cycles\" field");
            std::process::exit(1);
        });
        let delta = r.cycles as f64 / base as f64 - 1.0;
        println!(
            "perf gate: {} cycles vs baseline {base} ({:+.2}%, tolerance {:.0}%)",
            r.cycles,
            delta * 100.0,
            BASELINE_TOLERANCE * 100.0
        );
        if delta > BASELINE_TOLERANCE {
            eprintln!(
                "socrun: PERF REGRESSION: {} cycles is {:.2}% over baseline {base} (>{:.0}% tolerance); \
                 if intentional, refresh with --bless-baseline {path}",
                r.cycles,
                delta * 100.0,
                BASELINE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
    }
}
