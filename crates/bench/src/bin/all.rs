//! Regenerates every table and figure, writing markdown into `results/`.
use cohort::scenarios::Workload;
use cohort_bench::report::{self, paper_table3};
use cohort_bench::sweep::Sweep;
use cohort_sim::config::SocConfig;
use std::fs;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    fs::create_dir_all(&out_dir).expect("create results dir");
    let mut sweep = Sweep::new_verbose();

    let write = |name: &str, content: String| {
        let path = format!("{out_dir}/{name}");
        fs::write(&path, content).expect("write result");
        println!("wrote {path}");
    };

    write(
        "table2.md",
        format!(
            "# Table 2 — Benchmark Tuning Parameters\n\n{}",
            cohort_bench::params::table2_markdown()
        ),
    );
    write(
        "fig8.md",
        format!(
            "# Figure 8 — Program latency with SHA accelerator\n\n{}\n## Observability counters (Cohort, batch 64)\n\n{}",
            report::latency_figure(&mut sweep, Workload::Sha),
            report::stats_figure(&mut sweep, Workload::Sha)
        ),
    );
    write(
        "fig9.md",
        format!(
            "# Figure 9 — Program latency with AES accelerator\n\n{}\n## Observability counters (Cohort, batch 64)\n\n{}",
            report::latency_figure(&mut sweep, Workload::Aes),
            report::stats_figure(&mut sweep, Workload::Aes)
        ),
    );
    let t3 = format!(
        "# Table 3 — Peak speedups (Cohort batch = 64)\n\n## SHA speedup\n\n{}\n## AES speedup\n\n{}",
        report::table3_block(
            &mut sweep,
            Workload::Sha,
            &paper_table3::SHA_MMIO,
            &paper_table3::SHA_DMA,
            &paper_table3::SHA_BATCHING
        ),
        report::table3_block(
            &mut sweep,
            Workload::Aes,
            &paper_table3::AES_MMIO,
            &paper_table3::AES_DMA,
            &paper_table3::AES_BATCHING
        ),
    );
    write("table3.md", t3);
    write(
        "fig10.md",
        format!(
            "# Figure 10 — IPC performance with SHA accelerator\n\n{}",
            report::ipc_figure(&mut sweep, Workload::Sha)
        ),
    );
    write(
        "fig11.md",
        format!(
            "# Figure 11 — IPC performance with AES accelerator\n\n{}",
            report::ipc_figure(&mut sweep, Workload::Aes)
        ),
    );
    write(
        "table4.md",
        format!(
            "# Table 4 — FPGA resource utilisation\n\n{}",
            report::table4_markdown(&SocConfig::default())
        ),
    );
    write(
        "scaling.md",
        format!(
            "# Shard scaling — multi-engine queue sharding\n\n{}",
            report::scaling_figure(&mut sweep)
        ),
    );
    println!("done.");
}
