//! Regenerates paper Fig. 10: SHA IPC speedup over the baselines.
use cohort::scenarios::Workload;
use cohort_bench::{report, sweep::Sweep};

fn main() {
    let mut sweep = Sweep::new_verbose();
    println!("# Figure 10 — IPC performance with SHA accelerator\n");
    println!("{}", report::ipc_figure(&mut sweep, Workload::Sha));
}
