//! Regenerates paper Fig. 8: SHA program latency vs queue size.
use cohort::scenarios::Workload;
use cohort_bench::{report, sweep::Sweep};

fn main() {
    let mut sweep = Sweep::new_verbose();
    println!("# Figure 8 — Program latency with SHA accelerator\n");
    println!("{}", report::latency_figure(&mut sweep, Workload::Sha));
    println!("## Observability counters (Cohort, batch 64)\n");
    println!("{}", report::stats_figure(&mut sweep, Workload::Sha));
}
