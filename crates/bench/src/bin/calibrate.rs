//! Quick calibration probe: prints the headline Table-3 ratios (latency
//! speedups, batching gains, IPC ratios) at three queue sizes so timing
//! changes can be sanity-checked faster than a full figure regeneration.
//! `--diag` dumps per-component counters for one SHA and one AES run.

use cohort::scenarios::{run_cohort, run_dma, run_mmio, Scenario, Workload};

fn main() {
    let diag = std::env::args().any(|a| a == "--diag");
    if diag {
        let r = run_cohort(&Scenario::new(Workload::Aes, 1024, 64));
        println!(
            "AES qs=1024 batch=64: cycles={} per-elem={:.1}",
            r.cycles,
            r.cycles as f64 / 1024.0
        );
        for (comp, counters) in &r.counters {
            println!("  {comp}: {counters:?}");
        }
        let r = run_cohort(&Scenario::new(Workload::Sha, 1024, 64));
        println!(
            "SHA qs=1024 batch=64: cycles={} per-elem={:.1}",
            r.cycles,
            r.cycles as f64 / 1024.0
        );
        for (comp, counters) in &r.counters {
            println!("  {comp}: {counters:?}");
        }
        return;
    }
    for wl in [Workload::Sha, Workload::Aes] {
        println!("== {wl:?} ==");
        for qs in [256u64, 1024, 4096] {
            let c64 = run_cohort(&Scenario::new(wl, qs, 64));
            let small_batch = if wl == Workload::Sha { 8 } else { 2 };
            let csmall = run_cohort(&Scenario::new(wl, qs, small_batch));
            let m = run_mmio(&Scenario::new(wl, qs, 64));
            let d = run_dma(&Scenario::new(wl, qs, 64));
            assert!(c64.verified && csmall.verified && m.verified && d.verified);
            println!(
                "qs={qs:5} cohort64={:8} small={:8} mmio={:8} dma={:8} | vsMMIO={:.2} vsDMA={:.2} batching={:.2} | ipcX mmio={:.2} dma={:.2}",
                c64.cycles, csmall.cycles, m.cycles, d.cycles,
                m.cycles as f64 / c64.cycles as f64,
                d.cycles as f64 / c64.cycles as f64,
                csmall.cycles as f64 / c64.cycles as f64,
                c64.ipc() / m.ipc(),
                c64.ipc() / d.ipc(),
            );
        }
    }
}
