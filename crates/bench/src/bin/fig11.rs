//! Regenerates paper Fig. 11: AES IPC speedup over the baselines.
use cohort::scenarios::Workload;
use cohort_bench::{report, sweep::Sweep};

fn main() {
    let mut sweep = Sweep::new_verbose();
    println!("# Figure 11 — IPC performance with AES accelerator\n");
    println!("{}", report::ipc_figure(&mut sweep, Workload::Aes));
}
