//! `cohort-fleet` — declarative scenario fleet runner.
//!
//! ```text
//! cohort-fleet --spec FILE [--out-dir DIR] [--threads N] [--strict]
//!              [--baseline FILE] [--scenario NAME] [--seed N]
//!              [--max-seeds N] [--verbose]
//! cohort-fleet --check [--baseline FILE] [--bless] [--threads N]
//! ```
//!
//! The first form runs a campaign spec and writes
//! `results/fleet_<name>.{json,md}` (summary + report) and
//! `results/fleet_<name>_runs.json` (per-run records). Exit code 1 when
//! any run fails to survive under `--strict`, or when `--baseline`
//! detects a >5% p50-cycle drift. `--scenario`/`--seed` narrow the spec
//! for reproducing a reported failure; with `--seed` the full per-run
//! record is printed to stdout.
//!
//! The second form is the CI gate: the built-in sharded-AES matrix
//! ({1,2,4} shards × 8 seeds) against `results/fleet_baseline.json`.
//! `--bless` rewrites the baseline instead of comparing.

use cohort_bench::fleet::{check, run_fleet, summarize, FleetSpec, Outcome, RunRecord};
use std::path::PathBuf;
use std::process::ExitCode;

/// Per-scenario baseline drift the `--baseline` gate tolerates.
const BASELINE_TOLERANCE: f64 = 0.05;

fn usage() -> ! {
    eprintln!(
        "usage: cohort-fleet --spec FILE [--out-dir DIR] [--threads N] [--strict]\n\
         \x20                   [--baseline FILE] [--scenario NAME] [--seed N]\n\
         \x20                   [--max-seeds N] [--verbose]\n\
         \x20      cohort-fleet --check [--baseline FILE] [--bless] [--threads N]\n\
         \n\
         Runs a declarative scenario campaign (see examples/fleet/) and writes\n\
         results/fleet_<name>.{{json,md}} plus per-run records. --check runs the\n\
         built-in sharded-AES matrix against results/fleet_baseline.json."
    );
    std::process::exit(2)
}

struct Args {
    spec: Option<PathBuf>,
    out_dir: PathBuf,
    threads: usize,
    strict: bool,
    baseline: Option<PathBuf>,
    scenario: Option<String>,
    seed: Option<u64>,
    max_seeds: Option<usize>,
    verbose: bool,
    check: bool,
    bless: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: None,
        out_dir: PathBuf::from("results"),
        threads: 0,
        strict: false,
        baseline: None,
        scenario: None,
        seed: None,
        max_seeds: None,
        verbose: false,
        check: false,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("cohort-fleet: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--spec" => args.spec = Some(PathBuf::from(value("--spec"))),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--threads" => args.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--strict" => args.strict = true,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline"))),
            "--scenario" => args.scenario = Some(value("--scenario")),
            "--seed" => {
                let v = value("--seed");
                let parsed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse());
                args.seed = Some(parsed.unwrap_or_else(|_| usage()));
            }
            "--max-seeds" => {
                args.max_seeds = Some(value("--max-seeds").parse().unwrap_or_else(|_| usage()))
            }
            "--verbose" => args.verbose = true,
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cohort-fleet: unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

fn write_file(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cohort-fleet: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        });
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cohort-fleet: cannot write {}: {e}", path.display());
        std::process::exit(2);
    });
    eprintln!("wrote {}", path.display());
}

fn records_json(records: &[RunRecord]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("  ");
        s.push_str(&r.json());
        s.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    s.push_str("]\n");
    s
}

fn run_check_mode(args: &Args) -> ExitCode {
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| PathBuf::from(check::CHECK_BASELINE_PATH));
    if args.bless {
        let (summary, _records) = match check::run_check(None, args.threads, args.verbose) {
            Ok(ok) => ok,
            Err((problems, ..)) => {
                for p in &problems {
                    eprintln!("cohort-fleet --check: {p}");
                }
                eprintln!("cohort-fleet: refusing to bless a failing matrix");
                return ExitCode::FAILURE;
            }
        };
        write_file(&baseline_path, &summary.json());
        return ExitCode::SUCCESS;
    }
    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "cohort-fleet: cannot read baseline {} ({e}); run --check --bless first",
            baseline_path.display()
        );
        std::process::exit(2);
    });
    match check::run_check(Some(&baseline), args.threads, args.verbose) {
        Ok((summary, _)) => {
            for sc in &summary.scenarios {
                eprintln!(
                    "check {}: {} runs, p50 {} cycles — within ±{:.0}% of baseline",
                    sc.name,
                    sc.runs,
                    sc.cycles.p50,
                    check::CHECK_TOLERANCE * 100.0
                );
            }
            eprintln!("cohort-fleet --check: OK");
            ExitCode::SUCCESS
        }
        Err((problems, ..)) => {
            for p in &problems {
                eprintln!("cohort-fleet --check: {p}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.check {
        return run_check_mode(&args);
    }
    let Some(spec_path) = args.spec.clone() else {
        usage()
    };
    let mut spec = FleetSpec::load(&spec_path).unwrap_or_else(|e| {
        eprintln!("cohort-fleet: {e}");
        std::process::exit(2);
    });
    if let Some(name) = &args.scenario {
        if !spec.retain_scenario(name) {
            eprintln!(
                "cohort-fleet: spec {} has no scenario {name:?}",
                spec_path.display()
            );
            std::process::exit(2);
        }
    }
    if let Some(seed) = args.seed {
        for sc in &mut spec.scenarios {
            sc.seeds.retain(|&s| s == seed);
            sc.overrides.retain(|(s, _)| *s == seed);
        }
        spec.scenarios.retain(|sc| !sc.seeds.is_empty());
        if spec.scenarios.is_empty() {
            eprintln!("cohort-fleet: seed {seed} is not in the selected scenario's seed set");
            std::process::exit(2);
        }
    }
    if let Some(n) = args.max_seeds {
        spec.truncate_seeds(n);
    }
    let threads = if args.threads != 0 {
        args.threads
    } else {
        spec.host_threads
    };

    eprintln!(
        "campaign {:?}: {} scenario(s), {} run(s)",
        spec.name,
        spec.scenarios.len(),
        spec.total_runs()
    );
    let records = run_fleet(&spec, threads, args.verbose);
    let summary = summarize(&spec, &records);

    // Single-run reproduction mode prints the full record to stdout.
    if args.seed.is_some() {
        for r in &records {
            println!("{}", r.json());
        }
    }

    let spec_display = spec_path.display().to_string();
    write_file(
        &args.out_dir.join(format!("fleet_{}.json", spec.name)),
        &summary.json(),
    );
    write_file(
        &args.out_dir.join(format!("fleet_{}.md", spec.name)),
        &summary.markdown(&spec_display),
    );
    write_file(
        &args.out_dir.join(format!("fleet_{}_runs.json", spec.name)),
        &records_json(&records),
    );

    let failed: Vec<&RunRecord> = records.iter().filter(|r| !r.outcome.survived()).collect();
    for r in &failed {
        eprintln!(
            "FAILED {} seed={}: {} — reproduce: cohort-fleet --spec {} --scenario {} --seed {}",
            r.scenario, r.seed, r.outcome, spec_display, r.scenario, r.seed
        );
    }
    let mut ok = true;
    if args.strict {
        // Strict mode (the CI smoke gate): every run must be a clean pass
        // or a hardware-path recovery — fallback, mismatch and hangs fail.
        let non_pass = records
            .iter()
            .filter(|r| !matches!(r.outcome, Outcome::Pass | Outcome::Recovered))
            .count();
        if non_pass > 0 {
            eprintln!("cohort-fleet: --strict and {non_pass} run(s) were not pass/recovered");
            ok = false;
        }
    }
    if let Some(baseline_path) = &args.baseline {
        let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "cohort-fleet: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            std::process::exit(2);
        });
        match cohort_bench::fleet::compare_baseline(&summary, &baseline, BASELINE_TOLERANCE) {
            Ok(()) => eprintln!(
                "baseline {}: all scenarios within ±{:.0}%",
                baseline_path.display(),
                BASELINE_TOLERANCE * 100.0
            ),
            Err(problems) => {
                for p in &problems {
                    eprintln!("cohort-fleet baseline: {p}");
                }
                ok = false;
            }
        }
    }
    eprintln!(
        "campaign {:?}: {}/{} survived",
        spec.name, summary.survived, summary.total_runs
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
