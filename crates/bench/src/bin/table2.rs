//! Regenerates paper Table 2 (benchmark tuning parameters).
fn main() {
    println!("# Table 2 — Benchmark Tuning Parameters\n");
    println!("{}", cohort_bench::params::table2_markdown());
}
