//! Regenerates paper Table 4: FPGA resource utilisation (analytic model).
use cohort_bench::report::table4_markdown;
use cohort_sim::config::SocConfig;

fn main() {
    println!("# Table 4 — FPGA resource utilisation\n");
    println!("{}", table4_markdown(&SocConfig::default()));
}
