//! # cohort-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5, §6):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table2` | Table 2 — benchmark tuning parameters |
//! | `fig8`   | Fig. 8 — SHA latency vs queue size |
//! | `fig9`   | Fig. 9 — AES latency vs queue size |
//! | `table3` | Table 3 — peak speedups |
//! | `fig10`  | Fig. 10 — SHA IPC speedups |
//! | `fig11`  | Fig. 11 — AES IPC speedups |
//! | `table4` | Table 4 — FPGA resource utilisation (analytic model) |
//! | `all`    | everything above, written to `results/` |
//!
//! Runs are memoized in a [`sweep::Sweep`] so figures sharing data points
//! (e.g. Fig. 8 and Fig. 10) simulate each configuration once.

pub mod area;
pub mod fleet;
pub mod params;
pub mod report;
pub mod sweep;
