//! Markdown/CSV rendering of the reproduced figures and tables.

use crate::area::{table4, Table4Row};
use crate::params::{min_batch, AES_BATCHES, PEAK_BATCH, QUEUE_SIZES, SHA_BATCHES, TABLE3_SIZES};
use crate::sweep::{Mode, Sweep};
use cohort::scenarios::Workload;
use cohort_sim::config::SocConfig;

/// Renders one latency figure (Fig. 8 for SHA, Fig. 9 for AES): series of
/// kilocycle latencies per queue size.
pub fn latency_figure(sweep: &mut Sweep, workload: Workload) -> String {
    let batches: &[u64] = match workload {
        Workload::Sha => &SHA_BATCHES,
        Workload::Aes => &AES_BATCHES,
    };
    let mut modes: Vec<Mode> = batches.iter().map(|&b| Mode::Cohort { batch: b }).collect();
    modes.push(Mode::Mmio);
    modes.push(Mode::Dma);

    let mut s = String::new();
    s.push_str("| Queue size |");
    for m in &modes {
        s.push_str(&format!(" {m} |"));
    }
    s.push_str("\n|---|");
    for _ in &modes {
        s.push_str("---|");
    }
    s.push('\n');
    for &qs in &QUEUE_SIZES {
        s.push_str(&format!("| {qs} |"));
        for m in &modes {
            s.push_str(&format!(" {:.1} |", sweep.kilocycles(workload, *m, qs)));
        }
        s.push('\n');
    }
    s.push_str("\n(latency in kilocycles, lower is better — log-scale in the paper)\n");
    s
}

/// Renders the Table 3 block for one workload, with the paper's values for
/// comparison.
pub fn table3_block(
    sweep: &mut Sweep,
    workload: Workload,
    paper_mmio: &[f64],
    paper_dma: &[f64],
    paper_batching: &[f64],
) -> String {
    let mut s = String::new();
    s.push_str("| Queue size |");
    for qs in TABLE3_SIZES {
        s.push_str(&format!(" {qs} |"));
    }
    s.push_str("\n|---|");
    for _ in TABLE3_SIZES {
        s.push_str("---|");
    }
    s.push('\n');

    type RowFn = Box<dyn FnMut(&mut Sweep, u64) -> f64>;
    let rows: [(&str, RowFn, &[f64]); 3] = [
        (
            "Vs MMIO",
            Box::new(move |sw, qs| sw.speedup(workload, PEAK_BATCH, Mode::Mmio, qs)),
            paper_mmio,
        ),
        (
            "Vs DMA",
            Box::new(move |sw, qs| sw.speedup(workload, PEAK_BATCH, Mode::Dma, qs)),
            paper_dma,
        ),
        (
            "W/ Batching",
            Box::new(move |sw, qs| sw.batching_gain(workload, PEAK_BATCH, qs)),
            paper_batching,
        ),
    ];
    for (name, mut f, paper) in rows {
        s.push_str(&format!("| {name} (measured) |"));
        for &qs in &TABLE3_SIZES {
            s.push_str(&format!(" {:.2} |", f(sweep, qs)));
        }
        s.push('\n');
        s.push_str(&format!("| {name} (paper) |"));
        for p in paper {
            s.push_str(&format!(" {p:.2} |"));
        }
        s.push('\n');
    }
    let _ = min_batch(workload);
    s
}

/// Renders one IPC figure (Fig. 10 for SHA, Fig. 11 for AES).
pub fn ipc_figure(sweep: &mut Sweep, workload: Workload) -> String {
    let mut s = String::new();
    s.push_str("| Queue size | IPC speedup over MMIO | IPC speedup over Coherent DMA |\n");
    s.push_str("|---|---|---|\n");
    for &qs in &QUEUE_SIZES {
        let m = sweep.ipc_speedup(workload, PEAK_BATCH, Mode::Mmio, qs);
        let d = sweep.ipc_speedup(workload, PEAK_BATCH, Mode::Dma, qs);
        s.push_str(&format!("| {qs} | {m:.2} | {d:.2} |\n"));
    }
    s.push_str("\n(Cohort batching factor 64; higher is better)\n");
    s
}

/// Renders the observability companion table for one workload: engine and
/// memory-system counters per queue size for the Cohort mode at the peak
/// batching factor. These come from the same memoized runs as the latency
/// and IPC figures, so appending this table to a report costs no extra
/// simulation.
pub fn stats_figure(sweep: &mut Sweep, workload: Workload) -> String {
    let mode = Mode::Cohort { batch: PEAK_BATCH };
    let mut s = String::new();
    s.push_str(
        "| Queue size | L1 hits | L1 misses | L2 hits | DRAM fills | Invs | NoC msgs | Eng consumed | Eng backoffs | RCM invs | TLB misses |
",
    );
    s.push_str(
        "|---|---|---|---|---|---|---|---|---|---|---|
",
    );
    for &qs in &QUEUE_SIZES {
        let core = |sw: &mut Sweep, n| sw.stat(workload, mode, qs, "core", n);
        let dir = |sw: &mut Sweep, n| sw.stat(workload, mode, qs, "directory", n);
        let eng = |sw: &mut Sweep, n| sw.stat(workload, mode, qs, "engine", n);
        let noc = dir(sweep, "gets") + dir(sweep, "getm"); // request msgs
        s.push_str(&format!(
            "| {qs} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |
",
            core(sweep, "l1_hits"),
            core(sweep, "l1_misses"),
            dir(sweep, "l2_hits"),
            dir(sweep, "fills"),
            dir(sweep, "inv_sent"),
            noc,
            eng(sweep, "consumed"),
            eng(sweep, "backoffs"),
            eng(sweep, "rcm_invalidations"),
            eng(sweep, "tlb_misses"),
        ));
    }
    s.push_str("
(observability-registry counters for the Cohort runs above; see `socrun --stats` for the full registry including histograms)
");
    s
}

/// Machine-readable host header for generated reports: states the core
/// count of the machine that produced the numbers, so a report generated
/// in a 1-core container is detectable (by CI or a human) instead of
/// silently presenting overhead as scaling. Render it as the first line
/// of every report whose numbers depend on host parallelism.
pub fn host_header() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("<!-- host_cores={cores} -->\n")
}

/// Renders the shard-scaling figure: AES throughput of the sharded driver
/// at 1..N engines (uniform stream, round-robin), plus the skewed-stream
/// placement-policy comparison. Speedups are against the 1-shard run on
/// the same seed and stream.
pub fn scaling_figure(sweep: &mut Sweep) -> String {
    use crate::params::{SHARD_COUNTS, SHARD_QUEUE};
    use cohort_os::driver::Placement;

    let wl = Workload::Aes;
    let base = sweep
        .run_sharded(wl, 1, Placement::RoundRobin, false, SHARD_QUEUE)
        .cycles as f64;
    let mut s = String::new();
    s.push_str("| Shards | Uniform (kcycles) | Speedup | Skewed rr (kcycles) | Skewed occupancy (kcycles) | Occupancy gain |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for &n in &SHARD_COUNTS {
        let uni = sweep
            .run_sharded(wl, n, Placement::RoundRobin, false, SHARD_QUEUE)
            .cycles as f64;
        let skew_rr = sweep
            .run_sharded(wl, n, Placement::RoundRobin, true, SHARD_QUEUE)
            .cycles as f64;
        let skew_occ = sweep
            .run_sharded(wl, n, Placement::OccupancyAware, true, SHARD_QUEUE)
            .cycles as f64;
        s.push_str(&format!(
            "| {n} | {:.1} | {:.2}x | {:.1} | {:.1} | {:.2}x |\n",
            uni / 1000.0,
            base / uni,
            skew_rr / 1000.0,
            skew_occ / 1000.0,
            skew_rr / skew_occ,
        ));
    }
    s.push_str(&format!(
        "\n(AES, queue {SHARD_QUEUE}, batch {}, one producer core per shard; skewed = every 4th element run heavy. \
         Speedup is vs the 1-shard sharded run; occupancy gain is skewed rr / skewed occupancy.)\n",
        crate::params::PEAK_BATCH
    ));
    s
}

/// Renders the DRAM-contention shard sweep (`results/scaling_dram.md`):
/// the same 1..N sharded AES stream under the flat-latency memory system
/// and under the contended [`crate::params::DRAM_SWEEP_SPEC`] model, plus
/// the skewed-stream placement comparison with contention on. The flat
/// column keeps gaining with every doubling; the contended column stops
/// at the bandwidth knee — with per-run saturation counters showing why.
///
/// # Panics
/// Panics if [`crate::params::DRAM_SWEEP_SPEC`] stops parsing (a unit
/// test pins it) or any underlying run fails verification.
/// Reads one counter out of a run's stats-registry JSON snapshot. The NoC
/// registers its counters directly in the registry (it is not a
/// component), so they are absent from `RunResult::counters`; the
/// registry document is dependency-free `"scoped.name": value` lines,
/// which this scans without a JSON parser.
fn registry_counter(stats_json: &str, scoped_name: &str) -> u64 {
    let needle = format!("\"{scoped_name}\": ");
    stats_json
        .find(&needle)
        .map(|i| {
            stats_json[i + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

pub fn scaling_dram_figure(sweep: &mut Sweep) -> String {
    use crate::params::{DRAM_SHARD_COUNTS, DRAM_SHARD_QUEUE, DRAM_SWEEP_SPEC};
    use cohort_os::driver::Placement;
    use cohort_sim::dram::DramConfig;

    let wl = Workload::Aes;
    let dram = DramConfig::from_spec(DRAM_SWEEP_SPEC).expect("pinned sweep spec parses");
    let rr = Placement::RoundRobin;
    let occ = Placement::OccupancyAware;

    let flat_base = sweep
        .run_sharded_mem(wl, 1, rr, false, DRAM_SHARD_QUEUE, None)
        .cycles as f64;
    let dram_base = sweep
        .run_sharded_mem(wl, 1, rr, false, DRAM_SHARD_QUEUE, Some(&dram))
        .cycles as f64;

    let mut s = String::new();
    s.push_str(&format!("DRAM spec: `{DRAM_SWEEP_SPEC}`\n\n"));
    s.push_str(
        "| Shards | Flat (kcycles) | Flat speedup | DRAM (kcycles) | DRAM speedup | Row hit % | MSHR stalls | Queue rejects | NoC deferred |\n",
    );
    s.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for &n in &DRAM_SHARD_COUNTS {
        let flat = sweep
            .run_sharded_mem(wl, n, rr, false, DRAM_SHARD_QUEUE, None)
            .cycles as f64;
        let run = sweep.run_sharded_mem(wl, n, rr, false, DRAM_SHARD_QUEUE, Some(&dram));
        let cyc = run.cycles as f64;
        let reqs = run.counter("directory", "dram_reqs").unwrap_or(0);
        let hits = run.counter("directory", "dram_row_hits").unwrap_or(0);
        let stalls = run.counter("directory", "mshr_stalls").unwrap_or(0);
        let rejects = run.counter("directory", "dram_rejects").unwrap_or(0);
        let deferred = registry_counter(&run.stats_json, "noc.ejection_deferred");
        s.push_str(&format!(
            "| {n} | {:.1} | {:.2}x | {:.1} | {:.2}x | {:.0}% | {stalls} | {rejects} | {deferred} |\n",
            flat / 1000.0,
            flat_base / flat,
            cyc / 1000.0,
            dram_base / cyc,
            if reqs > 0 {
                100.0 * hits as f64 / reqs as f64
            } else {
                0.0
            },
        ));
    }

    s.push_str(
        "\n| Shards | Skewed rr (kcycles) | Skewed occupancy (kcycles) | Occupancy gain |\n",
    );
    s.push_str("|---|---|---|---|\n");
    for &n in &DRAM_SHARD_COUNTS {
        let skew_rr = sweep
            .run_sharded_mem(wl, n, rr, true, DRAM_SHARD_QUEUE, Some(&dram))
            .cycles as f64;
        let skew_occ = sweep
            .run_sharded_mem(wl, n, occ, true, DRAM_SHARD_QUEUE, Some(&dram))
            .cycles as f64;
        s.push_str(&format!(
            "| {n} | {:.1} | {:.1} | {:.2}x |\n",
            skew_rr / 1000.0,
            skew_occ / 1000.0,
            skew_rr / skew_occ,
        ));
    }
    s.push_str(&format!(
        "\n(AES, queue {DRAM_SHARD_QUEUE}, batch {}, one producer core per shard. Speedups \
         are vs the 1-shard run on the same memory system. Row hit %, MSHR stalls, channel-queue \
         rejects and NoC ejection deferrals come from the contended runs' stats registry.)\n",
        crate::params::PEAK_BATCH
    ));
    s
}

/// Renders Table 4: structural area model vs the paper's synthesis results.
pub fn table4_markdown(cfg: &SocConfig) -> String {
    let rows = table4(cfg);
    let mut s = String::new();
    s.push_str(
        "| Block | LUTs (model) | LUTs (paper) | Regs (model) | Regs (paper) | BRAM (model) | BRAM (paper) |\n",
    );
    s.push_str("|---|---|---|---|---|---|---|\n");
    for Table4Row { name, model, paper } in rows {
        s.push_str(&format!(
            "| {name} | {:.0} | {:.0} | {:.0} | {:.0} | {:.1} | {:.1} |\n",
            model.luts, paper.0, model.regs, paper.1, model.bram, paper.2
        ));
    }
    s.push_str("\n(model: structural estimator, see crates/bench/src/area.rs; paper: Vivado 2022.1 post-synthesis)\n");
    s
}

/// Paper's Table 3 reference values.
pub mod paper_table3 {
    /// SHA speedups vs MMIO per queue size.
    pub const SHA_MMIO: [f64; 8] = [5.44, 6.05, 6.75, 7.22, 7.62, 8.30, 8.38, 7.16];
    /// SHA speedups vs coherent DMA.
    pub const SHA_DMA: [f64; 8] = [7.27, 7.94, 8.85, 11.24, 10.70, 10.83, 10.62, 8.97];
    /// SHA batching improvements (batch 64 vs batch 8).
    pub const SHA_BATCHING: [f64; 8] = [2.32, 2.45, 2.65, 2.79, 2.96, 3.01, 3.33, 2.81];
    /// AES speedups vs MMIO.
    pub const AES_MMIO: [f64; 8] = [2.0, 1.89, 1.84, 1.83, 2.07, 2.03, 2.03, 1.86];
    /// AES speedups vs coherent DMA.
    pub const AES_DMA: [f64; 8] = [1.9, 1.83, 1.74, 1.71, 1.75, 2.03, 1.94, 1.69];
    /// AES batching improvements (batch 64 vs batch 2).
    pub const AES_BATCHING: [f64; 8] = [5.3, 6.05, 7.11, 7.16, 8.02, 7.99, 8.10, 7.42];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_renders_all_rows() {
        let t = table4_markdown(&SocConfig::default());
        for name in ["Ariane Tile", "Empty Cohort Engine", "H264 Only"] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn small_latency_figure_renders() {
        // Use a tiny private sweep at small sizes to keep the test fast.
        let mut sweep = Sweep::new();
        let k = sweep.kilocycles(Workload::Sha, Mode::Cohort { batch: 8 }, 64);
        assert!(k > 0.0);
    }
}
