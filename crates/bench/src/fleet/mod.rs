//! The declarative scenario fleet runner (docs/architecture.md §12).
//!
//! A campaign is a TOML-subset spec ([`spec::FleetSpec`]) naming
//! scenarios — runner, workload, queue/shard/placement parameters, fault
//! grammar, seed set, per-seed overrides — validated at load time with
//! structured [`spec::SpecError`]s. [`runner::run_fleet`] fans the
//! `(scenario, seed)` jobs out across host threads, classifies each run
//! ([`runner::Outcome`]) and digests it into a deterministic
//! [`runner::RunRecord`]; [`summary::summarize`] reduces the records to
//! cross-seed statistics (fault-survival rate, p50/p99 occupancy and
//! recovery latency, throughput variance) rendered as JSON and markdown.
//! [`check::run_check`] is the CI perf/robustness gate built on top.
//!
//! Every layer is bit-deterministic: a failing run reported by a
//! 500-seed campaign replays identically from its `(spec, scenario,
//! seed)` triple, and the whole report is invariant under the host
//! thread count.

pub mod check;
pub mod runner;
pub mod spec;
pub mod summary;

pub use check::{run_check, CHECK_BASELINE_PATH, CHECK_TOLERANCE};
pub use runner::{run_fleet, run_one, Outcome, RunRecord};
pub use spec::{FleetSpec, RunParams, ScenarioSpec, SpecError};
pub use summary::{compare_baseline, summarize, Dist, FleetSummary, ScenarioSummary};
