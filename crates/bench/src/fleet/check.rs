//! The `cohort-fleet --check` perf/robustness gate.
//!
//! Replaces the old single-point `socrun --baseline` comparison with a
//! small matrix — sharded AES at {1, 2, 4} shards, 8 seeds each —
//! checked against a committed `results/fleet_baseline.json`. The gate
//! fails when any run does not survive or any scenario's p50 cycles
//! drift more than [`CHECK_TOLERANCE`] from the baseline.

use super::runner::{run_fleet, RunRecord};
use super::spec::FleetSpec;
use super::summary::{compare_baseline, summarize, FleetSummary};

/// Fractional p50-cycle drift the gate tolerates (±5%, matching the old
/// `socrun --baseline` gate).
pub const CHECK_TOLERANCE: f64 = 0.05;

/// Default location of the committed baseline, relative to the repo root.
pub const CHECK_BASELINE_PATH: &str = "results/fleet_baseline.json";

/// The built-in check matrix, written in the fleet grammar so the gate
/// also exercises the loader end to end.
pub const CHECK_SPEC: &str = r#"
# cohort-fleet --check: sharded AES x {1,2,4} shards x 8 seeds.
[campaign]
name = "baseline_check"
seeds = "0..8"

[defaults]
workload = "aes"
queue = 256
batch = 16

[[scenario]]
name = "shard1"
runner = "shard"
shards = 1

[[scenario]]
name = "shard2"
runner = "shard"
shards = 2

[[scenario]]
name = "shard4"
runner = "shard"
shards = 4
"#;

/// Parses the built-in matrix (a compile-time constant, so it can only
/// fail if the grammar and the constant drift apart — covered by a test).
pub fn check_spec() -> FleetSpec {
    FleetSpec::parse(CHECK_SPEC).expect("built-in check spec parses")
}

/// Everything a check run produces: the summary plus per-run records.
pub type CheckOutput = (FleetSummary, Vec<RunRecord>);

/// Runs the check matrix. With a baseline JSON, gates p50 cycles per
/// scenario; always gates on every run surviving.
///
/// # Errors
/// One message per violated gate.
pub fn run_check(
    baseline_json: Option<&str>,
    host_threads: usize,
    verbose: bool,
) -> Result<CheckOutput, (Vec<String>, FleetSummary, Vec<RunRecord>)> {
    let spec = check_spec();
    let records = run_fleet(&spec, host_threads, verbose);
    let summary = summarize(&spec, &records);

    let mut problems: Vec<String> = records
        .iter()
        .filter(|r| !r.outcome.survived())
        .map(|r| {
            format!(
                "run {}/seed {} did not survive: {}{}",
                r.scenario,
                r.seed,
                r.outcome,
                if r.note.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", r.note)
                }
            )
        })
        .collect();
    if let Some(json) = baseline_json {
        if let Err(mut drift) = compare_baseline(&summary, json, CHECK_TOLERANCE) {
            problems.append(&mut drift);
        }
    }
    if problems.is_empty() {
        Ok((summary, records))
    } else {
        Err((problems, summary, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_check_spec_parses_to_the_matrix() {
        let spec = check_spec();
        assert_eq!(spec.scenarios.len(), 3);
        assert_eq!(spec.total_runs(), 24);
        assert_eq!(
            spec.scenarios
                .iter()
                .map(|s| s.base.shards)
                .collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
    }
}
