//! Cross-seed summary statistics and the JSON / markdown reports.
//!
//! All statistics are computed in fixed seed order from the per-run
//! records, with nearest-rank percentiles over sorted integer vectors —
//! no floating-point reductions whose result depends on accumulation
//! order — so the summary is bit-identical at any host thread count.

use super::runner::{Outcome, RunRecord};
use super::spec::FleetSpec;

/// Nearest-rank distribution digest of one metric across runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dist {
    /// Samples.
    pub n: u64,
    /// Minimum.
    pub min: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Dist {
    /// Digests a sample set (order-independent: sorts a copy).
    pub fn of(values: &[u64]) -> Dist {
        if values.is_empty() {
            return Dist::default();
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        let rank = |p: u64| v[((p * v.len() as u64).div_ceil(100).max(1) - 1) as usize];
        Dist {
            n: v.len() as u64,
            min: v[0],
            p50: rank(50),
            p99: rank(99),
            max: *v.last().expect("nonempty"),
            mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"n\": {}, \"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.3}}}",
            self.n, self.min, self.p50, self.p99, self.max, self.mean
        )
    }
}

/// Per-scenario cross-seed statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Runs executed.
    pub runs: usize,
    /// Outcome counts in [`Outcome::ALL`] order.
    pub outcomes: Vec<(&'static str, usize)>,
    /// Runs that saw at least one injected fault.
    pub fault_runs: usize,
    /// Of the fault runs, the fraction that survived (1.0 when no run
    /// saw a fault).
    pub survival_rate: f64,
    /// End-to-end latency distribution (completed runs only).
    pub cycles: Dist,
    /// Throughput in output elements per kilocycle: mean and population
    /// variance across completed runs, computed in seed order.
    pub throughput_mean: f64,
    /// Population variance of the per-run throughput.
    pub throughput_var: f64,
    /// Worst-engine queue-occupancy p50 across runs.
    pub occ_p50: Dist,
    /// Worst-engine queue-occupancy p99 across runs.
    pub occ_p99: Dist,
    /// Failover detection latency across runs that ran failover.
    pub recovery_detect: Dist,
    /// Failover rebind latency across runs that ran failover.
    pub recovery_rebind: Dist,
    /// Failover end-to-end outage latency across runs that ran failover.
    pub recovery_resume: Dist,
    /// Total rebinds across the scenario.
    pub rebinds: u64,
    /// Every non-surviving run as a reproducible `(seed, outcome)` pair.
    pub failures: Vec<(u64, &'static str)>,
}

/// Whole-campaign summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Campaign name.
    pub name: String,
    /// Total runs.
    pub total_runs: usize,
    /// Runs that survived (pass / recovered / software-fallback).
    pub survived: usize,
    /// Per-scenario summaries in spec order.
    pub scenarios: Vec<ScenarioSummary>,
}

/// Builds the summary from records grouped by the spec's scenario order.
pub fn summarize(spec: &FleetSpec, records: &[RunRecord]) -> FleetSummary {
    let mut scenarios = Vec::with_capacity(spec.scenarios.len());
    for sc in &spec.scenarios {
        let recs: Vec<&RunRecord> = records.iter().filter(|r| r.scenario == sc.name).collect();
        let completed: Vec<&&RunRecord> =
            recs.iter().filter(|r| r.outcome != Outcome::Hung).collect();
        let outcomes = Outcome::ALL
            .iter()
            .map(|o| (o.name(), recs.iter().filter(|r| r.outcome == *o).count()))
            .collect();
        let fault_runs = recs.iter().filter(|r| r.faults_injected > 0).count();
        let fault_survivors = recs
            .iter()
            .filter(|r| r.faults_injected > 0 && r.outcome.survived())
            .count();
        let survival_rate = if fault_runs == 0 {
            1.0
        } else {
            fault_survivors as f64 / fault_runs as f64
        };
        // Throughput in elements/kilocycle, accumulated in seed order so
        // the f64 reduction is fixed.
        let tp: Vec<f64> = completed
            .iter()
            .filter(|r| r.cycles > 0)
            .map(|r| r.elements as f64 * 1000.0 / r.cycles as f64)
            .collect();
        let throughput_mean = if tp.is_empty() {
            0.0
        } else {
            tp.iter().sum::<f64>() / tp.len() as f64
        };
        let throughput_var = if tp.is_empty() {
            0.0
        } else {
            tp.iter()
                .map(|x| (x - throughput_mean) * (x - throughput_mean))
                .sum::<f64>()
                / tp.len() as f64
        };
        let gather =
            |f: fn(&RunRecord) -> u64| -> Vec<u64> { completed.iter().map(|r| f(r)).collect() };
        let failover: Vec<&&&RunRecord> =
            completed.iter().filter(|r| r.recovery_resume > 0).collect();
        let gather_fo =
            |f: fn(&RunRecord) -> u64| -> Vec<u64> { failover.iter().map(|r| f(r)).collect() };
        scenarios.push(ScenarioSummary {
            name: sc.name.clone(),
            runs: recs.len(),
            outcomes,
            fault_runs,
            survival_rate,
            cycles: Dist::of(&gather(|r| r.cycles)),
            throughput_mean,
            throughput_var,
            occ_p50: Dist::of(&gather(|r| r.occ_p50)),
            occ_p99: Dist::of(&gather(|r| r.occ_p99)),
            recovery_detect: Dist::of(&gather_fo(|r| r.recovery_detect)),
            recovery_rebind: Dist::of(&gather_fo(|r| r.recovery_rebind)),
            recovery_resume: Dist::of(&gather_fo(|r| r.recovery_resume)),
            rebinds: recs.iter().map(|r| r.rebinds).sum(),
            failures: recs
                .iter()
                .filter(|r| !r.outcome.survived())
                .map(|r| (r.seed, r.outcome.name()))
                .collect(),
        });
    }
    FleetSummary {
        name: spec.name.clone(),
        total_runs: records.len(),
        survived: records.iter().filter(|r| r.outcome.survived()).count(),
        scenarios,
    }
}

impl FleetSummary {
    /// The summary as pretty-printed JSON (stable field order; the
    /// per-scenario `cycles_p50` scalar is what baseline gates scan for).
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"campaign\": \"{}\",\n", self.name));
        s.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        s.push_str(&format!("  \"survived\": {},\n", self.survived));
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"runs\": {},\n", sc.runs));
            for (name, count) in &sc.outcomes {
                s.push_str(&format!(
                    "      \"outcome_{}\": {count},\n",
                    name.replace('-', "_")
                ));
            }
            s.push_str(&format!("      \"fault_runs\": {},\n", sc.fault_runs));
            s.push_str(&format!(
                "      \"fault_survival_rate\": {:.4},\n",
                sc.survival_rate
            ));
            s.push_str(&format!("      \"cycles_p50\": {},\n", sc.cycles.p50));
            s.push_str(&format!("      \"cycles\": {},\n", sc.cycles.json()));
            s.push_str(&format!(
                "      \"throughput_elems_per_kcycle\": {{\"mean\": {:.4}, \"variance\": {:.6}}},\n",
                sc.throughput_mean, sc.throughput_var
            ));
            s.push_str(&format!("      \"occ_p50\": {},\n", sc.occ_p50.json()));
            s.push_str(&format!("      \"occ_p99\": {},\n", sc.occ_p99.json()));
            s.push_str(&format!(
                "      \"recovery_detect\": {},\n",
                sc.recovery_detect.json()
            ));
            s.push_str(&format!(
                "      \"recovery_rebind\": {},\n",
                sc.recovery_rebind.json()
            ));
            s.push_str(&format!(
                "      \"recovery_resume\": {},\n",
                sc.recovery_resume.json()
            ));
            s.push_str(&format!("      \"rebinds\": {},\n", sc.rebinds));
            let fails: Vec<String> = sc
                .failures
                .iter()
                .map(|(seed, o)| format!("{{\"seed\": {seed}, \"outcome\": \"{o}\"}}"))
                .collect();
            s.push_str(&format!("      \"failures\": [{}]\n", fails.join(", ")));
            s.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The markdown report.
    pub fn markdown(&self, spec_path: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("# Fleet campaign `{}`\n\n", self.name));
        s.push_str(&format!(
            "Spec: `{spec_path}` — {} scenario(s), {} run(s), {} survived \
             ({} failed).\n\n",
            self.scenarios.len(),
            self.total_runs,
            self.survived,
            self.total_runs - self.survived
        ));
        s.push_str(
            "Outcomes: `pass` (verified, fault-free), `recovered` (verified \
             despite injected faults), `software-fallback` (verified via the \
             kernel's software path), `checksum-mismatch`, `hung`. Survival \
             counts the first three.\n\n",
        );
        s.push_str(
            "| scenario | runs | pass | recovered | fallback | mismatch | hung \
             | fault survival | cycles p50 | cycles p99 | occ p50 | occ p99 \
             | resume p50 | resume p99 | thr var |\n",
        );
        s.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
        for sc in &self.scenarios {
            let count = |name: &str| {
                sc.outcomes
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map_or(0, |(_, c)| *c)
            };
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.1}% | {} | {} | {} | {} | {} | {} | {:.4} |\n",
                sc.name,
                sc.runs,
                count("pass"),
                count("recovered"),
                count("software-fallback"),
                count("checksum-mismatch"),
                count("hung"),
                sc.survival_rate * 100.0,
                sc.cycles.p50,
                sc.cycles.p99,
                sc.occ_p50.p50,
                sc.occ_p99.p99,
                sc.recovery_resume.p50,
                sc.recovery_resume.p99,
                sc.throughput_var,
            ));
        }
        s.push('\n');
        let mut any_fail = false;
        for sc in &self.scenarios {
            for (seed, outcome) in &sc.failures {
                if !any_fail {
                    s.push_str("## Failing runs\n\n");
                    s.push_str(
                        "Each failure reproduces bit-identically from its \
                         `(spec, scenario, seed)` pair:\n\n",
                    );
                    any_fail = true;
                }
                s.push_str(&format!(
                    "- `{}` seed `{seed}`: **{outcome}** — reproduce with \
                     `cohort-fleet --spec {spec_path} --scenario {} --seed {seed}`\n",
                    sc.name, sc.name
                ));
            }
        }
        if !any_fail {
            s.push_str("No failing runs.\n");
        }
        s.push_str(
            "\nAll numbers are deterministic for a given spec: percentiles \
             are nearest-rank over integer cycle counts and the report is \
             bit-identical at any host thread count.\n",
        );
        s
    }
}

/// Compares a freshly-computed summary against a committed baseline
/// summary JSON, per scenario, on the `cycles_p50` scalar.
///
/// # Errors
/// One message per scenario that is missing from the baseline or whose
/// p50 cycles drifted more than `tolerance` (fractional, e.g. 0.05).
pub fn compare_baseline(
    current: &FleetSummary,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    for sc in &current.scenarios {
        let Some(expected) = scan_scenario_p50(baseline_json, &sc.name) else {
            problems.push(format!(
                "scenario {:?} missing from the baseline (re-bless?)",
                sc.name
            ));
            continue;
        };
        let got = sc.cycles.p50;
        let delta = (got as f64 - expected as f64) / expected.max(1) as f64;
        if delta.abs() > tolerance {
            problems.push(format!(
                "scenario {:?}: p50 cycles {got} vs baseline {expected} \
                 ({:+.2}% exceeds ±{:.0}%)",
                sc.name,
                delta * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Pulls `"cycles_p50": N` for a named scenario out of a summary JSON by
/// string scanning (the repo carries no JSON parser dependency).
fn scan_scenario_p50(json: &str, scenario: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{scenario}\"");
    let at = json.find(&needle)?;
    let rest = &json[at..];
    let key = "\"cycles_p50\": ";
    let kat = rest.find(key)?;
    let digits: String = rest[kat + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_uses_nearest_rank() {
        let d = Dist::of(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(d.p50, 50);
        assert_eq!(d.p99, 100);
        assert_eq!(d.min, 10);
        assert_eq!(d.max, 100);
        assert!((d.mean - 55.0).abs() < 1e-9);
        assert_eq!(Dist::of(&[]).n, 0);
        assert_eq!(Dist::of(&[7]).p50, 7);
    }

    #[test]
    fn baseline_scan_finds_scenario_p50() {
        let json = "{\n  \"scenarios\": [\n    {\n      \"name\": \"a\",\n      \
                    \"cycles_p50\": 1234,\n    },\n    {\n      \"name\": \"b\",\n      \
                    \"cycles_p50\": 777\n    }\n  ]\n}";
        assert_eq!(scan_scenario_p50(json, "a"), Some(1234));
        assert_eq!(scan_scenario_p50(json, "b"), Some(777));
        assert_eq!(scan_scenario_p50(json, "c"), None);
    }
}
