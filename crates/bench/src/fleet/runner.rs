//! Campaign execution: fan-out across host threads, per-run outcome
//! classification, and the per-run JSON record.
//!
//! The fan-out reuses the `Sweep::run_seeds` shape — a shared atomic
//! cursor over the job list, `std::thread::scope` workers, results
//! written into index-addressed slots — so records come back in spec
//! order regardless of which thread ran which job, and the whole
//! campaign is bit-identical at any `host_threads` setting. Each job
//! runs under `catch_unwind`, so one wedged seed becomes a classified
//! `hung` record instead of tearing down the campaign.

use super::spec::{FleetSpec, RunParams};
use cohort::scenarios::{run_scenario, RunResult, Runner};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How one run ended, most severe first. `Hung` and `ChecksumMismatch`
/// are failures; the other three all delivered the exact reference
/// output stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The run panicked (cycle-budget exhaustion / a wedged pipeline) or
    /// overran the spec's wall-clock watchdog.
    Hung,
    /// The run completed but the output stream did not match the
    /// host-side reference.
    ChecksumMismatch,
    /// Verified, but the hardware path gave up and the kernel's software
    /// fallback produced (part of) the output stream.
    SoftwareFallback,
    /// Verified with at least one fault injected — the recovery stack
    /// absorbed it.
    Recovered,
    /// Verified, no faults injected.
    Pass,
}

impl Outcome {
    /// Every outcome, in report order (most severe first).
    pub const ALL: [Outcome; 5] = [
        Outcome::Hung,
        Outcome::ChecksumMismatch,
        Outcome::SoftwareFallback,
        Outcome::Recovered,
        Outcome::Pass,
    ];

    /// The report label.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Hung => "hung",
            Outcome::ChecksumMismatch => "checksum-mismatch",
            Outcome::SoftwareFallback => "software-fallback",
            Outcome::Recovered => "recovered",
            Outcome::Pass => "pass",
        }
    }

    /// True when the run delivered the exact reference output (pass,
    /// recovered, or software-fallback — graceful degradation still
    /// counts as surviving the fault).
    pub fn survived(&self) -> bool {
        !matches!(self, Outcome::Hung | Outcome::ChecksumMismatch)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the fleet keeps from one run. Scalar digests only — the
/// full `stats_json` stays out so a 500-run campaign's record file stays
/// reviewable — and strictly deterministic: wall-clock time is tracked
/// for the hang watchdog but never serialised.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Scenario name from the spec.
    pub scenario: String,
    /// The run seed — `(spec, scenario, seed)` reproduces this run.
    pub seed: u64,
    /// Classified outcome.
    pub outcome: Outcome,
    /// End-to-end latency in cycles (0 for hung runs).
    pub cycles: u64,
    /// Benchmark-core instructions retired.
    pub instret: u64,
    /// The determinism-contract payload checksum.
    pub checksum: u64,
    /// Output elements delivered (the verified stream length).
    pub elements: u64,
    /// Faults the injector fired (stalls+spikes+storms+corruptions+kills).
    pub faults_injected: u64,
    /// Fail-stop kills among them.
    pub kills: u64,
    /// Queue migrations onto spares.
    pub rebinds: u64,
    /// Engine error interrupts taken.
    pub error_irqs: u64,
    /// Watchdog trips.
    pub watchdog_trips: u64,
    /// Worst per-engine input-queue-occupancy p50.
    pub occ_p50: u64,
    /// Worst per-engine input-queue-occupancy p99.
    pub occ_p99: u64,
    /// Failover detection latency in cycles (0 = no failover ran).
    pub recovery_detect: u64,
    /// Failover rebind latency in cycles.
    pub recovery_rebind: u64,
    /// Failover resume (end-to-end outage) latency in cycles.
    pub recovery_resume: u64,
    /// Panic message for hung runs, empty otherwise.
    pub note: String,
}

impl RunRecord {
    /// One-line JSON object, stable field order.
    pub fn json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"seed\": {}, \"outcome\": \"{}\", \
             \"cycles\": {}, \"instret\": {}, \"checksum\": \"{:#018x}\", \
             \"elements\": {}, \"faults_injected\": {}, \"kills\": {}, \
             \"rebinds\": {}, \"error_irqs\": {}, \"watchdog_trips\": {}, \
             \"occ_p50\": {}, \"occ_p99\": {}, \"recovery_detect\": {}, \
             \"recovery_rebind\": {}, \"recovery_resume\": {}, \"note\": \"{}\"}}",
            self.scenario,
            self.seed,
            self.outcome,
            self.cycles,
            self.instret,
            self.checksum,
            self.elements,
            self.faults_injected,
            self.kills,
            self.rebinds,
            self.error_irqs,
            self.watchdog_trips,
            self.occ_p50,
            self.occ_p99,
            self.recovery_detect,
            self.recovery_rebind,
            self.recovery_resume,
            escape_json(&self.note),
        )
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            '\n' => "\\n".to_string(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
            c => c.to_string(),
        })
        .collect()
}

/// Sums a named counter across every component whose name starts with
/// `prefix` (matches both `engine` and `engine#N`).
fn summed_counter(r: &RunResult, prefix: &str, name: &str) -> u64 {
    r.counters
        .iter()
        .filter(|(c, _)| c.starts_with(prefix))
        .flat_map(|(_, list)| list.iter())
        .filter(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .sum()
}

/// Max of a histogram field across every scoped histogram whose name
/// ends with `suffix`.
fn max_hist(
    r: &RunResult,
    suffix: &str,
    field: impl Fn(&cohort_sim::stats::HistogramSummary) -> u64,
) -> u64 {
    r.histograms
        .iter()
        .filter(|(n, _)| n.ends_with(suffix))
        .map(|(_, h)| field(h))
        .max()
        .unwrap_or(0)
}

/// Classifies a completed run and digests it into a [`RunRecord`].
pub fn classify(
    scenario: &str,
    runner: Runner,
    params: &RunParams,
    seed: u64,
    r: &RunResult,
) -> RunRecord {
    let faults_injected = ["stalls", "spikes", "storms", "corruptions", "kills"]
        .iter()
        .map(|n| summed_counter(r, "faultinject", n))
        .sum::<u64>();
    let kills = summed_counter(r, "faultinject", "kills");
    let produced = summed_counter(r, "engine", "produced");
    let drained = summed_counter(r, "engine", "drained_elems");
    let expected = {
        let (s, _) = params.to_scenario(runner, seed);
        s.output_words()
    };
    let outcome = if !r.verified {
        Outcome::ChecksumMismatch
    } else if runner.uses_cohort_engines() && produced + drained < expected {
        // Verified without the engines moving every element: the
        // software fallback filled the gap.
        Outcome::SoftwareFallback
    } else if faults_injected > 0 {
        Outcome::Recovered
    } else {
        Outcome::Pass
    };
    RunRecord {
        scenario: scenario.to_string(),
        seed,
        outcome,
        cycles: r.cycles,
        instret: r.instret,
        checksum: r.checksum,
        elements: r.recorded.len() as u64,
        faults_injected,
        kills,
        rebinds: summed_counter(r, "engine", "rebinds"),
        error_irqs: summed_counter(r, "engine", "error_irqs"),
        watchdog_trips: summed_counter(r, "engine", "watchdog_trips"),
        occ_p50: max_hist(r, "in_queue_occupancy", |h| h.p50),
        occ_p99: max_hist(r, "in_queue_occupancy", |h| h.p99),
        recovery_detect: max_hist(r, "failover_detect", |h| h.max),
        recovery_rebind: max_hist(r, "failover_rebind", |h| h.max),
        recovery_resume: max_hist(r, "failover_resume", |h| h.max),
        note: String::new(),
    }
}

/// A hung-run record (panic or wall-clock overrun).
fn hung_record(scenario: &str, seed: u64, note: String) -> RunRecord {
    RunRecord {
        scenario: scenario.to_string(),
        seed,
        outcome: Outcome::Hung,
        cycles: 0,
        instret: 0,
        checksum: 0,
        elements: 0,
        faults_injected: 0,
        kills: 0,
        rebinds: 0,
        error_irqs: 0,
        watchdog_trips: 0,
        occ_p50: 0,
        occ_p99: 0,
        recovery_detect: 0,
        recovery_rebind: 0,
        recovery_resume: 0,
        note,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "run panicked".into())
}

/// Executes one `(scenario, seed)` job, classifying panics as `hung`.
pub fn run_one(
    scenario: &str,
    runner: Runner,
    params: &RunParams,
    seed: u64,
    hang_wall_ms: u64,
) -> RunRecord {
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (s, shard) = params.to_scenario(runner, seed);
        run_scenario(runner, &s, shard.as_ref())
    }));
    match outcome {
        Ok(Ok(r)) => {
            let mut rec = classify(scenario, runner, params, seed, &r);
            // The wall-clock watchdog is advisory (host-speed-dependent);
            // it reclassifies but never aborts, and the wall time itself
            // stays out of the serialised record.
            if hang_wall_ms > 0 && start.elapsed().as_millis() as u64 > hang_wall_ms {
                rec.outcome = Outcome::Hung;
                rec.note = format!("exceeded the {hang_wall_ms} ms wall-clock watchdog");
            }
            rec
        }
        // A shard-binding error at run time means spec validation has a
        // hole; surface it as a named failure, not a crash.
        Ok(Err(e)) => hung_record(scenario, seed, format!("shard binding failed: {e}")),
        Err(payload) => hung_record(scenario, seed, panic_message(payload.as_ref())),
    }
}

/// Runs every `(scenario, seed)` job of a spec across `host_threads`
/// workers (0 = available parallelism) and returns the records in spec
/// order: scenarios in declaration order, seeds in seed-set order.
pub fn run_fleet(spec: &FleetSpec, host_threads: usize, verbose: bool) -> Vec<RunRecord> {
    struct Job<'a> {
        scenario: &'a str,
        runner: Runner,
        params: &'a RunParams,
        seed: u64,
    }
    let jobs: Vec<Job<'_>> = spec
        .scenarios
        .iter()
        .flat_map(|sc| {
            sc.seeds.iter().map(move |&seed| Job {
                scenario: &sc.name,
                runner: sc.runner,
                params: sc.params_for(seed),
                seed,
            })
        })
        .collect();

    let threads = if host_threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        host_threads
    }
    .clamp(1, jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<RunRecord>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let rec = run_one(
                    job.scenario,
                    job.runner,
                    job.params,
                    job.seed,
                    spec.hang_wall_ms,
                );
                if verbose {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "  [{n}/{}] {} seed={:#x}: {}",
                        jobs.len(),
                        job.scenario,
                        job.seed,
                        rec.outcome
                    );
                }
                *out[i].lock().expect("slot lock") = Some(rec);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::spec::FleetSpec;

    #[test]
    fn clean_run_classifies_as_pass() {
        let params = RunParams {
            queue: 64,
            ..RunParams::default()
        };
        let rec = run_one("t", Runner::Cohort, &params, 1, 0);
        assert_eq!(rec.outcome, Outcome::Pass);
        assert_eq!(rec.elements, 64);
        assert!(rec.cycles > 0);
        assert!(rec.occ_p99 >= rec.occ_p50);
    }

    #[test]
    fn failover_run_classifies_as_recovered_with_latencies() {
        let params = RunParams {
            workload: cohort::scenarios::Workload::Sha,
            queue: 256,
            watchdog: 20_000,
            ..RunParams::default()
        };
        let rec = run_one("t", Runner::Failover, &params, 0x5eed, 0);
        assert_eq!(rec.outcome, Outcome::Recovered);
        assert_eq!(rec.kills, 1);
        assert_eq!(rec.rebinds, 1);
        assert!(rec.recovery_resume >= rec.recovery_rebind);
        assert!(rec.recovery_detect > 0);
    }

    #[test]
    fn records_are_deterministic_across_host_threads() {
        let spec = FleetSpec::parse(
            "[campaign]\nname = \"det\"\nseeds = \"0..3\"\n\
             [[scenario]]\nname = \"aes\"\nrunner = \"cohort\"\nqueue = 64",
        )
        .expect("parses");
        let serial = run_fleet(&spec, 1, false);
        let parallel = run_fleet(&spec, 3, false);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_record_json_is_stable() {
        let params = RunParams {
            queue: 64,
            ..RunParams::default()
        };
        let a = run_one("t", Runner::Cohort, &params, 2, 0).json();
        let b = run_one("t", Runner::Cohort, &params, 2, 0).json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"scenario\": \"t\", \"seed\": 2, \"outcome\": \"pass\""));
    }
}
